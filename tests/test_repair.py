"""Tests for the incremental repair scheduler (repro.core.repair).

The fixture workload is the benchmark's 30-flow Indriya case — big
enough for real channel reuse (so victim blasts are non-trivial) while
scheduling in ~100 ms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernel as _kernel
from repro.core.ra import DEFAULT_RHO_T
from repro.core.repair import (
    ChangeSet,
    ChannelChange,
    REASON_BARRED,
    REASON_PRECEDENCE,
    compute_blast_radius,
    repair_schedule,
    smallest_reused_link,
)
from repro.core.reschedule import reschedule_without_reuse_on
from repro.experiments.common import (
    build_workload,
    make_policy,
    prepare_network,
    schedule_workload,
)
from repro.flows.generator import PeriodRange
from repro.obs import recording
from repro.obs.explain import explain_from_provenance, format_blast
from repro.obs.provenance import ProvenanceRecorder
from repro.obs.recorder import Recorder
from repro.routing.traffic import TrafficType
from repro.validate.audit import audit_schedule


@pytest.fixture(scope="module")
def bench_case(indriya):
    """(network, flow_set, RC scheduling result) for 30 Indriya flows."""
    topology, _ = indriya
    network = prepare_network(topology, num_channels=5)
    flow_set = build_workload(network, 30, PeriodRange(0, 4),
                              TrafficType.CENTRALIZED,
                              np.random.default_rng(1))
    result = schedule_workload(network, flow_set, "RC")
    assert result.schedulable
    assert result.schedule.num_reused_cells() > 0
    return network, flow_set, result


def entries_signature(schedule):
    return [(e.request.flow_id, e.request.instance, e.request.hop_index,
             e.request.attempt, e.slot, e.offset)
            for e in schedule.entries]


# ----------------------------------------------------------------------
# Schedule.evict / Schedule.clone bookkeeping
# ----------------------------------------------------------------------

class TestEvict:
    def test_evicted_bookkeeping_passes_audit(self, bench_case):
        network, flow_set, result = bench_case
        rng = np.random.default_rng(7)
        indices = sorted(rng.choice(len(result.schedule.entries), size=50,
                                    replace=False).tolist())
        clone = result.schedule.clone()
        evicted = clone.evict(indices)
        assert len(evicted) == 50
        assert len(clone) == len(result.schedule) - 50
        # The auditor cross-checks busy matrix, occupancy planes, used
        # masks, and the incremental link-distance state against a full
        # recompute — the strongest available eviction oracle.
        report = audit_schedule(clone, network.reuse, DEFAULT_RHO_T,
                                flow_set=flow_set, expect_complete=False)
        assert report.ok, report.summary()

    def test_clone_leaves_original_untouched(self, bench_case):
        network, flow_set, result = bench_case
        before = entries_signature(result.schedule)
        clone = result.schedule.clone()
        clone.evict(list(range(20)))
        assert entries_signature(result.schedule) == before
        report = audit_schedule(result.schedule, network.reuse,
                                DEFAULT_RHO_T, flow_set=flow_set)
        assert report.ok, report.summary()

    def test_evict_validates_indices(self, bench_case):
        _, _, result = bench_case
        clone = result.schedule.clone()
        with pytest.raises(IndexError):
            clone.evict([len(clone.entries)])
        assert clone.evict([]) == []


# ----------------------------------------------------------------------
# Blast-radius computation
# ----------------------------------------------------------------------

class TestBlastRadius:
    def test_victim_blast_is_precedence_suffix(self, bench_case):
        network, _, result = bench_case
        schedule = result.schedule
        victim = smallest_reused_link(schedule)
        blast = compute_blast_radius(
            schedule, ChangeSet(victims=(victim,)), DEFAULT_RHO_T,
            reuse_graph=network.reuse)
        assert blast.seeds > 0
        assert set(blast.reasons.values()) <= {REASON_BARRED,
                                               REASON_PRECEDENCE}
        # Closure property: within each (flow, instance), the evicted
        # transmissions are a suffix in (hop, attempt) order, so every
        # survivor's precedence bound stays valid as placed.
        doomed = set(blast.indices)
        first_hit = {}
        for index in blast.indices:
            request = schedule.entries[index].request
            key = (request.flow_id, request.instance)
            rank = (request.hop_index, request.attempt)
            first_hit[key] = min(first_hit.get(key, rank), rank)
        for index, entry in enumerate(schedule.entries):
            request = entry.request
            key = (request.flow_id, request.instance)
            if key not in first_hit:
                continue
            later = (request.hop_index, request.attempt) >= first_hit[key]
            assert (index in doomed) == later

    def test_recheck_without_graph_rejected(self, bench_case):
        _, _, result = bench_case
        with pytest.raises(ValueError, match="reuse graph"):
            compute_blast_radius(result.schedule, ChangeSet(rho_t=3),
                                 3.0)


# ----------------------------------------------------------------------
# repair_schedule: the three change kinds
# ----------------------------------------------------------------------

class TestRepairSchedule:
    def test_single_victim_repair_audits_clean(self, bench_case):
        network, flow_set, result = bench_case
        victim = smallest_reused_link(result.schedule)
        before = entries_signature(result.schedule)
        outcome = repair_schedule(
            result.schedule, flow_set, network.reuse,
            ChangeSet(victims=(victim,)), rho_t=DEFAULT_RHO_T)
        assert outcome.schedulable
        assert outcome.evicted > 0
        assert entries_signature(result.schedule) == before
        report = audit_schedule(outcome.schedule, network.reuse,
                                DEFAULT_RHO_T, flow_set=flow_set,
                                expect_complete=True,
                                barred_links={victim})
        assert report.ok, report.summary()

    def test_repair_kernel_equivalence(self, bench_case):
        network, flow_set, result = bench_case
        victim = smallest_reused_link(result.schedule)
        change = ChangeSet(victims=(victim,))
        products = {}
        for mode in (_kernel.KERNEL_SCALAR, _kernel.KERNEL_VECTOR):
            with _kernel.kernel_mode(mode):
                products[mode] = repair_schedule(
                    result.schedule, flow_set, network.reuse, change,
                    rho_t=DEFAULT_RHO_T)
        scalar = products[_kernel.KERNEL_SCALAR]
        vector = products[_kernel.KERNEL_VECTOR]
        assert scalar.schedulable == vector.schedulable
        assert (entries_signature(scalar.schedule)
                == entries_signature(vector.schedule))

    def test_rho_escalation_repair(self, bench_case):
        network, flow_set, result = bench_case
        escalated = DEFAULT_RHO_T + 1
        outcome = repair_schedule(
            result.schedule, flow_set, network.reuse,
            ChangeSet(rho_t=escalated), rho_t=escalated)
        assert outcome.schedulable
        report = audit_schedule(outcome.schedule, network.reuse,
                                float(escalated), flow_set=flow_set,
                                expect_complete=True)
        assert report.ok, report.summary()

    def test_channel_blacklist_repair(self, bench_case, indriya):
        network, flow_set, result = bench_case
        topology, _ = indriya
        narrowed = prepare_network(topology, num_channels=4)
        # 5-channel map -> first-4 map: offsets 0-3 survive in place.
        change = ChangeSet(channel=ChannelChange(
            reuse_graph=narrowed.reuse, num_offsets=4,
            offset_map=(0, 1, 2, 3, None)))
        outcome = repair_schedule(
            result.schedule, flow_set, network.reuse, change,
            rho_t=DEFAULT_RHO_T)
        assert outcome.schedulable
        assert outcome.schedule.num_offsets == 4
        assert all(e.offset < 4 for e in outcome.schedule.entries)
        report = audit_schedule(outcome.schedule, narrowed.reuse,
                                DEFAULT_RHO_T, flow_set=flow_set,
                                expect_complete=True)
        assert report.ok, report.summary()

    def test_placement_failure_reported(self, bench_case, monkeypatch):
        network, flow_set, result = bench_case
        victim = smallest_reused_link(result.schedule)
        import repro.core.repair as repair_mod
        monkeypatch.setattr(repair_mod, "find_slot",
                            lambda *args, **kwargs: None)
        outcome = repair_schedule(
            result.schedule, flow_set, network.reuse,
            ChangeSet(victims=(victim,)), rho_t=DEFAULT_RHO_T)
        assert not outcome.schedulable
        assert outcome.failed_request is not None


# ----------------------------------------------------------------------
# reschedule_without_reuse_on mode="repair" and the rebuild fallback
# ----------------------------------------------------------------------

class TestRescheduleRepairMode:
    def test_repair_mode_warm_starts(self, bench_case):
        network, flow_set, result = bench_case
        victim = smallest_reused_link(result.schedule)
        repaired = reschedule_without_reuse_on(
            flow_set, network.topology.num_nodes, network.num_channels,
            network.reuse, make_policy("RC", DEFAULT_RHO_T), {victim},
            mode="repair", schedule=result.schedule)
        assert repaired.schedulable
        assert repaired.policy_name == "RC+repair"

    def test_mode_validation(self, bench_case):
        network, flow_set, result = bench_case
        with pytest.raises(ValueError, match="unknown mode"):
            reschedule_without_reuse_on(
                flow_set, network.topology.num_nodes,
                network.num_channels, network.reuse,
                make_policy("RC", DEFAULT_RHO_T), set(), mode="patch")
        with pytest.raises(ValueError, match="running schedule"):
            reschedule_without_reuse_on(
                flow_set, network.topology.num_nodes,
                network.num_channels, network.reuse,
                make_policy("RC", DEFAULT_RHO_T), set(), mode="repair")

    def test_placement_failure_falls_back_to_rebuild(self, bench_case,
                                                     monkeypatch):
        network, flow_set, result = bench_case
        victim = smallest_reused_link(result.schedule)
        import repro.core.repair as repair_mod
        monkeypatch.setattr(repair_mod, "find_slot",
                            lambda *args, **kwargs: None)
        fallback = reschedule_without_reuse_on(
            flow_set, network.topology.num_nodes, network.num_channels,
            network.reuse, make_policy("RC", DEFAULT_RHO_T), {victim},
            mode="repair", schedule=result.schedule)
        # The barrier rebuild uses its own engine (unpatched find_slot
        # import), so the fallback still schedules the workload.
        assert fallback.schedulable
        assert fallback.policy_name == "RC+barrier"


# ----------------------------------------------------------------------
# Provenance: blast records and their explain rendering
# ----------------------------------------------------------------------

class TestRepairProvenance:
    def test_blast_and_replacement_recorded(self, bench_case):
        network, flow_set, result = bench_case
        victim = smallest_reused_link(result.schedule)
        prov = ProvenanceRecorder()
        with recording(Recorder(provenance=prov)):
            outcome = repair_schedule(
                result.schedule, flow_set, network.reuse,
                ChangeSet(victims=(victim,)), rho_t=DEFAULT_RHO_T)
        assert outcome.schedulable
        records = prov.records()
        blasts = [r for r in records if r.get("kind") == "blast"]
        assert len(blasts) == 1
        assert len(blasts[0]["evicted"]) == outcome.evicted
        assert any(item["reason"] == REASON_BARRED
                   for item in blasts[0]["evicted"])
        repairs = [r for r in records if r.get("kind") == "decision"
                   and r.get("policy") == "RC+repair"]
        assert len(repairs) == outcome.evicted

    def test_explain_surfaces_evictions(self, bench_case):
        network, flow_set, result = bench_case
        victim = smallest_reused_link(result.schedule)
        prov = ProvenanceRecorder()
        with recording(Recorder(provenance=prov)):
            repair_schedule(
                result.schedule, flow_set, network.reuse,
                ChangeSet(victims=(victim,)), rho_t=DEFAULT_RHO_T)
        records = prov.records()
        blast = next(r for r in records if r.get("kind") == "blast")
        item = blast["evicted"][0]
        lines = explain_from_provenance(records, item["sender"],
                                        item["receiver"])
        assert any("evicted slot" in line for line in lines)
        # format_blast headers report the full blast even when filtered.
        header = format_blast(blast, [item])[0]
        assert f"{len(blast['evicted'])} cell(s) evicted" in header
