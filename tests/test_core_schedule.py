"""Tests for repro.core.schedule and repro.core.transmissions."""

import pytest

from repro.core.schedule import Schedule
from repro.core.transmissions import TransmissionRequest, expand_instance
from repro.flows.flow import Flow


def request(sender, receiver, flow_id=0, instance=0, hop=0, attempt=0,
            release=0, deadline=99):
    return TransmissionRequest(flow_id, instance, hop, attempt, sender,
                               receiver, release, deadline)


class TestTransmissionRequest:
    def test_link(self):
        assert request(3, 4).link == (3, 4)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            request(3, 3)

    def test_str_mentions_flow_and_hop(self):
        text = str(request(1, 2, flow_id=7, hop=3, attempt=1))
        assert "F7" in text and "hop 3.1" in text


class TestExpandInstance:
    def _instance(self, route=(0, 1, 2), period=100, deadline=80):
        f = Flow(0, route[0], route[-1], period, deadline, tuple(route))
        return next(f.instances(period))

    def test_two_attempts_per_hop(self):
        requests = expand_instance(self._instance())
        assert len(requests) == 4  # 2 hops x 2 attempts
        assert [(r.hop_index, r.attempt) for r in requests] == [
            (0, 0), (0, 1), (1, 0), (1, 1)]

    def test_attempt_links_match_route(self):
        requests = expand_instance(self._instance())
        assert requests[0].link == (0, 1)
        assert requests[1].link == (0, 1)
        assert requests[2].link == (1, 2)

    def test_single_attempt_mode(self):
        requests = expand_instance(self._instance(), attempts_per_link=1)
        assert len(requests) == 2

    def test_deadline_propagated(self):
        requests = expand_instance(self._instance(deadline=80))
        assert all(r.deadline_slot == 79 for r in requests)

    def test_unrouted_flow_rejected(self):
        f = Flow(0, 0, 2, 100, 100)
        instance = next(f.instances(100))
        with pytest.raises(ValueError):
            expand_instance(instance)

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            expand_instance(self._instance(), attempts_per_link=0)


class TestSchedule:
    def test_add_and_query(self):
        schedule = Schedule(num_nodes=5, num_slots=10, num_offsets=2)
        entry = schedule.add(request(0, 1), slot=3, offset=1)
        assert entry.slot == 3 and entry.offset == 1
        assert schedule.node_busy(0, 3) and schedule.node_busy(1, 3)
        assert not schedule.node_busy(2, 3)
        assert schedule.cell_size(3, 1) == 1
        assert len(schedule) == 1

    def test_conflicting_add_rejected(self):
        schedule = Schedule(5, 10, 2)
        schedule.add(request(0, 1), 3, 0)
        with pytest.raises(ValueError):
            schedule.add(request(1, 2), 3, 1)  # shares node 1

    def test_out_of_range_rejected(self):
        schedule = Schedule(5, 10, 2)
        with pytest.raises(ValueError):
            schedule.add(request(0, 1), 10, 0)
        with pytest.raises(ValueError):
            schedule.add(request(0, 1), 0, 2)

    def test_conflict_mask_and_count(self):
        schedule = Schedule(5, 10, 2)
        schedule.add(request(0, 1), 2, 0)
        schedule.add(request(2, 3), 5, 0)
        assert schedule.conflict_count(1, 4, 0, 9) == 1
        assert schedule.conflict_count(0, 3, 0, 9) == 2
        assert schedule.conflict_count(4, 4 - 4, 6, 9) == 0
        mask = schedule.conflict_mask(0, 4, 0, 9)
        assert list(mask.nonzero()[0]) == [2]

    def test_conflict_empty_window(self):
        schedule = Schedule(5, 10, 2)
        assert schedule.conflict_count(0, 1, 5, 4) == 0

    def test_offsets_tracking(self):
        schedule = Schedule(6, 10, 3)
        schedule.add(request(0, 1), 4, 0)
        schedule.add(request(2, 3), 4, 2)
        assert schedule.used_offsets(4) == [0, 2]
        assert schedule.free_offsets(4) == [1]
        assert schedule.has_free_offset(4)
        schedule.add(request(4, 5), 4, 1)
        assert not schedule.has_free_offset(4)

    def test_free_offset_slots_mask(self):
        schedule = Schedule(4, 5, 1)
        schedule.add(request(0, 1), 2, 0)
        mask = schedule.free_offset_slots(0, 4)
        assert list(mask) == [True, True, False, True, True]

    def test_slot_transmissions(self):
        schedule = Schedule(6, 10, 3)
        schedule.add(request(0, 1), 4, 0)
        schedule.add(request(2, 3), 4, 1)
        assert len(schedule.slot_transmissions(4)) == 2
        assert schedule.slot_transmissions(5) == []

    def test_cells_and_reuse(self):
        schedule = Schedule(8, 10, 2)
        schedule.add(request(0, 1), 1, 0)
        schedule.add(request(2, 3), 1, 0)  # shares channel offset 0
        schedule.add(request(4, 5), 1, 1)
        reused = schedule.reused_cells()
        assert len(reused) == 1
        slot, offset, txs = reused[0]
        assert (slot, offset) == (1, 0)
        assert len(txs) == 2
        assert schedule.num_reused_cells() == 1

    def test_reuse_links(self):
        schedule = Schedule(8, 10, 2)
        schedule.add(request(0, 1), 1, 0)
        schedule.add(request(2, 3), 1, 0)
        schedule.add(request(4, 5), 2, 0)  # exclusive cell
        assert schedule.reuse_links() == [(0, 1), (2, 3)]

    def test_entries_by_slot(self):
        schedule = Schedule(8, 10, 2)
        schedule.add(request(0, 1), 5, 0)
        schedule.add(request(2, 3), 1, 0)
        by_slot = schedule.entries_by_slot()
        assert list(by_slot) == [1, 5]

    def test_makespan(self):
        schedule = Schedule(4, 10, 1)
        assert schedule.makespan() == 0
        schedule.add(request(0, 1), 7, 0)
        assert schedule.makespan() == 8

    def test_validate_basic_passes(self):
        schedule = Schedule(6, 10, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(2, 3), 0, 1)
        schedule.validate_basic()

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Schedule(0, 10, 2)
        with pytest.raises(ValueError):
            Schedule(5, 0, 2)
        with pytest.raises(ValueError):
            Schedule(5, 10, 0)
