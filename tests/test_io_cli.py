"""Tests for repro.io (persistence) and repro.cli."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.schedule import Schedule
from repro.flows.flow import Flow, FlowSet
from repro.io import (
    load_flow_set,
    load_schedule,
    load_topology,
    save_flow_set,
    save_schedule,
    save_topology,
)

from test_core_schedule import request


class TestTopologyRoundtrip:
    def test_roundtrip(self, line_topology, tmp_path):
        path = tmp_path / "topo.npz"
        save_topology(line_topology, path)
        loaded = load_topology(path)
        assert np.array_equal(loaded.prr, line_topology.prr)
        assert list(loaded.channel_map) == list(line_topology.channel_map)
        assert loaded.num_nodes == line_topology.num_nodes
        assert loaded.name == line_topology.name

    def test_roles_and_positions_preserved(self, line_topology, tmp_path):
        topo = line_topology.with_access_points([2])
        path = tmp_path / "topo.npz"
        save_topology(topo, path)
        loaded = load_topology(path)
        assert loaded.access_points() == [2]
        assert loaded.node(3).position.x == 3.0

    def test_real_testbed_roundtrip(self, wustl, tmp_path):
        topology, _ = wustl
        path = tmp_path / "wustl.npz"
        save_topology(topology, path)
        loaded = load_topology(path)
        assert np.array_equal(loaded.prr, topology.prr)


class TestFlowSetRoundtrip:
    def test_roundtrip(self, tmp_path):
        flows = FlowSet([
            Flow(0, 1, 5, 100, 80, (1, 3, 5)),
            Flow(1, 2, 4, 200, 200),
        ])
        path = tmp_path / "flows.json"
        save_flow_set(flows, path)
        loaded = load_flow_set(path)
        assert len(loaded) == 2
        assert loaded[0].route == (1, 3, 5)
        assert loaded[1].period_slots == 200
        assert [f.flow_id for f in loaded] == [0, 1]

    def test_wire_after_preserved(self, tmp_path):
        flows = FlowSet([Flow(0, 1, 5, 100, 100, (1, 2, 4, 5),
                              wire_after=1)])
        path = tmp_path / "flows.json"
        save_flow_set(flows, path)
        loaded = load_flow_set(path)
        assert loaded[0].wire_after == 1
        assert loaded[0].links == ((1, 2), (4, 5))

    def test_json_is_human_readable(self, tmp_path):
        flows = FlowSet([Flow(0, 1, 5, 100, 100)])
        path = tmp_path / "flows.json"
        save_flow_set(flows, path)
        payload = json.loads(path.read_text())
        assert payload["flows"][0]["source"] == 1


class TestScheduleRoundtrip:
    def test_roundtrip(self, tmp_path):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(2, 3), 0, 1)
        schedule.add(request(4, 5), 3, 0)
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path)
        loaded = load_schedule(path)
        assert len(loaded) == 3
        assert loaded.cell_size(0, 1) == 1
        assert loaded.node_busy(4, 3)
        loaded.validate_basic()

    def test_load_rechecks_invariants(self, tmp_path):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path)
        payload = json.loads(path.read_text())
        payload["entries"].append(dict(payload["entries"][0],
                                       receiver=2, offset=1))
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_schedule(path)  # node 0 double-booked in slot 0

    def test_non_strict_load_reproduces_node_conflict(self, tmp_path):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.force_add(request(1, 2, flow_id=1), 0, 1)
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path)
        loaded = load_schedule(path, strict=False)
        assert len(loaded) == 2
        with pytest.raises(AssertionError):
            loaded.validate_basic()  # the conflict survived the round trip

    def test_state_blob_round_trips_corrupt_bookkeeping(self, tmp_path):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5, flow_id=1), 0, 0)
        schedule._occ_senders[0, 0, 0] = 3  # corrupt the lane
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path, include_state=True)
        loaded = load_schedule(path, strict=False)
        assert int(loaded._occ_senders[0, 0, 0]) == 3
        # A strict load of the same dump ignores the blob and rebuilds
        # consistent bookkeeping from the entries.
        strict = load_schedule(path)
        assert int(strict._occ_senders[0, 0, 0]) == 0
        strict.validate_basic()


class TestCli:
    def test_topology_command(self, capsys):
        assert main(["topology", "--testbed", "wustl",
                     "--channels", "4"]) == 0
        out = capsys.readouterr().out
        assert "nodes: 60" in out
        assert "reuse graph" in out

    def test_topology_save(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        assert main(["topology", "--testbed", "wustl", "--channels", "4",
                     "--save", str(path)]) == 0
        assert path.exists()
        loaded = load_topology(path)
        assert loaded.num_channels == 4

    def test_sweep_command(self, capsys):
        assert main(["sweep", "--testbed", "wustl", "--values", "4",
                     "--flows", "20", "--flow-sets", "2"]) == 0
        out = capsys.readouterr().out
        assert "NR:" in out and "RC:" in out

    def test_reliability_command(self, capsys):
        assert main(["reliability", "--flow-sets", "1",
                     "--repetitions", "5"]) == 0
        out = capsys.readouterr().out
        assert "median" in out

    def test_detection_command(self, capsys):
        assert main(["detection", "--flows", "40", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "RA/clean" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_testbed_rejected(self):
        with pytest.raises(SystemExit):
            main(["topology", "--testbed", "mars"])

    def test_seed_round_trip_is_reproducible(self, capsys):
        args = ["sweep", "--testbed", "wustl", "--values", "4",
                "--flows", "15", "--flow-sets", "2", "--seed", "123"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_seed_changes_testbed(self, capsys):
        base = ["topology", "--testbed", "wustl", "--channels", "4"]
        assert main(base + ["--seed", "1"]) == 0
        seeded = capsys.readouterr().out
        assert main(base + ["--seed", "2"]) == 0
        reseeded = capsys.readouterr().out
        assert seeded != reseeded


class TestCliObservability:
    def test_sweep_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro import obs
        from repro.io import load_jsonl, load_metrics

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(["sweep", "--testbed", "wustl", "--values", "4",
                     "--flows", "15", "--flow-sets", "1", "--seed", "7",
                     "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        assert not obs.is_enabled()  # CLI restores the disabled default

        events = load_jsonl(trace)
        kinds = {event["kind"] for event in events}
        assert "placement" in kinds

        snapshot = load_metrics(metrics)
        counters = snapshot["counters"]
        assert counters["scheduler.placements"] > 0
        for policy in ("NR", "RA", "RC"):
            assert counters[f"policy.{policy}.runs"] == 1
        assert "time.phase.schedule.calls" in counters

    def test_report_command(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.jsonl"
        assert main(["sweep", "--testbed", "wustl", "--values", "4",
                     "--flows", "15", "--flow-sets", "1", "--seed", "7",
                     "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["report", str(metrics), "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "scheduler:" in out
        assert "policies:" in out
        assert "wall time per phase:" in out
        assert "trace events by kind:" in out

    def test_report_missing_metrics_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["report", str(missing)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        error_lines = captured.err.strip().splitlines()
        assert len(error_lines) == 1
        assert error_lines[0].startswith(
            f"error: cannot read metrics from {missing}")

    def test_report_corrupt_metrics_fails_cleanly(self, tmp_path, capsys):
        corrupt = tmp_path / "metrics.json"
        corrupt.write_text("{this is not json")
        assert main(["report", str(corrupt)]) == 2
        captured = capsys.readouterr()
        assert len(captured.err.strip().splitlines()) == 1
        assert "error: cannot read metrics" in captured.err


class TestCliValidate:
    """repro validate must catch every corrupt-schedule fixture end to
    end: dump -> (non-sanitizing) load -> audit -> exit code 1."""

    @pytest.fixture()
    def line_artifacts(self, line_topology, tmp_path):
        topo_path = tmp_path / "topo.npz"
        save_topology(line_topology, topo_path)
        return line_topology, topo_path, tmp_path

    def run_validate(self, topo_path, sched_path, capsys, extra=()):
        code = main(["validate", "--schedule", str(sched_path),
                     "--topology", str(topo_path), *extra])
        return code, capsys.readouterr().out

    def save(self, schedule, tmp_path, include_state=False):
        path = tmp_path / "sched.json"
        save_schedule(schedule, path, include_state=include_state)
        return path

    def test_clean_schedule_passes(self, line_artifacts, capsys):
        _, topo_path, tmp_path = line_artifacts
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5, flow_id=1), 0, 0)  # effective rho 3
        report_path = tmp_path / "audit.json"
        code, out = self.run_validate(
            topo_path, self.save(schedule, tmp_path), capsys,
            extra=["--report-out", str(report_path)])
        assert code == 0
        assert "audit OK" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["cell_rho"] == {"0,0": 3}

    def test_catches_node_conflict(self, line_artifacts, capsys):
        _, topo_path, tmp_path = line_artifacts
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.force_add(request(1, 2, flow_id=1), 0, 1)
        code, out = self.run_validate(
            topo_path, self.save(schedule, tmp_path), capsys)
        assert code == 1
        assert "[node_conflict]" in out

    def test_catches_rho_floor_violation(self, line_artifacts, capsys):
        _, topo_path, tmp_path = line_artifacts
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(2, 3, flow_id=1), 0, 0)  # effective rho 1
        code, out = self.run_validate(
            topo_path, self.save(schedule, tmp_path), capsys,
            extra=["--rho-t", "2"])
        assert code == 1
        assert "[rho_floor]" in out
        assert "effective rho 1 below floor 2" in out

    def test_catches_out_of_deadline_placement(self, line_artifacts,
                                               capsys):
        _, topo_path, tmp_path = line_artifacts
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1, release=0, deadline=5), 7, 0)
        code, out = self.run_validate(
            topo_path, self.save(schedule, tmp_path), capsys)
        assert code == 1
        assert "[window]" in out
        assert "after deadline 5" in out

    def test_catches_occupancy_lane_mismatch(self, line_artifacts, capsys):
        _, topo_path, tmp_path = line_artifacts
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5, flow_id=1), 0, 0)
        schedule._occ_senders[0, 0, 0] = 3
        code, out = self.run_validate(
            topo_path, self.save(schedule, tmp_path, include_state=True),
            capsys)
        assert code == 1
        assert "[occupancy]" in out
        assert "lane 0" in out

    def test_nr_policy_flags_any_reuse(self, line_artifacts, capsys):
        _, topo_path, tmp_path = line_artifacts
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5, flow_id=1), 0, 0)
        code, out = self.run_validate(
            topo_path, self.save(schedule, tmp_path), capsys,
            extra=["--policy", "NR"])
        assert code == 1  # NR audits with an infinite floor
        assert "[rho_floor]" in out

    def test_missing_artifact_is_operator_error(self, line_artifacts,
                                                capsys):
        _, topo_path, tmp_path = line_artifacts
        code = main(["validate", "--schedule", str(tmp_path / "nope.json"),
                     "--topology", str(topo_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: cannot load artifacts")

    def test_size_mismatch_is_operator_error(self, line_artifacts, capsys):
        _, topo_path, tmp_path = line_artifacts
        schedule = Schedule(9, 20, 2)  # 9 nodes vs the 6-node topology
        schedule.add(request(7, 8), 0, 0)
        code = main(["validate", "--schedule",
                     str(self.save(schedule, tmp_path)),
                     "--topology", str(topo_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "does not match" in captured.err


class TestCliFuzz:
    def test_smoke_run_exits_zero(self, capsys):
        assert main(["fuzz", "--cases", "2", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "fuzz OK: 2 cases" in out

    def test_nonpositive_cases_is_operator_error(self, capsys):
        assert main(["fuzz", "--cases", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_failure_writes_artifacts(self, tmp_path, capsys, monkeypatch):
        from repro.validate import FuzzCaseResult, FuzzReport

        def fake_run_fuzz(cases, seed=0, on_case=None):
            report = FuzzReport(seed=seed, num_cases=cases)
            case = FuzzCaseResult(index=0, seed=seed)
            case.fail("kernel_equivalence", "scalar and vector disagree")
            report.cases.append(case)
            if on_case is not None:
                on_case(case)
            return report

        monkeypatch.setattr("repro.validate.run_fuzz", fake_run_fuzz)
        artifacts = tmp_path / "artifacts"
        code = main(["fuzz", "--cases", "1", "--seed", "9",
                     "--artifacts", str(artifacts)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL case 0 (kernel_equivalence)" in out
        case_payload = json.loads(
            (artifacts / "case_0000.json").read_text())
        assert case_payload["reproduce"] == "repro fuzz --cases 1 --seed 9"
        report_payload = json.loads((artifacts / "report.json").read_text())
        assert report_payload["ok"] is False
        assert report_payload["num_failed"] == 1


class TestCliManager:
    def test_manage_quick_writes_report_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "manager.json"
        assert main(["manage", "--quick", "--epochs", "3", "--policy",
                     "noop", "--seed", "1",
                     "--report-out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "policy NoOp / scenario 'reuse-storm'" in out
        payload = json.loads(out_path.read_text())
        assert payload["policy"] == "NoOp"
        assert payload["seed"] == 1
        assert len(payload["epochs"]) == 3

    def test_manage_multi_seed_writes_report_list(self, tmp_path, capsys):
        out_path = tmp_path / "managers.json"
        assert main(["manage", "--quick", "--epochs", "2", "--policy",
                     "noop", "--scenario", "quiet", "--seeds", "1", "2",
                     "--report-out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert [report["seed"] for report in payload] == [1, 2]

    def test_adapt_quick_prints_comparison(self, capsys):
        assert main(["adapt", "--quick", "--epochs", "3", "--policies",
                     "noop", "reschedule", "--scenario", "quiet",
                     "--seed", "1", "--metric", "median"]) == 0
        out = capsys.readouterr().out
        assert "median PDR per epoch" in out
        assert "NoOp" in out and "RescheduleVictims" in out
        assert "trend (one char/epoch" in out

    def test_manage_unknown_scenario_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["manage", "--scenario", "definitely-not-a-preset",
                  "--epochs", "2", "--quick"])


class TestCliObservatory:
    """manage --timeseries -> repro top / repro metrics round trip."""

    @pytest.fixture()
    def managed_artifacts(self, tmp_path, capsys):
        ts_path = tmp_path / "ts.jsonl"
        snap_path = tmp_path / "metrics.json"
        assert main(["manage", "--quick", "--epochs", "4", "--flows", "10",
                     "--policy", "reschedule", "--seed", "3",
                     "--timeseries", str(ts_path),
                     "--metrics-out", str(snap_path),
                     "--no-ledger"]) == 0
        return ts_path, snap_path, capsys.readouterr().out

    def test_manage_writes_timeseries_dump(self, managed_artifacts):
        ts_path, _, out = managed_artifacts
        assert "timeseries:" in out and str(ts_path) in out
        lines = [json.loads(l) for l in
                 ts_path.read_text().splitlines() if l]
        kinds = {record["kind"] for record in lines}
        assert kinds == {"series", "ts_meta"}
        names = {r["name"] for r in lines if r["kind"] == "series"}
        assert "manager.median_pdr" in names
        assert any(n.startswith("slo.flow.") for n in names)

    def test_top_once_renders_without_consuming_input(
            self, managed_artifacts, capsys):
        ts_path, snap_path, _ = managed_artifacts
        before = ts_path.read_text()
        assert main(["top", str(ts_path), "--metrics", str(snap_path),
                     "--once", "--ascii"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "median PDR" in out
        assert "flow SLOs" in out
        assert "manager epochs" in out
        # Regression: top's input positional must never be treated as a
        # recording *output* path and overwritten.
        assert ts_path.read_text() == before

    def test_openmetrics_export_and_check_round_trip(
            self, managed_artifacts, tmp_path, capsys):
        ts_path, snap_path, _ = managed_artifacts
        exp_path = tmp_path / "exposition.txt"
        assert main(["metrics", "export", "--metrics", str(snap_path),
                     "--timeseries", str(ts_path), "--openmetrics",
                     "--out", str(exp_path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "exposition validated (strict parse)" in out
        text = exp_path.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_slo_pdr{" in text
        assert "repro_channel_prr{" in text
        assert main(["metrics", "check", str(exp_path)]) == 0
        assert capsys.readouterr().out.startswith("ok: ")

    def test_metrics_check_rejects_malformed_exposition(self, tmp_path,
                                                        capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("repro_x 1\n# EOF\n")
        assert main(["metrics", "check", str(bad)]) == 1
        assert "invalid exposition" in capsys.readouterr().err
        assert main(["metrics", "check", str(tmp_path / "missing.txt")]) \
            == 2

    def test_metrics_export_requires_an_input(self, capsys):
        assert main(["metrics", "export", "--openmetrics"]) == 2
        assert "--metrics and/or --timeseries" in capsys.readouterr().err

    def test_top_missing_dump_errors(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope.jsonl"), "--once"]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestCliLedgerCorruption:
    def test_ledger_list_warns_about_corrupt_lines(self, tmp_path,
                                                   capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        ledger_path = tmp_path / "runs.jsonl"
        assert main(["manage", "--quick", "--epochs", "2", "--policy",
                     "noop", "--scenario", "quiet", "--seed", "1",
                     "--ledger", str(ledger_path)]) == 0
        capsys.readouterr()
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write('{"half a record...\n')
        assert main(["ledger", "list", "--ledger", str(ledger_path)]) == 0
        captured = capsys.readouterr()
        assert "warning: skipped 1 unparseable line(s)" in captured.err
        assert "manage" in captured.out  # the good record still lists
