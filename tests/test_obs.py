"""Tests for the observability layer (repro.obs) and its integrations."""

import json

import pytest

from repro import obs
from repro.core.nr import NoReusePolicy
from repro.core.rc import ConservativeReusePolicy
from repro.core.scheduler import FixedPriorityScheduler
from repro.flows.flow import Flow, FlowSet
from repro.io import (
    load_jsonl,
    load_metrics,
    save_jsonl,
    save_metrics,
    scheduling_result_to_dict,
)
from repro.network.graphs import ChannelReuseGraph, CommunicationGraph
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.recorder import NullRecorder, Recorder
from repro.obs.report import format_report
from repro.obs.trace import Tracer
from repro.routing.traffic import TrafficType, assign_routes


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_get_or_create_and_increment(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 2.5)
        assert registry.counter_value("a.b") == 3.5
        assert registry.counter_value("missing") == 0.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("a", -1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 4)
        registry.set_gauge("g", 2)
        assert registry.snapshot()["gauges"]["g"] == 2.0

    def test_histogram_bucketing(self):
        hist = Histogram("h", buckets=(1, 2, 5))
        for value in (0.5, 1.0, 1.5, 3, 10):
            hist.observe(value)
        # Upper bounds are inclusive: 1.0 lands in the <=1 bucket.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.min == 0.5 and hist.max == 10
        assert hist.mean() == pytest.approx(16.0 / 5)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2, 1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1))

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 7)
        registry.observe("h", 3, buckets=(1, 4))
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"]["c"] == 2
        assert snapshot["histograms"]["h"]["counts"] == [0, 1, 0]

    def test_merge_snapshot_adds_counters_and_bins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, n in ((a, 1), (b, 2)):
            registry.inc("c", n)
            registry.observe("h", n, buckets=(1, 4))
            registry.set_gauge("g", n)
        a.merge_snapshot(b.snapshot())
        merged = a.snapshot()
        assert merged["counters"]["c"] == 3
        assert merged["histograms"]["h"]["counts"] == [1, 1, 0]
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["min"] == 1
        assert merged["histograms"]["h"]["max"] == 2
        assert merged["gauges"]["g"] == 2  # last write wins

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1, buckets=(1, 2))
        b.observe("h", 1, buckets=(1, 3))
        with pytest.raises(ValueError) as excinfo:
            a.merge_snapshot(b.snapshot())
        # The error names the metric and both bucket-bound lists.
        message = str(excinfo.value)
        assert "'h'" in message
        assert "[1.0, 2.0]" in message and "[1.0, 3.0]" in message
        # A failed merge leaves the target histogram untouched.
        assert a.snapshot()["histograms"]["h"]["counts"] == [1, 0, 0]
        assert a.snapshot()["histograms"]["h"]["count"] == 1

    def test_merge_rejects_bin_count_mismatch(self):
        a = MetricsRegistry()
        a.observe("h", 1, buckets=(1, 2))
        bad = {"histograms": {"h": {
            "buckets": [1, 2], "counts": [0, 0], "count": 0,
            "sum": 0.0, "min": None, "max": None}}}
        with pytest.raises(ValueError) as excinfo:
            a.merge_snapshot(bad)
        assert "'h'" in str(excinfo.value)
        assert a.snapshot()["histograms"]["h"]["counts"] == [1, 0, 0]

    def test_merge_snapshots_static(self):
        snaps = []
        for n in (1, 2, 4):
            registry = MetricsRegistry()
            registry.inc("c", n)
            snaps.append(registry.snapshot())
        assert MetricsRegistry.merge_snapshots(snaps)["counters"]["c"] == 7

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_emit_and_read_back(self):
        tracer = Tracer()
        tracer.emit("placement", flow=3, slot=7)
        (event,) = tracer.events()
        assert event.kind == "placement"
        assert event.to_dict() == {"seq": 0, "kind": "placement",
                                   "flow": 3, "slot": 7}

    def test_ring_overflow_keeps_newest_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for index in range(10):
            tracer.emit("e", index=index)
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert [e.fields["index"] for e in tracer.events()] == [7, 8, 9]
        # Sequence numbers are global, so gaps reveal the drops.
        assert [e.seq for e in tracer.events()] == [7, 8, 9]

    def test_kind_counts_and_clear(self):
        tracer = Tracer()
        tracer.emit("a")
        tracer.emit("a")
        tracer.emit("b")
        assert tracer.kind_counts() == {"a": 2, "b": 1}
        tracer.clear()
        assert len(tracer) == 0

    def test_jsonl_export_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("placement", flow=1, reused=False)
        tracer.emit("rc_fallback", from_rho=None, to_rho=4)
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        records = load_jsonl(path)
        assert records[:-1] == tracer.event_dicts()
        assert records[1]["to_rho"] == 4
        trailer = records[-1]
        assert trailer == {"kind": "trace_meta", "dropped": 0,
                           "capacity": tracer.capacity}

    def test_jsonl_export_reports_drops(self, tmp_path):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit("placement", flow=i)
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        records = load_jsonl(path)
        assert [r["flow"] for r in records[:-1]] == [3, 4]
        assert records[-1] == {"kind": "trace_meta", "dropped": 3,
                               "capacity": 2}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


# ----------------------------------------------------------------------
# Recorder runtime
# ----------------------------------------------------------------------

class TestRecorderRuntime:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert isinstance(obs.get_recorder(), NullRecorder)

    def test_null_recorder_discards_everything(self):
        recorder = NullRecorder()
        recorder.count("c")
        recorder.observe("h", 1)
        recorder.set_gauge("g", 1)
        recorder.event("e", x=1)
        assert recorder.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert len(recorder.tracer) == 0

    def test_recording_scopes_and_restores(self):
        assert not obs.is_enabled()
        with obs.recording() as recorder:
            assert obs.is_enabled()
            assert obs.get_recorder() is recorder
            recorder.count("x")
        assert not obs.is_enabled()
        assert isinstance(obs.get_recorder(), NullRecorder)

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.recording():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_nested_recording_restores_outer(self):
        with obs.recording() as outer:
            inner_rec = Recorder()
            with obs.recording(inner_rec):
                assert obs.get_recorder() is inner_rec
            assert obs.get_recorder() is outer

    def test_timed_records_calls_and_totals(self):
        with obs.recording() as recorder:
            with obs.timed("unit.test"):
                pass
        counters = recorder.snapshot()["counters"]
        assert counters["time.unit.test.calls"] == 1
        assert counters["time.unit.test.total_s"] >= 0.0

    def test_timed_is_noop_when_disabled(self):
        with obs.timed("unit.noop"):
            pass
        assert obs.get_recorder().snapshot()["counters"] == {}

    def test_span_emits_phase_event(self):
        with obs.recording() as recorder:
            with obs.span("unit.span", point=3):
                pass
        (event,) = recorder.tracer.events()
        assert event.kind == "phase"
        assert event.fields["name"] == "unit.span"
        assert event.fields["point"] == 3
        assert event.fields["duration_s"] >= 0.0


# ----------------------------------------------------------------------
# Instrumented scheduler integration
# ----------------------------------------------------------------------

def _routed_line_flows(topology, num_flows=3, period=64):
    communication = CommunicationGraph.from_topology(topology, 0.9)
    flows = FlowSet([
        Flow(i, 0, 5, period, period) for i in range(num_flows)])
    return assign_routes(flows.deadline_monotonic(), communication,
                         TrafficType.PEER_TO_PEER, [])


def _scheduler(topology, policy, num_offsets=2):
    reuse = ChannelReuseGraph.from_topology(topology)
    return FixedPriorityScheduler(
        num_nodes=topology.num_nodes, num_offsets=num_offsets,
        reuse_graph=reuse, policy=policy)


class TestSchedulerIntegration:
    def test_result_counters_populated_when_recording(self, line_topology):
        flows = _routed_line_flows(line_topology)
        with obs.recording() as recorder:
            result = _scheduler(line_topology, NoReusePolicy()).run(flows)
        assert result.schedulable
        assert result.counters["placements"] == len(result.schedule.entries)
        assert result.counters["placements_tried"] >= \
            result.counters["placements"]
        assert result.counters["slots_scanned"] > 0
        kinds = recorder.tracer.kind_counts()
        assert kinds["placement"] == result.counters["placements"]
        assert kinds["flow_admitted"] == 3

    def test_result_counters_json_serializable_through_io(
            self, line_topology, tmp_path):
        flows = _routed_line_flows(line_topology)
        with obs.recording():
            result = _scheduler(line_topology, NoReusePolicy()).run(flows)
        payload = scheduling_result_to_dict(result)
        text = json.dumps(payload)  # must not raise
        restored = json.loads(text)
        assert restored["counters"] == result.counters
        assert restored["policy"] == "NR"
        assert len(restored["schedule"]["entries"]) == \
            result.counters["placements"]

    def test_rc_fallback_events_and_counters(self, line_topology):
        # One channel and tight deadlines force RC below ∞: laxity goes
        # negative and ρ falls toward the floor.
        communication = CommunicationGraph.from_topology(line_topology, 0.9)
        flows = FlowSet([Flow(i, 0, 5, 32, 16) for i in range(3)])
        routed = assign_routes(flows.deadline_monotonic(), communication,
                               TrafficType.PEER_TO_PEER, [])
        with obs.recording() as recorder:
            result = _scheduler(
                line_topology, ConservativeReusePolicy(),
                num_offsets=1).run(routed)
        counters = recorder.snapshot()["counters"]
        kinds = recorder.tracer.kind_counts()
        assert kinds.get("laxity_eval", 0) > 0
        assert counters.get("rc.laxity_triggers", 0) > 0
        assert counters.get("rc.reuse_fallbacks", 0) > 0
        assert kinds.get("rc_fallback", 0) == counters["rc.reuse_fallbacks"]
        assert result.counters["laxity_triggers"] > 0

    def test_per_policy_counters(self, line_topology):
        flows = _routed_line_flows(line_topology)
        with obs.recording() as recorder:
            _scheduler(line_topology, NoReusePolicy()).run(flows)
        counters = recorder.snapshot()["counters"]
        assert counters["policy.NR.runs"] == 1
        assert counters["policy.NR.schedulable"] == 1
        assert counters["policy.NR.place_calls"] == \
            counters["policy.NR.placements"]

    def test_disabled_run_adds_no_events_and_empty_counters(
            self, line_topology):
        assert not obs.is_enabled()
        flows = _routed_line_flows(line_topology)
        result = _scheduler(line_topology, NoReusePolicy()).run(flows)
        assert result.schedulable
        # Benchmark-style guarantee: the NullRecorder path records
        # nothing at all — no events, no counters.
        assert result.counters == {}
        null = obs.get_recorder()
        assert len(null.tracer) == 0
        assert null.snapshot()["counters"] == {}

    def test_enabled_and_disabled_runs_agree_on_schedule(self, grid_topology):
        flows = _routed_line_flows(grid_topology, num_flows=2)
        baseline = _scheduler(grid_topology, ConservativeReusePolicy(),
                              num_offsets=1).run(flows)
        with obs.recording():
            observed = _scheduler(grid_topology, ConservativeReusePolicy(),
                                  num_offsets=1).run(flows)
        assert observed.schedulable == baseline.schedulable
        assert [(e.slot, e.offset) for e in observed.schedule.entries] == \
            [(e.slot, e.offset) for e in baseline.schedule.entries]


# ----------------------------------------------------------------------
# Metrics persistence + report rendering
# ----------------------------------------------------------------------

class TestPersistenceAndReport:
    def test_metrics_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("scheduler.placements", 12)
        registry.observe("rc.fallback_rho", 2, buckets=(1, 2, 3))
        path = tmp_path / "metrics.json"
        save_metrics(registry.snapshot(), path)
        assert load_metrics(path) == registry.snapshot()

    def test_jsonl_roundtrip_skips_blank_lines(self, tmp_path):
        path = tmp_path / "r.jsonl"
        save_jsonl([{"a": 1}, {"b": [1, 2]}], path)
        path.write_text(path.read_text() + "\n\n")
        assert load_jsonl(path) == [{"a": 1}, {"b": [1, 2]}]

    def test_format_report_sections(self):
        registry = MetricsRegistry()
        registry.inc("scheduler.slots_scanned", 100)
        registry.inc("policy.RC.runs")
        registry.inc("policy.RC.schedulable")
        registry.inc("policy.RC.placements", 40)
        registry.inc("sim.attempts", 10)
        registry.inc("sim.successes", 9)
        registry.inc("detection.ks_tests", 4)
        registry.inc("detection.verdict.reject", 2)
        registry.inc("time.phase.schedule.calls", 2)
        registry.inc("time.phase.schedule.total_s", 0.5)
        registry.observe("rc.fallback_rho", 2, buckets=(1, 2, 3))
        text = format_report(registry.snapshot(), {"placement": 40})
        assert "slots scanned" in text
        assert "RC" in text and "40" in text
        assert "attempt success rate" in text and "0.9" in text
        assert "verdict reject" in text
        assert "phase.schedule" in text
        assert "placement" in text

    def test_format_report_empty(self):
        assert "empty" in format_report(
            {"counters": {}, "gauges": {}, "histograms": {}})
