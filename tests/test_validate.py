"""Tests for repro.validate: the auditor and the differential fuzzer."""

import json
import math

import numpy as np
import pytest

from repro.core import kernel as _kernel
from repro.core.rc import (ConservativeReusePolicy, RHO_RESET_FLOW)
from repro.core.schedule import Schedule
from repro.core.scheduler import FixedPriorityScheduler
from repro.experiments.common import (build_workload, make_policy,
                                      prepare_network)
from repro.flows.generator import PeriodRange
from repro.obs import recorder as _obs
from repro.obs.recorder import Recorder
from repro.routing.traffic import TrafficType
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import make_testbed
from repro.validate import AuditReport, audit_schedule, run_fuzz
from repro.validate.fuzz import _schedule_signature, run_case

from test_core_schedule import request


@pytest.fixture(scope="module")
def scheduled_network():
    """A deterministic synth network + workload where RA reuses heavily
    and RC still produces shared cells (seed chosen for that)."""
    topology, environment = make_testbed(
        16, FloorPlan(num_floors=1, floor_width_m=50, floor_depth_m=30),
        12, name="validate-fixture")
    network = prepare_network(topology, num_channels=3)
    flow_set = build_workload(network, 6, PeriodRange(-2, -1),
                              TrafficType.PEER_TO_PEER,
                              np.random.default_rng(12))
    return network, environment, flow_set


def run_policy(network, flow_set, policy):
    scheduler = FixedPriorityScheduler(
        num_nodes=network.topology.num_nodes,
        num_offsets=network.num_channels,
        reuse_graph=network.reuse,
        policy=policy)
    return scheduler.run(flow_set)


@pytest.fixture
def line_reuse_graph(line_topology):
    """Reuse graph of the 6-node line (hop distance = index difference)."""
    return prepare_network(line_topology).reuse


class TestAuditorCleanSchedules:
    def test_ra_schedule_audits_ok(self, scheduled_network):
        network, _, flow_set = scheduled_network
        result = run_policy(network, flow_set, make_policy("RA", 1))
        assert result.schedulable
        report = audit_schedule(result.schedule, network.reuse, 1,
                                flow_set=flow_set)
        assert report.ok
        assert report.num_entries == len(result.schedule)
        assert report.num_shared_cells == result.schedule.num_reused_cells()
        assert report.min_effective_rho() >= 1

    def test_rc_schedule_respects_its_floor(self, scheduled_network):
        network, _, flow_set = scheduled_network
        result = run_policy(network, flow_set, make_policy("RC", 2))
        assert result.schedulable
        report = audit_schedule(result.schedule, network.reuse, 2,
                                flow_set=flow_set)
        assert report.ok
        assert report.num_shared_cells > 0
        assert report.min_effective_rho() >= 2

    def test_empty_schedule_audits_ok(self, line_reuse_graph):
        report = audit_schedule(Schedule(6, 10, 2), line_reuse_graph, 2)
        assert report.ok
        assert report.num_entries == 0
        assert report.min_effective_rho() is None

    def test_graph_size_mismatch_rejected(self, line_reuse_graph):
        with pytest.raises(ValueError):
            audit_schedule(Schedule(7, 10, 2), line_reuse_graph, 2)


class TestAuditorCorruptions:
    """Each hand-corrupted schedule must be caught with a precise
    diagnostic naming the offending cell, node, or request."""

    def test_node_conflict(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        # Node 1 double-booked in slot 0; force_add bypasses the guard
        # exactly like a corrupt artifact would.
        schedule.force_add(request(1, 2, flow_id=1), 0, 1)
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.kinds() == ["node_conflict"]
        [violation] = report.violations
        assert violation.slot == 0
        assert "node 1" in violation.message
        assert "0->1" in violation.message and "1->2" in violation.message

    def test_rho_floor_violation(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        # Links (0,1) and (2,3) share cell (0,0): effective rho =
        # min(hops(0,3)=3, hops(2,1)=1) = 1, below a floor of 2.
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(2, 3, flow_id=1), 0, 0)
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.kinds() == ["rho_floor"]
        assert report.cell_rho[(0, 0)] == 1
        assert report.min_effective_rho() == 1
        [violation] = report.violations
        assert (violation.slot, violation.offset) == (0, 0)
        assert "effective rho 1 below floor 2" in violation.message

    def test_rho_floor_satisfied_at_distance(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        # Links (0,1) and (4,5): effective rho = min(5, 3) = 3 >= 2.
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5, flow_id=1), 0, 0)
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.ok
        assert report.cell_rho[(0, 0)] == 3

    def test_out_of_deadline_placement(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1, release=0, deadline=5), 7, 0)
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.kinds() == ["window"]
        [violation] = report.violations
        assert violation.slot == 7
        assert "after deadline 5" in violation.message

    def test_before_release_placement(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1, release=4, deadline=10), 2, 0)
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.kinds() == ["window"]
        assert "before release 4" in report.violations[0].message

    def test_occupancy_lane_mismatch(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5, flow_id=1), 0, 0)
        schedule._occ_senders[0, 0, 0] = 3
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.kinds() == ["occupancy"]
        [violation] = report.violations
        assert "lane 0" in violation.message
        assert "(3, 1)" in violation.message

    def test_precedence_inversion(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1, hop=0, attempt=0), 5, 0)
        schedule.add(request(0, 1, hop=0, attempt=1), 3, 0)
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.kinds() == ["precedence"]
        assert "does not follow" in report.violations[0].message

    def test_busy_matrix_drift(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule._busy[5, 9] = True  # bit flipped by "cosmic ray"
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.kinds() == ["busy_matrix"]
        assert "node 5" in report.violations[0].message

    def test_barred_link_sharing_a_cell(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5, flow_id=1), 0, 0)
        report = audit_schedule(schedule, line_reuse_graph, 2,
                                barred_links=[(1, 0)])
        assert "barred_reuse" in report.kinds()
        assert "(0, 1)" in report.violations[0].message

    def test_completeness_missing_placement(self, scheduled_network):
        network, _, flow_set = scheduled_network
        result = run_policy(network, flow_set, make_policy("RA", 1))
        assert result.schedulable
        rebuilt = Schedule(result.schedule.num_nodes,
                           result.schedule.num_slots,
                           result.schedule.num_offsets)
        dropped = result.schedule.entries[-1]
        for entry in result.schedule.entries[:-1]:
            rebuilt.add(entry.request, entry.slot, entry.offset)
        report = audit_schedule(rebuilt, network.reuse, 1,
                                flow_set=flow_set)
        assert "completeness" in report.kinds()
        assert any("missing 1 placement" in v.message
                   and v.flow_id == dropped.request.flow_id
                   for v in report.violations)

    def test_link_state_drift(self, scheduled_network):
        network, _, flow_set = scheduled_network
        with _kernel.kernel_mode(_kernel.KERNEL_VECTOR):
            result = run_policy(network, flow_set, make_policy("RA", 1))
        state = result.schedule._link_state
        assert state is not None and state.count > 0
        state.dist[0, 0, 0] += 1
        report = audit_schedule(result.schedule, network.reuse, 1,
                                flow_set=flow_set)
        assert "link_state" in report.kinds()
        assert "recomputation gives" in report.violations[0].message


class TestAuditReport:
    def test_to_dict_serializes_infinity_as_none(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5, flow_id=1), 0, 0)
        report = audit_schedule(schedule, line_reuse_graph, math.inf)
        assert not report.ok  # effective rho 3 < inf floor
        payload = report.to_dict()
        assert payload["rho_floor"] is None
        assert payload["cell_rho"] == {"0,0": 3}
        json.dumps(payload)  # artifact must be JSON-clean

    def test_summary_lists_violations(self, line_reuse_graph):
        schedule = Schedule(6, 20, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.force_add(request(1, 2, flow_id=1), 0, 1)
        report = audit_schedule(schedule, line_reuse_graph, 2)
        text = report.summary()
        assert "audit FAILED" in text
        assert "[node_conflict]" in text

    def test_violation_cap_truncates(self, line_reuse_graph):
        from repro.validate.audit import MAX_VIOLATIONS

        schedule = Schedule(6, MAX_VIOLATIONS + 50, 2)
        for slot in range(1, MAX_VIOLATIONS + 11):
            # Every placement lands after its deadline of slot 0.
            schedule.add(request(0, 1, instance=slot, release=0,
                                 deadline=0), slot, 0)
        report = audit_schedule(schedule, line_reuse_graph, 2)
        assert report.truncated
        assert len(report.violations) == MAX_VIOLATIONS


class TestDifferentialFuzzer:
    def test_smoke_run_is_clean(self):
        report = run_fuzz(4, seed=0)
        assert report.ok, report.to_dict()
        assert report.num_cases == 4
        assert len(report.cases) == 4
        assert "fuzz OK" in report.summary()

    def test_cases_are_deterministic(self):
        first = run_case(1, seed=0)
        second = run_case(1, seed=0)
        assert first.to_dict() == second.to_dict()

    def test_failure_artifact_carries_reproduce_command(self):
        case = run_case(0, seed=7)
        payload = case.to_dict()
        assert payload["reproduce"] == "repro fuzz --cases 1 --seed 7"
        json.dumps(payload)

    def test_rejects_nonpositive_cases(self):
        with pytest.raises(ValueError):
            run_fuzz(0)


class TestRcFlowResetParity:
    """Satellite: stepwise and fused RC descents must agree bit for bit
    when rho persists across a flow's transmissions (rho_reset="flow"),
    including the post-descent clamp back to rho_t."""

    def test_stepwise_vs_fused_schedules_identical(self, scheduled_network):
        network, _, flow_set = scheduled_network

        def rc():
            return ConservativeReusePolicy(rho_t=2,
                                           rho_reset=RHO_RESET_FLOW)

        with _kernel.kernel_mode(_kernel.KERNEL_SCALAR):
            scalar = run_policy(network, flow_set, rc())
        with _kernel.kernel_mode(_kernel.KERNEL_VECTOR):
            fused = run_policy(network, flow_set, rc())
        with _kernel.kernel_mode(_kernel.KERNEL_VECTOR), \
                _obs.recording(Recorder()):
            stepwise = run_policy(network, flow_set, rc())

        assert _schedule_signature(scalar) == _schedule_signature(fused)
        assert _schedule_signature(fused) == _schedule_signature(stepwise)
        report = audit_schedule(fused.schedule, network.reuse, 2,
                                flow_set=flow_set,
                                expect_complete=fused.schedulable)
        assert report.ok, report.summary()
