"""Tests for repro.testbeds (layout, synthesis, named testbeds)."""

import dataclasses

import numpy as np
import pytest

from repro.mac.channels import ChannelMap
from repro.network.graphs import ChannelReuseGraph, CommunicationGraph
from repro.testbeds import (
    FloorPlan,
    INDRIYA_NUM_NODES,
    PRR_FLOOR,
    SynthesisParams,
    WUSTL_NUM_NODES,
    WUSTL_PARAMS,
    apply_neighbor_table_limit,
    grid_positions,
    make_indriya,
    make_testbed,
    make_wustl,
)
from repro.testbeds.layout import _split_evenly


class TestFloorPlan:
    def test_floor_of(self):
        plan = FloorPlan(3, 40.0, 20.0, floor_height_m=4.0)
        from repro.network.node import Position

        assert plan.floor_of(Position(0, 0, 0.0)) == 0
        assert plan.floor_of(Position(0, 0, 8.0)) == 2

    def test_floors_crossed(self):
        plan = FloorPlan(3, 40.0, 20.0)
        from repro.network.node import Position

        assert plan.floors_crossed(Position(0, 0, 0), Position(0, 0, 8.0)) == 2

    def test_invalid_plan(self):
        with pytest.raises(ValueError):
            FloorPlan(0, 40.0, 20.0)
        with pytest.raises(ValueError):
            FloorPlan(3, -1.0, 20.0)


class TestGridPositions:
    def test_count_and_bounds(self):
        plan = FloorPlan(3, 40.0, 20.0)
        positions = grid_positions(25, plan, np.random.default_rng(0))
        assert len(positions) == 25
        for p in positions:
            assert 0.0 <= p.x <= 40.0
            assert 0.0 <= p.y <= 20.0

    def test_spread_across_floors(self):
        plan = FloorPlan(3, 40.0, 20.0, floor_height_m=4.0)
        positions = grid_positions(30, plan, np.random.default_rng(0))
        floors = {plan.floor_of(p) for p in positions}
        assert floors == {0, 1, 2}

    def test_deterministic_given_seed(self):
        plan = FloorPlan(2, 30.0, 15.0)
        a = grid_positions(10, plan, np.random.default_rng(5))
        b = grid_positions(10, plan, np.random.default_rng(5))
        assert [p.as_tuple() for p in a] == [p.as_tuple() for p in b]

    def test_split_evenly(self):
        assert _split_evenly(10, 3) == [4, 3, 3]
        assert _split_evenly(9, 3) == [3, 3, 3]

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            grid_positions(0, FloorPlan(1, 10, 10), np.random.default_rng(0))


class TestSynthesis:
    def test_topology_matches_environment(self):
        plan = FloorPlan(1, 30.0, 20.0)
        topo, env = make_testbed(12, plan, seed=3, num_channels=4)
        assert topo.num_nodes == 12
        assert env.rssi_dbm.shape == (12, 12, 4)
        # Measured PRRs equal the environment's clean PRRs (floored),
        # up to neighbor-table truncation (truncated pairs read zero).
        clean = env.prr_matrix()
        mask = topo.prr > 0
        assert np.allclose(topo.prr[mask], clean[mask])

    def test_prr_floor_applied(self):
        plan = FloorPlan(1, 30.0, 20.0)
        topo, _ = make_testbed(12, plan, seed=3, num_channels=2)
        nonzero = topo.prr[topo.prr > 0]
        assert nonzero.size == 0 or nonzero.min() >= PRR_FLOOR

    def test_reciprocity_of_shadowing(self):
        """Static shadowing/fading are symmetric; only the small asymmetry
        term differs between directions."""
        plan = FloorPlan(1, 30.0, 20.0)
        params = SynthesisParams(asymmetry_sigma_db=0.0)
        topo, env = make_testbed(10, plan, seed=3, num_channels=2,
                                 params=params)
        assert np.allclose(env.rssi_dbm, np.transpose(env.rssi_dbm, (1, 0, 2)))

    def test_determinism(self):
        plan = FloorPlan(2, 30.0, 20.0)
        t1, e1 = make_testbed(15, plan, seed=9, num_channels=3)
        t2, e2 = make_testbed(15, plan, seed=9, num_channels=3)
        assert np.array_equal(t1.prr, t2.prr)
        assert np.array_equal(e1.rssi_dbm, e2.rssi_dbm)

    def test_different_seeds_differ(self):
        plan = FloorPlan(2, 30.0, 20.0)
        t1, _ = make_testbed(15, plan, seed=1, num_channels=3)
        t2, _ = make_testbed(15, plan, seed=2, num_channels=3)
        assert not np.array_equal(t1.prr, t2.prr)

    def test_diagonal_is_silent(self):
        plan = FloorPlan(1, 30.0, 20.0)
        topo, env = make_testbed(8, plan, seed=0, num_channels=2)
        n = topo.num_nodes
        assert np.all(topo.prr[np.arange(n), np.arange(n), :] == 0)
        assert np.all(np.isneginf(env.rssi_dbm[np.arange(n), np.arange(n), :]))


class TestNeighborTableLimit:
    def test_limit_reduces_pairs(self):
        prr = np.random.default_rng(0).uniform(0.01, 1.0, (20, 20, 2))
        idx = np.arange(20)
        prr[idx, idx, :] = 0.0
        limited = apply_neighbor_table_limit(prr, 5)
        assert (limited > 0).sum() < (prr > 0).sum()

    def test_strongest_neighbors_kept(self):
        # Give nodes 2 and 3 a stronger partner so they don't re-report
        # node 0 from their own (size-1) tables.
        prr = np.zeros((4, 4, 1))
        prr[0, 1, 0] = 0.9
        prr[0, 2, 0] = 0.5
        prr[0, 3, 0] = 0.1
        prr[2, 3, 0] = 0.8
        prr[3, 2, 0] = 0.8
        limited = apply_neighbor_table_limit(prr, 1)
        assert limited[0, 1, 0] == 0.9       # node 0 keeps its strongest
        assert limited[2, 3, 0] == 0.8
        assert limited[0, 2, 0] == 0.0       # unreported by both sides
        assert limited[0, 3, 0] == 0.0

    def test_either_endpoint_reporting_keeps_pair(self):
        # Node 1 ranks node 0 highest even if node 0's table is full of
        # stronger neighbors; the manager merges both reports.
        prr = np.zeros((4, 4, 1))
        prr[0, 2, 0] = 0.9
        prr[0, 3, 0] = 0.8
        prr[1, 0, 0] = 0.2  # node 1's only neighbor is node 0
        limited = apply_neighbor_table_limit(prr, 1)
        assert limited[1, 0, 0] == 0.2

    def test_limit_is_symmetric_zeroing(self):
        prr = np.random.default_rng(1).uniform(0.01, 1.0, (15, 15, 2))
        idx = np.arange(15)
        prr[idx, idx, :] = 0.0
        limited = apply_neighbor_table_limit(prr, 3)
        dropped = (limited.sum(axis=2) == 0)
        assert np.array_equal(dropped, dropped.T)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            apply_neighbor_table_limit(np.zeros((2, 2, 1)), 0)


class TestNamedTestbeds:
    def test_indriya_scale(self, indriya):
        topo, env = indriya
        assert topo.num_nodes == INDRIYA_NUM_NODES
        assert topo.num_channels == 16
        assert topo.name == "indriya"

    def test_wustl_scale(self, wustl):
        topo, env = wustl
        assert topo.num_nodes == WUSTL_NUM_NODES
        assert topo.name == "wustl"

    def test_both_communication_graphs_connected(self, indriya, wustl):
        """The benchmark harness relies on connected graphs at the channel
        counts the paper evaluates."""
        for (topo, _), channels in ((indriya, 16), (wustl, 4)):
            restricted = topo.restrict_channels(
                list(topo.channel_map)[:channels])
            graph = CommunicationGraph.from_topology(restricted, 0.9)
            assert graph.is_connected()

    def test_reuse_graph_denser_than_communication(self, wustl):
        """Interference range exceeds communication range."""
        topo, _ = wustl
        comm = CommunicationGraph.from_topology(topo, 0.9)
        reuse = ChannelReuseGraph.from_topology(topo)
        assert reuse.num_edges() > comm.num_edges()

    def test_multi_hop(self, indriya):
        topo, _ = indriya
        reuse = ChannelReuseGraph.from_topology(topo)
        assert reuse.diameter() >= 3

    def test_wustl_params_used_by_default(self, wustl):
        topo, _ = wustl
        topo2, _ = make_wustl(params=WUSTL_PARAMS)
        assert np.array_equal(topo.prr, topo2.prr)
