"""Vectorized kernel vs scalar reference: exact-equivalence tests.

The vector kernel (incremental per-link distance stacks, fused RC
descent) must be bit-for-bit interchangeable with the scalar reference
path — same feasible offsets, same ``find_slot`` answers, same final
schedules, same work counters.  These tests drive both implementations
over seeded randomized schedules and full scheduler runs and demand
exact agreement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.constraints import (
    NO_REUSE,
    feasible_offsets,
    feasible_offsets_scalar,
)
from repro.core.kernel import (
    KERNEL_SCALAR,
    KERNEL_VECTOR,
    kernel_mode,
    min_reuse_distance,
)
from repro.core.rc import RHO_RESET_FLOW, RHO_RESET_TRANSMISSION
from repro.core.reschedule import reschedule_without_reuse_on
from repro.core.schedule import Schedule
from repro.core.scheduler import (
    FixedPriorityScheduler,
    OFFSET_FIRST,
    OFFSET_LEAST_LOADED,
    find_slot,
)
from repro.core.transmissions import TransmissionRequest
from repro.experiments.common import (
    build_workload,
    make_policy,
    prepare_network,
)
from repro.flows.generator import PeriodRange
from repro.network.graphs import ChannelReuseGraph
from repro.routing.traffic import TrafficType

NUM_SLOTS = 40
NUM_OFFSETS = 3


def _random_schedule(reuse_graph: ChannelReuseGraph, seed: int,
                     density: float = 0.5):
    """A seeded random schedule over the reuse graph's nodes.

    Fills cells with random non-node-conflicting transmissions so the
    occupancy exercises empty cells, single occupants, and reuse stacks.
    """
    num_nodes = reuse_graph.num_nodes
    rng = np.random.default_rng(seed)
    schedule = Schedule(num_nodes, NUM_SLOTS, NUM_OFFSETS)
    counter = 0
    for slot in range(NUM_SLOTS):
        busy = set()
        for offset in range(NUM_OFFSETS):
            occupants = rng.integers(0, 3) if rng.random() < density else 0
            for _ in range(occupants):
                sender, receiver = rng.choice(num_nodes, size=2,
                                              replace=False)
                if sender in busy or receiver in busy:
                    continue
                busy.update((int(sender), int(receiver)))
                schedule.add(
                    TransmissionRequest(
                        flow_id=0, instance=0, hop_index=0, attempt=counter,
                        sender=int(sender), receiver=int(receiver),
                        release_slot=0, deadline_slot=NUM_SLOTS - 1),
                    slot, offset)
                counter += 1
    return schedule


def _links(reuse_graph: ChannelReuseGraph, rng, count: int):
    pairs = []
    for _ in range(count):
        sender, receiver = rng.choice(reuse_graph.num_nodes, size=2,
                                      replace=False)
        pairs.append((int(sender), int(receiver)))
    return pairs


@pytest.fixture(scope="module")
def reuse_graph(topology_builder):
    """A reuse graph with non-trivial hop diversity (weak shortcuts)."""
    links = [(i, i + 1) for i in range(7)]
    topology = topology_builder(8, links, weak_links=[(0, 2), (4, 6)])
    return ChannelReuseGraph.from_topology(topology)


class TestFeasibleOffsets:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scalar_on_random_schedules(self, reuse_graph, seed):
        schedule = _random_schedule(reuse_graph, seed)
        rng = np.random.default_rng(100 + seed)
        rhos = [2, 3, reuse_graph.diameter(), NO_REUSE]
        for sender, receiver in _links(reuse_graph, rng, 12):
            for slot in rng.choice(NUM_SLOTS, size=8, replace=False):
                for rho in rhos:
                    expected = feasible_offsets_scalar(
                        schedule, reuse_graph, sender, receiver,
                        int(slot), rho)
                    with kernel_mode(KERNEL_VECTOR):
                        got = feasible_offsets(
                            schedule, reuse_graph, sender, receiver,
                            int(slot), rho)
                    assert got == expected, (
                        f"rho={rho} slot={slot} link=({sender},{receiver})")

    def test_distance_view_tracks_additions(self, reuse_graph):
        schedule = _random_schedule(reuse_graph, seed=9)
        view = min_reuse_distance(schedule, reuse_graph, 0, 7,
                                  0, NUM_SLOTS - 1)
        before = view.copy()
        schedule.add(
            TransmissionRequest(0, 0, 0, 0, sender=3, receiver=4,
                                release_slot=0,
                                deadline_slot=NUM_SLOTS - 1),
            5, 0)
        # The incrementally-maintained view reflects the new occupant.
        assert view[5, 0] <= before[5, 0]
        expected = feasible_offsets_scalar(schedule, reuse_graph, 0, 7, 5, 2)
        assert np.flatnonzero(view[5] >= 2).tolist() == expected


class TestFindSlot:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("offset_rule",
                             [OFFSET_FIRST, OFFSET_LEAST_LOADED])
    def test_matches_scalar(self, reuse_graph, seed, offset_rule):
        rng = np.random.default_rng(200 + seed)
        rhos = [2, 3, reuse_graph.diameter(), NO_REUSE]
        for schedule_seed in range(2):
            results = {}
            for kernel in (KERNEL_SCALAR, KERNEL_VECTOR):
                schedule = _random_schedule(reuse_graph,
                                            1000 + schedule_seed)
                rng_k = np.random.default_rng(300 + seed)
                answers = []
                with kernel_mode(kernel):
                    for sender, receiver in _links(reuse_graph, rng_k, 10):
                        earliest = int(rng_k.integers(0, NUM_SLOTS))
                        deadline = int(rng_k.integers(earliest, NUM_SLOTS))
                        request = TransmissionRequest(
                            0, 0, 0, 0, sender, receiver,
                            release_slot=0, deadline_slot=deadline)
                        for rho in rhos:
                            answers.append(find_slot(
                                schedule, reuse_graph, request, rho,
                                earliest, offset_rule))
                results[kernel] = answers
            assert results[KERNEL_SCALAR] == results[KERNEL_VECTOR]


def _run_signature(network, flow_set, policy_name, kernel, rho_t=2,
                   **policy_kwargs):
    """(placements, counters) of one scheduler run under a kernel."""
    policy = make_policy(policy_name, rho_t)
    for key, value in policy_kwargs.items():
        setattr(policy, key, value)
    scheduler = FixedPriorityScheduler(
        num_nodes=network.topology.num_nodes,
        num_offsets=network.num_channels,
        reuse_graph=network.reuse, policy=policy)
    with kernel_mode(kernel), obs.recording() as recorder:
        result = scheduler.run(flow_set)
    placements = None
    if result.schedule is not None:
        placements = [
            (e.request.flow_id, e.request.instance, e.request.hop_index,
             e.request.attempt, e.slot, e.offset)
            for e in result.schedule.entries]
    counters = recorder.snapshot()["counters"]
    deterministic = {name: value for name, value in counters.items()
                     if name.startswith(("scheduler.", "policy.", "rc."))}
    return result.schedulable, placements, deterministic


@pytest.fixture(scope="module")
def figure1_workload(indriya):
    topology, _ = indriya
    network = prepare_network(topology, num_channels=4)
    flow_set = build_workload(network, 18, PeriodRange(0, 4),
                              TrafficType.CENTRALIZED,
                              np.random.default_rng(5))
    return network, flow_set


class TestFullRunEquivalence:
    @pytest.mark.parametrize("policy_name", ["NR", "RA", "RC"])
    def test_policies_match_scalar(self, figure1_workload, policy_name):
        network, flow_set = figure1_workload
        scalar = _run_signature(network, flow_set, policy_name,
                                KERNEL_SCALAR)
        vector = _run_signature(network, flow_set, policy_name,
                                KERNEL_VECTOR)
        assert scalar == vector

    @pytest.mark.parametrize("rho_reset",
                             [RHO_RESET_TRANSMISSION, RHO_RESET_FLOW])
    @pytest.mark.parametrize("offset_rule",
                             [OFFSET_FIRST, OFFSET_LEAST_LOADED])
    def test_rc_variants_match_scalar(self, figure1_workload, rho_reset,
                                      offset_rule):
        network, flow_set = figure1_workload
        scalar = _run_signature(network, flow_set, "RC", KERNEL_SCALAR,
                                rho_reset=rho_reset,
                                offset_rule=offset_rule)
        vector = _run_signature(network, flow_set, "RC", KERNEL_VECTOR,
                                rho_reset=rho_reset,
                                offset_rule=offset_rule)
        assert scalar == vector

    def test_rc_fused_path_matches_stepwise(self, figure1_workload):
        """Obs off engages the fused RC descent; placements must match
        the instrumented (stepwise) vector path exactly."""
        network, flow_set = figure1_workload
        _, stepwise, _ = _run_signature(network, flow_set, "RC",
                                        KERNEL_VECTOR)
        policy = make_policy("RC", 2)
        scheduler = FixedPriorityScheduler(
            num_nodes=network.topology.num_nodes,
            num_offsets=network.num_channels,
            reuse_graph=network.reuse, policy=policy)
        with kernel_mode(KERNEL_VECTOR):
            result = scheduler.run(flow_set)  # obs disabled -> fused
        fused = [
            (e.request.flow_id, e.request.instance, e.request.hop_index,
             e.request.attempt, e.slot, e.offset)
            for e in result.schedule.entries]
        assert fused == stepwise


def _reschedule_signature(network, flow_set, victims, kernel,
                          policy_name="RA", rho_t=2):
    """(schedulable, placements, counters) of a barrier rebuild."""
    policy = make_policy(policy_name, rho_t)
    with kernel_mode(kernel), obs.recording() as recorder:
        result = reschedule_without_reuse_on(
            flow_set, network.topology.num_nodes, network.num_channels,
            network.reuse, policy, victims)
    placements = None
    if result.schedule is not None:
        placements = [
            (e.request.flow_id, e.request.instance, e.request.hop_index,
             e.request.attempt, e.slot, e.offset)
            for e in result.schedule.entries]
    counters = recorder.snapshot()["counters"]
    deterministic = {name: value for name, value in counters.items()
                     if name.startswith(("scheduler.", "policy.", "rc."))}
    return result.schedulable, placements, deterministic


class TestRescheduleEquivalence:
    """The manager's rebuild path must match across kernels bit-for-bit."""

    @pytest.fixture(scope="class")
    def victims(self, figure1_workload):
        network, flow_set = figure1_workload
        scheduler = FixedPriorityScheduler(
            num_nodes=network.topology.num_nodes,
            num_offsets=network.num_channels,
            reuse_graph=network.reuse, policy=make_policy("RA", 2))
        with kernel_mode(KERNEL_SCALAR):
            result = scheduler.run(flow_set)
        assert result.schedulable
        reuse_links = result.schedule.reuse_links()
        assert reuse_links, "workload must exercise channel reuse"
        return tuple(reuse_links[:3])

    @pytest.mark.parametrize("policy_name", ["RA", "RC"])
    def test_barrier_rebuild_matches_scalar(self, figure1_workload,
                                            victims, policy_name):
        network, flow_set = figure1_workload
        scalar = _reschedule_signature(network, flow_set, victims,
                                       KERNEL_SCALAR, policy_name)
        vector = _reschedule_signature(network, flow_set, victims,
                                       KERNEL_VECTOR, policy_name)
        assert scalar == vector

    def test_no_victims_matches_plain_run(self, figure1_workload):
        """An empty barrier is placement-equivalent to the inner policy."""
        network, flow_set = figure1_workload
        _, plain, _ = _run_signature(network, flow_set, "RA",
                                     KERNEL_VECTOR)
        _, barred, _ = _reschedule_signature(network, flow_set, (),
                                             KERNEL_VECTOR)
        assert barred == plain

    def test_victims_leave_shared_cells(self, figure1_workload, victims):
        network, flow_set = figure1_workload
        policy = make_policy("RA", 2)
        with kernel_mode(KERNEL_VECTOR):
            result = reschedule_without_reuse_on(
                flow_set, network.topology.num_nodes,
                network.num_channels, network.reuse, policy, victims)
        assert result.schedulable
        barred = set(victims) | {(v, u) for u, v in victims}
        assert not barred & set(result.schedule.reuse_links())


# ----------------------------------------------------------------------
# Crossover-aware auto kernel
# ----------------------------------------------------------------------

from repro.core.kernel import (  # noqa: E402 (grouped with their tests)
    KERNEL_AUTO,
    RA_CROSSOVER_REQUESTS,
    active_kernel,
    resolve_kernel,
    set_kernel,
)


class TestResolveKernel:
    def test_concrete_modes_win_unchanged(self):
        with kernel_mode(KERNEL_SCALAR):
            assert resolve_kernel("RC", 10 ** 9) == KERNEL_SCALAR
        with kernel_mode(KERNEL_VECTOR):
            assert resolve_kernel("RA", 1) == KERNEL_VECTOR

    def test_auto_ra_crossover(self):
        with kernel_mode(KERNEL_AUTO):
            assert resolve_kernel(
                "RA", RA_CROSSOVER_REQUESTS - 1) == KERNEL_SCALAR
            assert resolve_kernel(
                "RA", RA_CROSSOVER_REQUESTS) == KERNEL_VECTOR

    def test_auto_rc_stays_vector_nr_stays_scalar(self):
        # RC amortizes the distance rows across its ρ fallbacks at any
        # size; NR never queries them, so scalar is the no-op choice.
        with kernel_mode(KERNEL_AUTO):
            assert resolve_kernel("RC", 1) == KERNEL_VECTOR
            assert resolve_kernel("RC", 10 ** 9) == KERNEL_VECTOR
            assert resolve_kernel("NR", 1) == KERNEL_SCALAR
            assert resolve_kernel("NR", 10 ** 9) == KERNEL_SCALAR

    def test_set_kernel_accepts_auto_and_rejects_junk(self):
        previous = active_kernel()
        try:
            set_kernel(KERNEL_AUTO)
            assert active_kernel() == KERNEL_AUTO
        finally:
            set_kernel(previous)
        with pytest.raises(ValueError, match="unknown kernel mode"):
            set_kernel("quantum")


class TestAutoRunEquivalence:
    @pytest.mark.parametrize("policy_name", ["NR", "RA", "RC"])
    def test_auto_matches_fixed_kernels(self, figure1_workload,
                                        policy_name):
        """Whatever auto resolves to, the schedule and work counters are
        bit-identical to both fixed kernels (which already match)."""
        network, flow_set = figure1_workload
        fixed = _run_signature(network, flow_set, policy_name,
                               KERNEL_SCALAR)
        auto = _run_signature(network, flow_set, policy_name, KERNEL_AUTO)
        assert auto == fixed

    def test_auto_is_resolved_before_the_run(self, figure1_workload):
        """scheduler.run under auto scopes a concrete kernel; the global
        mode is restored afterwards."""
        network, flow_set = figure1_workload
        scheduler = FixedPriorityScheduler(
            num_nodes=network.topology.num_nodes,
            num_offsets=network.num_channels,
            reuse_graph=network.reuse, policy=make_policy("RA", 2))
        with kernel_mode(KERNEL_AUTO):
            result = scheduler.run(flow_set)
            assert active_kernel() == KERNEL_AUTO
        assert result.schedulable

    def test_resolve_auto_estimates_requests(self, figure1_workload):
        """The workload estimate is instances x route hops x attempts,
        and this Figure-1 workload sits below the RA crossover."""
        network, flow_set = figure1_workload
        scheduler = FixedPriorityScheduler(
            num_nodes=network.topology.num_nodes,
            num_offsets=network.num_channels,
            reuse_graph=network.reuse, policy=make_policy("RA", 2))
        hyperperiod = flow_set.hyperperiod()
        expected = sum(
            (hyperperiod // flow.period_slots) * len(flow.links)
            * scheduler.attempts_per_link
            for flow in flow_set)
        assert expected < RA_CROSSOVER_REQUESTS
        with kernel_mode(KERNEL_AUTO):
            assert scheduler._resolve_auto(flow_set) == KERNEL_SCALAR
        with kernel_mode(KERNEL_AUTO):
            rc = FixedPriorityScheduler(
                num_nodes=network.topology.num_nodes,
                num_offsets=network.num_channels,
                reuse_graph=network.reuse, policy=make_policy("RC", 2))
            assert rc._resolve_auto(flow_set) == KERNEL_VECTOR
