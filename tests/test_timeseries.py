"""Tests for the windowed time-series store (repro.obs.timeseries)."""

from __future__ import annotations

import json

import pytest

from repro.obs import recorder as _obs
from repro.obs.recorder import NullRecorder, Recorder
from repro.obs.timeseries import DEFAULT_RETENTION, Series, TimeSeriesStore


class TestSeries:
    def test_validation(self):
        with pytest.raises(ValueError, match="retention"):
            Series("x", retention=1)
        with pytest.raises(ValueError, match="stride"):
            Series("x", stride=0)

    def test_add_and_accessors(self):
        series = Series("pdr", retention=8)
        for t in range(5):
            series.add(t, t * 0.1)
        assert series.stride == 1
        assert series.last() == (4.0, pytest.approx(0.4))
        assert series.values() == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])
        assert series.tail(2) == pytest.approx([0.3, 0.4])
        assert series.tail(99) == series.values()
        assert Series("empty").last() is None

    def test_downsample_halves_and_doubles_stride(self):
        series = Series("x", retention=4)
        for t in range(5):          # 5th add overflows retention=4
            series.add(t, float(t))
        assert series.stride == 2
        # Pairs (0,1),(2,3) average to 0.5 and 2.5, keeping the *second*
        # member's t; the trailing odd sample (4, 4.0) survives verbatim.
        assert series.points == [(1.0, 0.5), (3.0, 2.5), (4.0, 4.0)]

    def test_retention_is_bounded_forever(self):
        series = Series("x", retention=8)
        for t in range(10_000):
            series.add(t, float(t))
        assert len(series.points) <= 8
        assert series.stride > 1
        # The most recent timestamp always survives downsampling.
        assert series.points[-1][0] == 9_999.0

    def test_to_record_shape(self):
        series = Series("a.b", retention=16)
        series.add(0, 1.0)
        record = series.to_record()
        assert record == {"kind": "series", "name": "a.b", "retention": 16,
                          "stride": 1, "points": [[0.0, 1.0]]}
        json.dumps(record)  # must be JSON-clean


class TestTimeSeriesStore:
    def test_record_creates_series_on_first_use(self):
        store = TimeSeriesStore()
        assert len(store) == 0
        assert store.get("x") is None
        store.record("x", 0, 1.0)
        store.record("x", 1, 2.0)
        store.record("y", 0, 3.0)
        assert len(store) == 2
        assert store.names() == ["x", "y"]
        assert store.get("x").values() == [1.0, 2.0]
        assert store.retention == DEFAULT_RETENTION

    def test_validation(self):
        with pytest.raises(ValueError, match="retention"):
            TimeSeriesStore(retention=1)

    def test_to_records_has_honest_trailer(self):
        store = TimeSeriesStore(retention=4)
        for t in range(6):
            store.record("hot", t, float(t))
        store.record("cold", 0, 1.0)
        records = store.to_records()
        assert [r["kind"] for r in records] == ["series", "series", "ts_meta"]
        trailer = records[-1]
        assert trailer == {"kind": "ts_meta", "series": 2, "retention": 4,
                           "downsampled": 1}
        assert store.downsampled_series() == 1

    def test_jsonl_roundtrip(self, tmp_path):
        store = TimeSeriesStore(retention=8)
        for t in range(12):
            store.record("a", t, float(t))
        store.record("b", 0, 0.5)
        path = tmp_path / "ts.jsonl"
        written = store.export_jsonl(path)
        assert written == 2  # trailer excluded

        loaded = TimeSeriesStore.load_jsonl(path)
        assert loaded.retention == 8  # read back from the trailer
        assert loaded.names() == store.names()
        for name in store.names():
            assert loaded.get(name).points == store.get(name).points
            assert loaded.get(name).stride == store.get(name).stride

    def test_merge_later_wins_and_sorts_by_t(self):
        store = TimeSeriesStore()
        store.record("x", 0, 1.0)
        store.record("x", 2, 2.0)
        store.merge_records([
            {"kind": "series", "name": "x", "stride": 1,
             "points": [[1, 9.0], [2, 7.0]]},  # t=2 collides: later wins
            {"kind": "ts_meta", "series": 1},   # trailer ignored
        ])
        assert store.get("x").points == [(0.0, 1.0), (1.0, 9.0), (2.0, 7.0)]

    def test_merge_keeps_coarser_stride_and_redownsamples(self):
        store = TimeSeriesStore(retention=4)
        for t in range(4):
            store.record("x", t, float(t))
        store.merge_records([
            {"kind": "series", "name": "x", "stride": 4,
             "points": [[10, 1.0], [11, 2.0], [12, 3.0]]},
        ])
        series = store.get("x")
        assert len(series.points) <= 4       # retention applied on merge
        assert series.stride >= 4            # coarser stride kept

    def test_from_records_rebuilds(self):
        store = TimeSeriesStore()
        store.record("x", 0, 1.0)
        rebuilt = TimeSeriesStore.from_records(store.to_records())
        assert rebuilt.get("x").points == [(0.0, 1.0)]


class TestRecorderSampleIdiom:
    def test_recorder_sample_routes_to_attached_store(self):
        store = TimeSeriesStore()
        recorder = Recorder(timeseries=store)
        recorder.sample("x", 3, 0.75)
        assert store.get("x").points == [(3.0, 0.75)]

    def test_recorder_without_store_discards(self):
        recorder = Recorder()
        assert recorder.timeseries is None
        recorder.sample("x", 0, 1.0)  # must not raise

    def test_null_recorder_discards(self):
        null = NullRecorder()
        assert null.timeseries is None
        null.sample("x", 0, 1.0)  # must not raise

    def test_recording_context_exposes_store(self):
        store = TimeSeriesStore()
        with _obs.recording(Recorder(timeseries=store)):
            assert _obs.ENABLED
            _obs.RECORDER.sample("ctx", 1, 2.0)
        assert not _obs.ENABLED
        assert store.get("ctx").values() == [2.0]
