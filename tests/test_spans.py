"""Request spans: span model, tail capture, propagation, waterfalls.

Covers the span layer itself (:mod:`repro.obs.spans`), the wire trace
context in the NDJSON protocol, the executor's named stages, the
loadgen verify-mismatch failure line, worker-death span integrity, and
the ``repro trace show`` / merged-``repro report`` CLI surfaces.
"""

import asyncio
import json
import signal
import time
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.io import load_jsonl, save_metrics
from repro.obs.spans import (
    ActiveSpan,
    SpanRecorder,
    activate,
    build_traces,
    current_span,
    expand_span_paths,
    format_trace_show,
    load_span_records,
    new_trace_id,
    render_waterfall,
    stage,
    wire_context,
)
from repro.service.executor import ServiceExecutor
from repro.service.loadgen import _Stats, _note_response, format_report
from repro.service.protocol import (
    NetworkConfig,
    ProtocolError,
    parse_request,
)


def make_config(**overrides):
    base = dict(testbed="indriya", seed=1, channels=5, flows=6)
    base.update(overrides)
    return NetworkConfig(**base).to_dict()


class TestActiveSpan:
    def test_end_is_idempotent_and_returns_duration(self):
        recorder = SpanRecorder(process="t")
        span = recorder.start("request")
        first = span.end()
        second = span.end("error")  # ignored: already ended
        assert first == second
        assert span.status == "ok"
        assert first >= 0.0

    def test_to_record_shape(self):
        recorder = SpanRecorder(process="front")
        span = recorder.start("request", attrs={"verb": "schedule"})
        span.annotate(network="net-000")
        span.end()
        record = span.to_record()
        assert record["kind"] == "span"
        assert record["trace"] == span.trace_id
        assert record["span"] == span.span_id
        assert record["parent"] is None
        assert record["name"] == "request"
        assert record["process"] == "front"
        assert record["status"] == "ok"
        assert record["attrs"] == {"verb": "schedule",
                                   "network": "net-000"}
        assert record["duration_ms"] >= 0.0
        assert record["start_unix"] == pytest.approx(time.time(), abs=60)

    def test_context_manager_scopes_current_and_flags_errors(self):
        recorder = SpanRecorder(process="t")
        assert current_span() is None
        with pytest.raises(RuntimeError):
            with recorder.start("request") as span:
                assert current_span() is span
                raise RuntimeError("boom")
        assert current_span() is None
        assert span.status == "error"

    def test_activate_does_not_end_the_span(self):
        recorder = SpanRecorder(process="t")
        span = recorder.start("work")
        with activate(span):
            assert current_span() is span
        assert span.duration_ms is None  # caller still owns the end
        with activate(None) as nothing:
            assert nothing is None

    def test_span_ids_are_unique_within_a_recorder(self):
        recorder = SpanRecorder(process="t")
        ids = {recorder.start("s").span_id for _ in range(100)}
        assert len(ids) == 100


class TestStageHelper:
    def test_noop_when_recorder_disabled(self):
        with stage("compile") as span:
            assert span is None

    def test_noop_without_open_request_span(self):
        spans = SpanRecorder(process="t")
        with obs.recording(obs.Recorder(spans=spans)):
            with stage("compile") as span:
                assert span is None
        assert spans.in_flight == 0

    def test_records_child_under_activated_parent(self):
        spans = SpanRecorder(threshold_ms=0.0, process="t")
        with obs.recording(obs.Recorder(spans=spans)):
            work = spans.start("work")
            with activate(work):
                with stage("compile", placements=3) as child:
                    assert current_span() is child
            spans.close_trace(work.trace_id, work.end())
        (trace,) = build_traces(spans.to_records())
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["compile"]["parent"] == work.span_id
        assert by_name["compile"]["attrs"]["placements"] == 3
        assert by_name["compile"]["status"] == "ok"

    def test_stage_error_status_propagates(self):
        spans = SpanRecorder(threshold_ms=0.0, process="t")
        with obs.recording(obs.Recorder(spans=spans)):
            work = spans.start("work")
            with activate(work), pytest.raises(ValueError):
                with stage("repair"):
                    raise ValueError("no")
            spans.close_trace(work.trace_id, work.end("error"),
                              error=True)
        (trace,) = build_traces(spans.to_records())
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["repair"]["status"] == "error"


class TestTailCapture:
    def close(self, recorder, ms, error=False, spans=1):
        """Open a trace with ``spans`` spans and close it at ``ms``."""
        root = recorder.start("request")
        for _ in range(spans - 1):
            recorder.start("child", trace_id=root.trace_id,
                           parent_id=root.span_id).end()
        root.end()
        return recorder.close_trace(root.trace_id, ms, error=error)

    def test_threshold_keeps_slow_drops_fast(self):
        recorder = SpanRecorder(threshold_ms=100.0, top_k=0)
        assert self.close(recorder, 250.0)
        assert not self.close(recorder, 1.0)
        assert recorder.kept_traces == 1
        assert recorder.dropped_traces == 1
        assert recorder.closed_traces == 2

    def test_top_k_keeps_rolling_slowest_below_threshold(self):
        recorder = SpanRecorder(threshold_ms=1e9, top_k=2, max_traces=2)
        assert self.close(recorder, 10.0)
        assert self.close(recorder, 20.0)
        assert self.close(recorder, 30.0)  # evicts the 10 ms trace
        assert not self.close(recorder, 5.0)
        assert recorder.kept_traces == 2
        slowest = [ms for _, ms, _ in recorder.slowest(5)]
        assert slowest == [30.0, 20.0]

    def test_errors_always_kept(self):
        recorder = SpanRecorder(threshold_ms=1e9, top_k=0)
        assert self.close(recorder, 0.01, error=True)
        assert recorder.kept_traces == 1

    def test_max_traces_bound_evicts_fastest(self):
        recorder = SpanRecorder(threshold_ms=0.0, max_traces=3)
        for ms in (40.0, 10.0, 30.0, 20.0):
            self.close(recorder, ms)
        assert recorder.kept_traces == 3
        kept = [ms for _, ms, _ in recorder.slowest(10)]
        assert kept == [40.0, 30.0, 20.0]
        assert recorder.dropped_traces == 1

    def test_span_accounting_reconciles(self):
        recorder = SpanRecorder(threshold_ms=50.0, top_k=1,
                                max_traces=2)
        produced = 0
        for index in range(10):
            spans = 1 + index % 3
            produced += spans
            self.close(recorder, float(index * 20), spans=spans)
        assert recorder.kept_spans + recorder.dropped_spans == produced
        assert recorder.closed_traces == 10
        assert recorder.kept_traces + recorder.dropped_traces == 10

    def test_pending_bound_drops_oldest_open_trace(self):
        recorder = SpanRecorder(max_traces=1)
        open_roots = [recorder.start("request")
                      for _ in range(recorder.max_pending + 3)]
        for root in open_roots:
            root.end()
        assert recorder.in_flight == recorder.max_pending
        assert recorder.dropped_traces == 3

    def test_per_trace_span_bound(self):
        recorder = SpanRecorder(threshold_ms=0.0, max_spans_per_trace=4)
        root = recorder.start("request")
        for _ in range(10):
            recorder.start("child", trace_id=root.trace_id,
                           parent_id=root.span_id).end()
        recorder.close_trace(root.trace_id, root.end())
        assert recorder.kept_spans == 4
        assert recorder.dropped_spans == 7  # 6 overflow children + root

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            SpanRecorder(threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SpanRecorder(max_traces=0)


class TestRecorderIntegration:
    def test_finished_spans_feed_histograms_and_trace_ring(self):
        spans = SpanRecorder(threshold_ms=0.0, process="t")
        with obs.recording(obs.Recorder(spans=spans)) as recorder:
            span = spans.start("compile")
            span.end()
            snapshot = recorder.snapshot()
            events = [e for e in recorder.tracer.event_dicts()
                      if e.get("kind") == "span"]
        histogram = snapshot["histograms"]["span.compile.seconds"]
        assert histogram["count"] == 1
        assert events and events[0]["name"] == "compile"
        assert events[0]["trace"] == span.trace_id

    def test_unbound_recorder_still_collects(self):
        spans = SpanRecorder(threshold_ms=0.0)
        root = spans.start("request")
        spans.close_trace(root.trace_id, root.end())
        assert spans.kept_traces == 1


class TestExportAndWaterfall:
    def build_two_process_dump(self, tmp_path):
        # All durations synthetic (via record()) so slowest-first
        # ordering is deterministic, not a race between real sub-ms
        # measurements.
        front = SpanRecorder(threshold_ms=0.0, process="front")
        worker = SpanRecorder(threshold_ms=0.0, process="worker-0")
        t0 = 1_700_000_000.0
        slow_ids = {}
        for index, total_ms in enumerate((200.0, 50.0)):
            trace_id = new_trace_id()
            request_id = front.record(
                "request", trace_id=trace_id, parent_id=None,
                start_unix=t0, duration_ms=total_ms)
            dispatch_id = front.record(
                "dispatch", trace_id=trace_id, parent_id=request_id,
                start_unix=t0 + 0.005, duration_ms=total_ms - 10.0)
            work_id = worker.record(
                "work", trace_id=trace_id,
                parent_id=dispatch_id, start_unix=t0 + 0.01,
                duration_ms=total_ms - 20.0)
            worker.record("compile", trace_id=trace_id,
                          parent_id=work_id, start_unix=t0 + 0.02,
                          duration_ms=total_ms - 30.0,
                          attrs={"verdict": "miss"})
            worker.close_trace(trace_id, total_ms - 20.0)
            front.close_trace(trace_id, total_ms)
            slow_ids[index] = trace_id
        spans_path = tmp_path / "spans.jsonl"
        front.export_jsonl(str(spans_path))
        worker.export_jsonl(str(spans_path) + ".w0")
        return spans_path, slow_ids

    def test_export_ends_with_meta_trailer(self, tmp_path):
        recorder = SpanRecorder(threshold_ms=0.0, process="t")
        root = recorder.start("request")
        recorder.close_trace(root.trace_id, root.end())
        path = tmp_path / "spans.jsonl"
        written = recorder.export_jsonl(str(path))
        records = load_jsonl(str(path))
        assert written == 1
        assert len(records) == 2
        assert records[-1]["kind"] == "span_meta"
        assert records[-1]["kept_traces"] == 1
        assert records[-1]["kept_spans"] == 1
        assert records[-1]["dropped_traces"] == 0

    def test_expand_span_paths_orders_and_filters(self, tmp_path):
        base = tmp_path / "spans.jsonl"
        for name in ("spans.jsonl", "spans.jsonl.w0", "spans.jsonl.w1",
                     "spans.jsonl.wx", "spans.jsonl.w2backup"):
            (tmp_path / name).write_text("")
        assert expand_span_paths(str(base)) == [
            str(base), f"{base}.w0", f"{base}.w1"]
        assert expand_span_paths(str(tmp_path / "absent.jsonl")) == []

    def test_load_rejects_non_object_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            load_span_records([str(path)])

    def test_cross_process_merge_and_parentage(self, tmp_path):
        spans_path, slow_ids = self.build_two_process_dump(tmp_path)
        records, metas = load_span_records(
            expand_span_paths(str(spans_path)))
        assert {meta["process"] for meta in metas} == \
            {"front", "worker-0"}
        traces = build_traces(records)
        assert [t["trace_id"] for t in traces] == \
            [slow_ids[0], slow_ids[1]]  # slowest first
        slow = traces[0]
        assert slow["processes"] == ["front", "worker-0"]
        by_name = {s["name"]: s for s in slow["spans"]}
        assert by_name["dispatch"]["parent"] == by_name["request"]["span"]
        assert by_name["work"]["parent"] == by_name["dispatch"]["span"]
        assert by_name["compile"]["parent"] == by_name["work"]["span"]
        (root,) = slow["roots"]
        assert root["name"] == "request"

    def test_waterfall_renders_nested_rows(self, tmp_path):
        spans_path, _ = self.build_two_process_dump(tmp_path)
        records, _ = load_span_records(expand_span_paths(str(spans_path)))
        lines = render_waterfall(build_traces(records)[0])
        assert "4 span(s)" in lines[0]
        assert "front, worker-0" in lines[0]
        # Indentation tracks depth; the cache verdict rides along.
        assert any(line.lstrip().startswith("request") for line in lines)
        assert any("(miss)" in line and "compile" in line
                   for line in lines)

    def test_format_trace_show_limit_and_prefix(self, tmp_path):
        spans_path, slow_ids = self.build_two_process_dump(tmp_path)
        paths = expand_span_paths(str(spans_path))
        shown = format_trace_show(paths, limit=1)
        assert slow_ids[0] in shown
        assert slow_ids[1] not in shown
        assert "1 faster trace(s) not shown" in shown
        filtered = format_trace_show(paths,
                                     trace_prefix=slow_ids[1][:8])
        assert slow_ids[1] in filtered
        assert f"trace {slow_ids[0]}" not in filtered

    def test_partial_tree_degrades_to_local_root(self):
        worker = SpanRecorder(threshold_ms=0.0, process="worker-0")
        work = worker.start("work", trace_id="t1", parent_id="missing")
        worker.close_trace("t1", work.end())
        (trace,) = build_traces(worker.to_records())
        assert trace["roots"][0]["name"] == "work"
        assert render_waterfall(trace)


class TestWireContext:
    def test_parse_accepts_valid_context(self):
        request = parse_request({"id": 1, "verb": "ping",
                                 "trace": {"trace_id": "abc",
                                           "span_id": "s1"}})
        assert request.trace == {"trace_id": "abc", "span_id": "s1"}
        assert request.to_dict()["trace"] == {"trace_id": "abc",
                                              "span_id": "s1"}

    def test_parse_accepts_forwarded_enqueue_stamp(self):
        request = parse_request(
            {"id": 1, "verb": "ping",
             "trace": {"trace_id": "abc", "span_id": "s1",
                       "enqueued_unix": 123.5}})
        assert request.trace["enqueued_unix"] == 123.5

    def test_absent_trace_stays_absent(self):
        request = parse_request({"id": 1, "verb": "ping"})
        assert request.trace is None
        assert "trace" not in request.to_dict()

    @pytest.mark.parametrize("trace", [
        "not-a-dict",
        {"trace_id": "abc", "nonsense": 1},
        {"span_id": "orphan"},
        {"trace_id": ""},
        {"trace_id": "x" * 65},
        {"trace_id": "abc", "span_id": 7},
        {"trace_id": "abc", "enqueued_unix": "noon"},
    ])
    def test_parse_rejects_malformed_context(self, trace):
        with pytest.raises(ProtocolError):
            parse_request({"id": 1, "verb": "ping", "trace": trace})

    def test_wire_context_carries_ids(self):
        recorder = SpanRecorder(process="loadgen")
        span = recorder.start("request")
        assert wire_context(span) == {"trace_id": span.trace_id,
                                      "span_id": span.span_id}


class TestExecutorStages:
    def test_stages_recorded_under_work_span(self):
        spans = SpanRecorder(threshold_ms=0.0, process="worker-0")
        executor = ServiceExecutor()
        with obs.recording(obs.Recorder(spans=spans)) as recorder:
            work = spans.start("work")
            with activate(work):
                executor.handle(parse_request(
                    {"id": 0, "verb": "schedule", "network": "n",
                     "config": make_config()}))
            spans.close_trace(work.trace_id, work.end())
            work2 = spans.start("work")
            with activate(work2):
                executor.handle(parse_request(
                    {"id": 1, "verb": "simulate", "network": "n",
                     "repetitions": 4}))
            spans.close_trace(work2.trace_id, work2.end())
            snapshot = recorder.snapshot()

        names = {s["name"] for t in build_traces(spans.to_records())
                 for s in t["spans"]}
        assert {"cache.topology", "cache.workload", "compile",
                "cache.environment", "simulate"} <= names
        # Side surface 1: per-stage latency histograms.
        for stage_name in ("cache.topology", "compile", "simulate"):
            assert snapshot["histograms"][
                f"span.{stage_name}.seconds"]["count"] == 1
        # Side surface 2: per-kind cache lookup counters.
        counters = snapshot["counters"]
        assert counters["service.cache.topology.miss"] == 1
        assert counters["service.cache.workload.miss"] == 1
        assert counters["service.cache.schedule.miss"] == 1
        assert counters["service.cache.environment.miss"] == 1

    def test_child_stage_durations_fit_inside_parent(self):
        spans = SpanRecorder(threshold_ms=0.0, process="worker-0")
        executor = ServiceExecutor()
        with obs.recording(obs.Recorder(spans=spans)):
            work = spans.start("work")
            with activate(work):
                executor.handle(parse_request(
                    {"id": 0, "verb": "schedule", "network": "n",
                     "config": make_config()}))
            spans.close_trace(work.trace_id, work.end())
        (trace,) = build_traces(spans.to_records())
        (root,) = trace["roots"]
        children = [s for s in trace["spans"]
                    if s["parent"] == root["span"]]
        assert children
        # Serial stages: their summed durations cannot exceed the
        # parent's measured duration (tolerance for rounding).
        assert sum(c["duration_ms"] for c in children) <= \
            root["duration_ms"] + 1.0

    def test_simulate_stage_annotates_engine_and_chunks(self):
        spans = SpanRecorder(threshold_ms=0.0, process="worker-0")
        executor = ServiceExecutor()
        with obs.recording(obs.Recorder(spans=spans)):
            work = spans.start("work")
            with activate(work):
                executor.handle(parse_request(
                    {"id": 0, "verb": "schedule", "network": "n",
                     "config": make_config()}))
                executor.handle(parse_request(
                    {"id": 1, "verb": "simulate", "network": "n",
                     "engine": "event", "repetitions": 6}))
            spans.close_trace(work.trace_id, work.end())
        (trace,) = build_traces(spans.to_records())
        (simulate,) = [s for s in trace["spans"]
                       if s["name"] == "simulate"]
        assert simulate["attrs"]["engine"] == "event"
        assert simulate["attrs"]["repetitions"] == 6
        assert simulate["attrs"]["chunks"] >= 1

    def test_shadow_executor_records_nothing(self):
        spans = SpanRecorder(threshold_ms=0.0, process="loadgen")
        executor = ServiceExecutor(worker_index=-1)
        with obs.recording(obs.Recorder(spans=spans)):
            # No work span activated — exactly the loadgen --verify
            # shadow path; stages must not open orphan traces.
            executor.handle(parse_request(
                {"id": 0, "verb": "schedule", "network": "n",
                 "config": make_config()}))
        assert spans.in_flight == 0
        assert spans.kept_traces == 0


class TestLoadgenMismatchReport:
    """Satellite: the verify failure line must name the request."""

    class _Shadow:
        def handle(self, request):
            return {"schedule_hash": "aaaa1111"}

    def test_mismatch_sample_names_the_request(self):
        stats = _Stats()
        payload = {"id": 17, "verb": "schedule", "network": "net-003",
                   "config": {}}
        response = {"ok": True,
                    "result": {"schedule_hash": "bbbb2222"}}
        _note_response(stats, payload, response, 5.0, self._Shadow(),
                       trace_id="cafe0123deadbeef")
        assert stats.mismatches == 1
        (sample,) = stats.mismatch_samples
        assert sample == {"index": 17, "network": "net-003",
                          "verb": "schedule", "expected": "aaaa1111",
                          "got": "bbbb2222",
                          "trace_id": "cafe0123deadbeef"}

    def test_format_report_prints_failure_line(self):
        report = {
            "requests": 1, "networks": 1, "seed": 0, "mix": 0.3,
            "rate": 0.0, "wall_s": 0.1, "rps": 10.0,
            "verbs": {"schedule": 1}, "errors": 0, "error_samples": [],
            "reschedule_modes": {"noop": 0, "repair": 0, "rebuild": 0},
            "latency_ms": {"mean": 5.0, "p50": 5.0, "p90": 5.0,
                           "p99": 5.0, "max": 5.0},
            "histogram": [{"le_ms": 1.0, "count": 0}],
            "service": {},
            "verify": {
                "checked": 1, "mismatches": 3,
                "mismatch_samples": [
                    {"index": 17, "network": "net-003",
                     "verb": "schedule", "expected": "aaaa1111",
                     "got": "bbbb2222",
                     "trace_id": "cafe0123deadbeef"}]},
        }
        text = format_report(report)
        line = next(l for l in text.splitlines() if "MISMATCH" in l)
        assert "request #17" in line
        assert "schedule" in line
        assert "net-003" in line
        assert "expected aaaa1111" in line
        assert "got bbbb2222" in line
        assert "(trace cafe0123deadbeef)" in line
        assert "2 more mismatch(es) not sampled" in text


class TestWorkerDeathSpanIntegrity:
    """Satellite: spans stay well-formed when a worker dies mid-run."""

    def test_front_closes_request_span_with_error(self, tmp_path):
        from repro.service.protocol import shard_of
        from repro.service.server import ScheduleService, ServiceOptions

        socket_path = str(tmp_path / "serve.sock")
        spans_path = str(tmp_path / "spans.jsonl")
        front_spans = SpanRecorder(threshold_ms=1e9, process="front")
        options = ServiceOptions(socket_path=socket_path,
                                 num_workers=2,
                                 spans_path=spans_path,
                                 span_threshold_ms=0.0)

        async def scenario():
            service = ScheduleService(options)
            await service.start()
            try:
                reader, writer = await asyncio.open_unix_connection(
                    socket_path)

                async def ask(payload):
                    writer.write(json.dumps(payload).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                warm = await ask({"id": 0, "verb": "schedule",
                                  "network": "doomed",
                                  "config": make_config()})
                assert warm["ok"]
                shard = shard_of("doomed", 2)
                handle = service.workers[shard]
                handle.process.kill()
                handle.process.join(timeout=10)
                deadline = time.time() + 10
                while handle.alive and time.time() < deadline:
                    await asyncio.sleep(0.05)
                failed = await ask({"id": 1, "verb": "schedule",
                                    "network": "doomed",
                                    "config": make_config()})
                writer.close()
                await writer.wait_closed()
                return failed, shard
            finally:
                await service.stop()

        with obs.recording(obs.Recorder(spans=front_spans)):
            failed, dead_shard = asyncio.run(scenario())

        assert not failed["ok"]
        assert failed["error"]["type"] == "WorkerDied"
        assert failed["trace"]["trace_id"]
        # The front end closed the open request span with error status
        # and the tail policy kept it despite the sky-high threshold.
        kept = {trace_id: root
                for trace_id, _, root in front_spans.slowest(10)}
        error_root = kept[failed["trace"]["trace_id"]]
        assert error_root["status"] == "error"
        assert error_root["attrs"]["error"] == "WorkerDied"
        assert front_spans.in_flight == 0

        # The surviving shard flushed a well-formed dump: every record
        # an object, the span_meta trailer last.
        survivor = f"{spans_path}.w{1 - dead_shard}"
        records = load_jsonl(survivor)
        assert records[-1]["kind"] == "span_meta"
        assert all(isinstance(r, dict) and "kind" in r for r in records)
        assert records[-1]["in_flight"] == 0
        # The killed worker never exported; the merge just skips it.
        assert not Path(f"{spans_path}.w{dead_shard}").exists()
        merged = expand_span_paths(spans_path)
        assert merged == [survivor]
        spans, metas = load_span_records(merged)
        assert metas[0]["process"] == f"worker-{1 - dead_shard}"
        if dead_shard == 1:
            assert spans  # survivor served the warm request


class TestTraceShowCli:
    def write_dump(self, tmp_path):
        recorder = SpanRecorder(threshold_ms=0.0, process="front")
        root = recorder.start("request")
        recorder.start("dispatch", trace_id=root.trace_id,
                       parent_id=root.span_id).end()
        recorder.close_trace(root.trace_id, root.end())
        path = tmp_path / "spans.jsonl"
        recorder.export_jsonl(str(path))
        return path, root.trace_id

    def test_trace_show_renders(self, tmp_path, capsys):
        path, trace_id = self.write_dump(tmp_path)
        assert main(["trace", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace {trace_id}" in out
        assert "dispatch" in out

    def test_trace_show_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", "show", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_show_corrupt_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"kind": "span"\n')
        assert main(["trace", "show", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestReportMergesWorkerFiles:
    """Satellite: ``repro report`` folds ``.w<i>`` siblings in."""

    def snapshot_with(self, counter_value):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("scheduler.placements", counter_value)
        registry.inc("service.cache.topology.hit", 2)
        registry.inc("service.cache.topology.miss", 1)
        registry.observe("span.compile.seconds", 0.02,
                         (0.01, 0.1, 1.0))
        return registry.snapshot()

    def test_merges_metrics_and_trace_siblings(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        save_metrics(self.snapshot_with(10), str(metrics))
        save_metrics(self.snapshot_with(7), f"{metrics}.w0")
        save_metrics(self.snapshot_with(5), f"{metrics}.w1")
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            '{"kind": "span", "trace": "t"}\n'
            '{"kind": "trace_meta", "dropped": 1}\n')
        Path(f"{trace}.w0").write_text(
            '{"kind": "span", "trace": "t"}\n'
            '{"kind": "span_meta", "dropped_spans": 0, "dropped": 2}\n')

        assert main(["report", str(metrics), "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "merged 3 snapshot(s)" in out
        assert "22" in out  # 10 + 7 + 5 placements
        # Hit/miss counters merged too: 6 hits / 3 misses.
        assert "0.667" in out
        # Stage table from the merged span histograms (3 observations).
        assert "request stages" in out
        assert "compile" in out
        # Trailer kinds excluded from the per-kind table, but counted
        # into the dropped tally.
        assert "span_meta" not in out
        assert "trace_meta" not in out
        line = next(l for l in out.splitlines() if "dropped" in l)
        assert "3" in line

    def test_front_only_snapshot_prints_no_merge_note(self, tmp_path,
                                                      capsys):
        metrics = tmp_path / "metrics.json"
        save_metrics(self.snapshot_with(4), str(metrics))
        assert main(["report", str(metrics)]) == 0
        assert "merged" not in capsys.readouterr().out

    def test_worker_files_alone_suffice(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        save_metrics(self.snapshot_with(3), f"{metrics}.w0")
        assert main(["report", str(metrics)]) == 0

    def test_missing_everything_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_sibling_exits_2(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        save_metrics(self.snapshot_with(1), str(metrics))
        Path(f"{metrics}.w0").write_text("{broken")
        assert main(["report", str(metrics)]) == 2


class TestTopStagePanel:
    def test_stage_panel_appears_with_span_histograms(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.timeseries import TimeSeriesStore
        from repro.obs.top import render_top

        registry = MetricsRegistry()
        for _ in range(3):
            registry.observe("span.compile.seconds", 0.05,
                             (0.01, 0.1, 1.0))
        registry.observe("span.shard.queue.seconds", 0.2,
                         (0.01, 0.1, 1.0))
        frame = render_top(TimeSeriesStore(),
                           registry.snapshot(), ascii_only=True)
        assert "request stages" in frame
        compile_line = next(l for l in frame.splitlines()
                            if "compile" in l)
        assert "mean" in compile_line and "p99" in compile_line
        # compile: 3 x 50 ms.
        assert "50.00 ms" in compile_line

    def test_no_panel_without_span_histograms(self):
        from repro.obs.timeseries import TimeSeriesStore
        from repro.obs.top import render_top

        frame = render_top(TimeSeriesStore(), {"histograms": {}},
                           ascii_only=True)
        assert "request stages" not in frame
