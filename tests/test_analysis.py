"""Tests for repro.analysis.metrics."""

import pytest

from repro.analysis.metrics import (
    BoxStats,
    cell_min_reuse_hops,
    reuse_hop_distribution,
    reuse_hop_fractions,
    schedulable_ratio,
    tx_per_cell_distribution,
    tx_per_cell_fractions,
)
from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulingResult
from repro.flows.flow import FlowSet
from repro.network.graphs import ChannelReuseGraph

from test_core_schedule import request


def fake_result(schedulable):
    return SchedulingResult(schedulable=schedulable,
                            schedule=Schedule(2, 1, 1),
                            flow_set=FlowSet([]), policy_name="NR")


class TestSchedulableRatio:
    def test_ratio(self):
        results = [fake_result(True), fake_result(False), fake_result(True)]
        assert schedulable_ratio(results) == pytest.approx(2 / 3)

    def test_empty(self):
        assert schedulable_ratio([]) == 0.0


class TestTxPerCell:
    def test_distribution(self):
        schedule = Schedule(8, 10, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(2, 3), 0, 0)
        schedule.add(request(4, 5), 0, 1)
        schedule.add(request(6, 7), 1, 0)
        assert tx_per_cell_distribution(schedule) == {1: 2, 2: 1}

    def test_fractions_pool_over_schedules(self):
        schedules = []
        for _ in range(2):
            schedule = Schedule(8, 10, 2)
            schedule.add(request(0, 1), 0, 0)
            schedule.add(request(2, 3), 0, 0)
            schedules.append(schedule)
        fractions = tx_per_cell_fractions(schedules)
        assert fractions == {2: 1.0}

    def test_empty_schedules(self):
        assert tx_per_cell_fractions([Schedule(2, 2, 1)]) == {}


class TestReuseHops:
    def test_cell_min_hops(self, line_topology):
        reuse = ChannelReuseGraph.from_topology(line_topology)
        schedule = Schedule(6, 10, 1)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5), 0, 0)
        _, _, txs = schedule.reused_cells()[0]
        # Pairwise distances: hop(0,5)=5, hop(4,1)=3 -> min 3.
        assert cell_min_reuse_hops(txs, reuse) == 3

    def test_single_transmission_cell_is_none(self, line_topology):
        reuse = ChannelReuseGraph.from_topology(line_topology)
        schedule = Schedule(6, 10, 1)
        schedule.add(request(0, 1), 0, 0)
        cells = list(schedule.occupied_cells())
        assert cell_min_reuse_hops(cells[0][2], reuse) is None

    def test_distribution(self, line_topology):
        reuse = ChannelReuseGraph.from_topology(line_topology)
        schedule = Schedule(6, 10, 1)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5), 0, 0)
        schedule.add(request(0, 1), 1, 0)
        schedule.add(request(3, 4), 1, 0)  # hop(0,4)=4, hop(3,1)=2 -> 2
        assert reuse_hop_distribution(schedule, reuse) == {3: 1, 2: 1}

    def test_fractions(self, line_topology):
        reuse = ChannelReuseGraph.from_topology(line_topology)
        schedule = Schedule(6, 10, 1)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5), 0, 0)
        fractions = reuse_hop_fractions([schedule], reuse)
        assert fractions == {3: 1.0}


class TestBoxStats:
    def test_five_number_summary(self):
        stats = BoxStats.from_values([1, 2, 3, 4, 5])
        assert stats.minimum == 1
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.q1 == 2
        assert stats.q3 == 4
        assert stats.n == 5

    def test_interpolated_quartiles(self):
        stats = BoxStats.from_values([0.0, 1.0])
        assert stats.q1 == pytest.approx(0.25)
        assert stats.median == pytest.approx(0.5)

    def test_single_value(self):
        stats = BoxStats.from_values([0.7])
        assert stats.minimum == stats.maximum == stats.median == 0.7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values([])

    def test_row_renders(self):
        assert "med=0.500" in BoxStats.from_values([0.0, 1.0]).row()
