"""Multiprocess regression test for RunLedger append atomicity.

The scheduling service has N worker processes committing batch records
to one ledger file concurrently.  :meth:`RunLedger.append` must issue
each record as a single ``write(2)`` on an ``O_APPEND`` descriptor so
concurrent writers can never interleave partial lines; this test
hammers one ledger from several processes and requires a loss-free,
corruption-free read-back (``.skipped == 0``).
"""

import multiprocessing

from repro.obs.ledger import RunLedger, new_record

WRITERS = 8
RECORDS_PER_WRITER = 50


def _hammer(path: str, writer: int) -> None:
    # Module-level so the spawn start method can pickle it too.
    ledger = RunLedger(path)
    for index in range(RECORDS_PER_WRITER):
        record = new_record("hammer", [], {"writer": writer, "i": index})
        # A filler field makes each line a few hundred bytes — long
        # enough that a non-atomic append would visibly shear.
        record["filler"] = f"w{writer}" * 100
        ledger.commit(record, status="ok",
                      metrics={"writer": writer, "i": index})


class TestConcurrentAppend:
    def test_no_lost_or_torn_records(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(target=_hammer, args=(str(path), writer))
            for writer in range(WRITERS)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0

        ledger = RunLedger(path)
        records = ledger.records()
        assert ledger.skipped == 0
        assert len(records) == WRITERS * RECORDS_PER_WRITER
        # Every (writer, index) pair survived exactly once.
        seen = {(r["config"]["writer"], r["config"]["i"])
                for r in records}
        assert len(seen) == WRITERS * RECORDS_PER_WRITER
        # And every record is fully intact, not merely parseable.
        assert all(r["metrics"]["writer"] == r["config"]["writer"]
                   for r in records)

    def test_single_process_append_still_works(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        committed = ledger.commit(new_record("solo", ["x"], {"a": 1}),
                                  status="ok")
        records = ledger.records()
        assert ledger.skipped == 0
        assert len(records) == 1
        assert records[0]["run_id"] == committed["run_id"]
