"""Tests for repro.core.laxity (Equation 1)."""

from repro.core.laxity import calculate_laxity, conflict_slots_for
from repro.core.schedule import Schedule

from test_core_schedule import request


class TestLaxity:
    def test_no_remaining_transmissions(self):
        """With T_post empty the laxity is just the remaining window."""
        schedule = Schedule(6, 100, 2)
        assert calculate_laxity(schedule, slot=10, deadline_slot=50,
                                remaining=[]) == 40

    def test_empty_schedule(self):
        """d - s - 0 - |T_post| on an empty schedule."""
        schedule = Schedule(6, 100, 2)
        remaining = [request(1, 2), request(2, 3)]
        assert calculate_laxity(schedule, 10, 50, remaining) == 40 - 0 - 2

    def test_conflicting_slots_subtracted(self):
        schedule = Schedule(6, 100, 2)
        # Busy slots for node 1 or 2 inside (10, 50]: slots 20 and 30.
        schedule.add(request(1, 4), 20, 0)
        schedule.add(request(2, 5), 30, 0)
        remaining = [request(1, 2)]
        assert calculate_laxity(schedule, 10, 50, remaining) == 40 - 2 - 1

    def test_conflicts_outside_window_ignored(self):
        schedule = Schedule(6, 100, 2)
        schedule.add(request(1, 4), 5, 0)    # before the window
        schedule.add(request(1, 5), 60, 0)   # after the deadline
        remaining = [request(1, 2)]
        assert calculate_laxity(schedule, 10, 50, remaining) == 40 - 0 - 1

    def test_per_transmission_sum_double_counts(self):
        """The paper's estimate sums q per remaining transmission, so one
        busy slot blocking two remaining transmissions counts twice —
        deliberately conservative."""
        schedule = Schedule(6, 100, 2)
        schedule.add(request(1, 2), 20, 0)  # conflicts with both below
        remaining = [request(1, 4), request(2, 5)]
        assert calculate_laxity(schedule, 10, 50, remaining) == 40 - 2 - 2

    def test_negative_laxity(self):
        schedule = Schedule(6, 100, 2)
        remaining = [request(1, 2)] * 5
        assert calculate_laxity(schedule, 46, 50, remaining) == 4 - 0 - 5

    def test_zero_laxity_boundary(self):
        schedule = Schedule(6, 100, 2)
        remaining = [request(1, 2), request(2, 3)]
        assert calculate_laxity(schedule, 48, 50, remaining) == 0

    def test_conflict_slots_for(self):
        schedule = Schedule(6, 100, 2)
        schedule.add(request(1, 4), 20, 0)
        schedule.add(request(3, 5), 25, 0)
        assert conflict_slots_for(schedule, request(1, 3), 0, 99) == 2
        assert conflict_slots_for(schedule, request(0, 2), 0, 99) == 0

    def test_same_slot_conflict_counted_once_per_transmission(self):
        """Two transmissions in one slot both touching t's nodes still
        make just one unusable slot for t."""
        schedule = Schedule(8, 100, 4)
        schedule.add(request(1, 6), 20, 0)
        schedule.add(request(2, 7), 20, 1)
        remaining = [request(1, 2)]
        assert calculate_laxity(schedule, 10, 50, remaining) == 40 - 1 - 1
