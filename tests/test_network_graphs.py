"""Tests for repro.network.graphs (communication & reuse graphs)."""

import numpy as np
import pytest

from repro.network.graphs import (
    ChannelReuseGraph,
    CommunicationGraph,
    UNREACHABLE,
    all_pairs_hops,
    bfs_hops_from,
)

from conftest import build_topology


class TestCommunicationGraph:
    def test_line_edges(self, line_topology):
        graph = CommunicationGraph.from_topology(line_topology, 0.9)
        assert graph.num_edges() == 5
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_weak_links_excluded(self, line_with_weak_links):
        """An edge needs PRR ≥ threshold on all channels in both directions."""
        graph = CommunicationGraph.from_topology(line_with_weak_links, 0.9)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(3, 5)

    def test_threshold_effect(self, line_with_weak_links):
        relaxed = CommunicationGraph.from_topology(line_with_weak_links, 0.2)
        assert relaxed.has_edge(0, 2)

    def test_one_bad_channel_excludes_edge(self):
        topo = build_topology(2, [(0, 1)], num_channels=3)
        prr = topo.prr.copy()
        prr[0, 1, 2] = 0.5  # one direction, one channel below threshold
        topo = build_topology(2, [(0, 1)], num_channels=3)
        topo.prr[0, 1, 2] = 0.5
        graph = CommunicationGraph.from_topology(topo, 0.9)
        assert not graph.has_edge(0, 1)

    def test_asymmetric_link_excluded(self):
        topo = build_topology(2, [(0, 1)])
        topo.prr[1, 0, :] = 0.0  # reverse direction dead
        graph = CommunicationGraph.from_topology(topo, 0.9)
        assert not graph.has_edge(0, 1)

    def test_neighbors_sorted(self, grid_topology):
        graph = CommunicationGraph.from_topology(grid_topology, 0.9)
        assert graph.neighbors(4) == [1, 3, 5, 7]

    def test_degree(self, grid_topology):
        graph = CommunicationGraph.from_topology(grid_topology, 0.9)
        assert graph.degree(4) == 4
        assert graph.degree(0) == 2

    def test_connectivity(self, line_topology):
        graph = CommunicationGraph.from_topology(line_topology, 0.9)
        assert graph.is_connected()

    def test_largest_component(self):
        topo = build_topology(5, [(0, 1), (2, 3), (3, 4)])
        graph = CommunicationGraph.from_topology(topo, 0.9)
        assert not graph.is_connected()
        assert graph.largest_component() == [2, 3, 4]

    def test_edges_list(self, line_topology):
        graph = CommunicationGraph.from_topology(line_topology, 0.9)
        assert graph.edges() == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]


class TestReuseGraph:
    def test_weak_links_included(self, line_with_weak_links):
        """G_R includes any pair with PRR > 0 on any channel, either way."""
        graph = ChannelReuseGraph.from_topology(line_with_weak_links)
        assert graph.hop_distance(0, 2) == 1

    def test_one_direction_suffices(self):
        topo = build_topology(2, [], weak_links=[(0, 1)])
        topo.prr[1, 0, :] = 0.0
        graph = ChannelReuseGraph.from_topology(topo)
        assert graph.hop_distance(0, 1) == 1

    def test_any_channel_suffices(self):
        topo = build_topology(2, [], num_channels=3)
        topo.prr[0, 1, 2] = 0.05  # audible on a single channel only
        graph = ChannelReuseGraph.from_topology(topo)
        assert graph.hop_distance(0, 1) == 1

    def test_hop_distances_on_line(self, line_topology):
        graph = ChannelReuseGraph.from_topology(line_topology)
        assert graph.hop_distance(0, 5) == 5
        assert graph.hop_distance(2, 2) == 0

    def test_diameter(self, line_topology):
        assert ChannelReuseGraph.from_topology(line_topology).diameter() == 5

    def test_weak_shortcut_reduces_distance(self, line_with_weak_links):
        graph = ChannelReuseGraph.from_topology(line_with_weak_links)
        assert graph.hop_distance(0, 5) == 3  # 0-2, 2-3, 3-5 shortcuts

    def test_at_least_hops_apart(self, line_topology):
        graph = ChannelReuseGraph.from_topology(line_topology)
        assert graph.at_least_hops_apart(0, 3, 3)
        assert graph.at_least_hops_apart(0, 3, 2)
        assert not graph.at_least_hops_apart(0, 3, 4)

    def test_infinite_rho_never_satisfied_for_connected(self, line_topology):
        graph = ChannelReuseGraph.from_topology(line_topology)
        assert not graph.at_least_hops_apart(0, 5, float("inf"))

    def test_unreachable_always_far_enough(self):
        topo = build_topology(4, [(0, 1), (2, 3)])
        graph = ChannelReuseGraph.from_topology(topo)
        assert graph.hop_distance(0, 2) == UNREACHABLE
        assert graph.at_least_hops_apart(0, 2, 100)
        assert graph.at_least_hops_apart(0, 2, float("inf"))


class TestBfs:
    def test_bfs_from_source(self, line_topology):
        from repro.network.graphs import communication_adjacency

        adjacency = communication_adjacency(line_topology, 0.9)
        hops = bfs_hops_from(adjacency, 0)
        assert list(hops) == [0, 1, 2, 3, 4, 5]

    def test_all_pairs_symmetric(self, grid_topology):
        from repro.network.graphs import communication_adjacency

        adjacency = communication_adjacency(grid_topology, 0.9)
        hops = all_pairs_hops(adjacency)
        assert np.array_equal(hops, hops.T)
        assert hops[0, 8] == 4  # corner to corner of 3x3 grid

    def test_disconnected_marked(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        hops = bfs_hops_from(adjacency, 0)
        assert hops[2] == UNREACHABLE
