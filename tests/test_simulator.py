"""Tests for repro.simulator (radio, interference, stats, engine)."""

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.flows.flow import Flow, FlowSet
from repro.mac.channels import ChannelMap
from repro.propagation.pathloss import LogDistancePathLoss
from repro.simulator.engine import SimulationConfig, TschSimulator
from repro.simulator.interference import (
    WifiInterferer,
    interferer_rssi_matrix,
    place_interferer_pairs,
)
from repro.simulator.radio import decide_reception, sinr_at_receiver
from repro.simulator.stats import AttemptCounter, SimulationStats
from repro.propagation.prr_model import get_prr_curve
from repro.network.node import Position
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import RadioEnvironment

from test_core_schedule import request


# ----------------------------------------------------------------------
# Radio
# ----------------------------------------------------------------------

class TestRadio:
    def test_sinr_no_interference(self):
        assert sinr_at_receiver(-90.0, -98.0, []) == pytest.approx(8.0)

    def test_sinr_with_interference(self):
        clean = sinr_at_receiver(-90.0, -98.0, [])
        noisy = sinr_at_receiver(-90.0, -98.0, [-95.0])
        assert noisy < clean

    def test_sinr_zero_signal(self):
        assert sinr_at_receiver(float("-inf"), -98.0, []) == float("-inf")

    def test_decide_reception_strong_signal(self):
        lookup = get_prr_curve(60, 0.0)
        rng = np.random.default_rng(0)
        decision = decide_reception(-60.0, -98.0, [], lookup, rng)
        assert decision.success
        assert decision.success_probability > 0.999

    def test_decide_reception_hopeless_signal(self):
        lookup = get_prr_curve(60, 0.0)
        rng = np.random.default_rng(0)
        decision = decide_reception(-120.0, -98.0, [], lookup, rng)
        assert not decision.success
        assert decision.success_probability < 1e-6

    def test_capture_effect(self):
        """A much stronger intended signal survives a concurrent
        transmission (the capture effect the paper relies on)."""
        lookup = get_prr_curve(60, 0.0)
        rng = np.random.default_rng(0)
        strong = decide_reception(-60.0, -98.0, [-90.0], lookup, rng)
        weak = decide_reception(-90.0, -98.0, [-84.0], lookup, rng)
        assert strong.success_probability > 0.999
        assert weak.success_probability < 0.01


# ----------------------------------------------------------------------
# Interference
# ----------------------------------------------------------------------

class TestInterference:
    def test_affected_channels_wifi_1(self):
        interferer = WifiInterferer(Position(0, 0, 0), wifi_channel=1)
        assert interferer.affected_channels() == [11, 12, 13, 14]

    def test_inband_power_below_total(self):
        interferer = WifiInterferer(Position(0, 0, 0), tx_power_dbm=15.0)
        assert interferer.inband_tx_power_dbm() < 15.0

    def test_duty_cycle_bounds(self):
        with pytest.raises(ValueError):
            WifiInterferer(Position(0, 0, 0), duty_cycle=1.5)

    def test_one_interferer_per_floor(self):
        plan = FloorPlan(3, 40.0, 20.0)
        interferers = place_interferer_pairs(plan)
        assert len(interferers) == 3
        floors = sorted(plan.floor_of(i.position) for i in interferers)
        assert floors == [0, 1, 2]

    def test_rssi_matrix_shape_and_decay(self):
        plan = FloorPlan(1, 40.0, 20.0)
        interferers = [WifiInterferer(Position(0.0, 0.0, 0.0))]
        near = np.array([[1.0, 0.0, 0.0]])
        far = np.array([[40.0, 20.0, 0.0]])
        model = LogDistancePathLoss(shadowing_sigma_db=0.0)
        rng = np.random.default_rng(0)
        rssi_near = interferer_rssi_matrix(interferers, near, plan, model, rng)
        rssi_far = interferer_rssi_matrix(interferers, far, plan, model, rng)
        assert rssi_near.shape == (1, 1)
        assert rssi_near[0, 0] > rssi_far[0, 0]


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------

class TestStats:
    def test_attempt_counter(self):
        counter = AttemptCounter()
        assert counter.prr is None
        counter.record(True)
        counter.record(False)
        assert counter.prr == 0.5

    def test_pdr_accounting(self):
        stats = SimulationStats()
        stats.record_release(0, 10)
        stats.record_delivery(0, 9)
        stats.record_release(1, 10)
        assert stats.pdr_per_flow() == {0: 0.9, 1: 0.0}
        assert stats.worst_pdr() == 0.0
        assert stats.median_pdr() == 0.45

    def test_link_samples_by_category(self):
        stats = SimulationStats()
        record = stats.start_repetition()
        record.record((0, 1), shared_cell=True, success=True)
        record.record((0, 1), shared_cell=True, success=False)
        record.record((0, 1), shared_cell=False, success=True)
        record2 = stats.start_repetition()
        record2.record((0, 1), shared_cell=True, success=True)
        assert stats.link_prr_samples((0, 1), True) == [0.5, 1.0]
        assert stats.link_prr_samples((0, 1), False) == [1.0]
        assert stats.overall_link_prr((0, 1), True) == pytest.approx(2 / 3)

    def test_repetition_range(self):
        stats = SimulationStats()
        for value in (True, False):
            record = stats.start_repetition()
            record.record((0, 1), True, value)
        assert stats.link_prr_samples((0, 1), True, (0, 1)) == [1.0]
        assert stats.link_prr_samples((0, 1), True, (1, 2)) == [0.0]

    def test_links_seen(self):
        stats = SimulationStats()
        record = stats.start_repetition()
        record.record((3, 4), True, True)
        record.record((1, 2), False, True)
        assert stats.links_seen() == [(1, 2), (3, 4)]


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

def tiny_environment(rssi_ab=-60.0, rssi_bc=-60.0, rssi_ac=-120.0,
                     num_channels=2):
    """Three nodes in a line A-B-C with controllable link strengths."""
    rssi = np.full((3, 3, num_channels), -150.0)
    idx = np.arange(3)
    rssi[idx, idx, :] = -np.inf
    rssi[0, 1, :] = rssi[1, 0, :] = rssi_ab
    rssi[1, 2, :] = rssi[2, 1, :] = rssi_bc
    rssi[0, 2, :] = rssi[2, 0, :] = rssi_ac
    return RadioEnvironment(
        positions=np.zeros((3, 3)),
        rssi_dbm=rssi,
        channel_map=ChannelMap.first_n(num_channels),
        grey_sigma_db=3.6,
    )


def tiny_flow_and_schedule(deadline=100):
    flow = Flow(0, 0, 2, 100, deadline, (0, 1, 2))
    flow_set = FlowSet([flow])
    schedule = Schedule(3, 100, 2)
    schedule.add(request(0, 1, hop=0, attempt=0), 0, 0)
    schedule.add(request(0, 1, hop=0, attempt=1), 1, 0)
    schedule.add(request(1, 2, hop=1, attempt=0), 2, 0)
    schedule.add(request(1, 2, hop=1, attempt=1), 3, 0)
    return flow_set, schedule


class TestEngine:
    def test_perfect_links_deliver_everything(self):
        flow_set, schedule = tiny_flow_and_schedule()
        env = tiny_environment()
        sim = TschSimulator(schedule, flow_set, env, env.channel_map,
                            config=SimulationConfig(seed=1))
        stats = sim.run(20)
        assert stats.pdr_per_flow()[0] == 1.0

    def test_dead_link_delivers_nothing(self):
        flow_set, schedule = tiny_flow_and_schedule()
        env = tiny_environment(rssi_bc=-150.0)
        sim = TschSimulator(schedule, flow_set, env, env.channel_map,
                            config=SimulationConfig(seed=1))
        stats = sim.run(20)
        assert stats.pdr_per_flow()[0] == 0.0
        # The first hop still transmitted and succeeded.
        assert stats.overall_link_prr((0, 1), False) == 1.0

    def test_retransmission_slot_unused_after_success(self):
        """With a perfect first hop, attempt 1 never transmits."""
        flow_set, schedule = tiny_flow_and_schedule()
        env = tiny_environment()
        sim = TschSimulator(
            schedule, flow_set, env, env.channel_map,
            config=SimulationConfig(seed=1, fast_fading_sigma_db=0.0,
                                    slow_fading_sigma_db=0.0))
        stats = sim.run(10)
        counter_cf = stats.overall_link_prr((0, 1), False)
        # 10 repetitions, exactly one attempt each (the primary).
        total_attempts = sum(
            record.contention_free[(0, 1)].attempts
            for record in stats.repetitions)
        assert total_attempts == 10
        assert counter_cf == 1.0

    def test_retransmission_rescues_marginal_link(self):
        """A ~50% link delivers far more than 50% thanks to the reserved
        retransmission slot."""
        env = tiny_environment()
        curve = get_prr_curve(60, 0.0)
        # Place the B->C RSSI right at the 50% point of the raw curve.
        half_point = -98.0 + curve.inverse(0.5)
        env = tiny_environment(rssi_bc=half_point)
        flow_set, schedule = tiny_flow_and_schedule()
        sim = TschSimulator(
            schedule, flow_set, env, env.channel_map,
            config=SimulationConfig(seed=2, fast_fading_sigma_db=0.0,
                                    slow_fading_sigma_db=0.0))
        stats = sim.run(400)
        assert 0.6 < stats.pdr_per_flow()[0] < 0.9

    def test_clean_air_prr_matches_measured(self):
        """The consistency contract: simulated clean-air PRR converges to
        the smoothed (measured) curve value."""
        curve = get_prr_curve(60, 3.6)
        target_rssi = -98.0 + 5.0  # 5 dB SNR, inside the grey region
        env = tiny_environment(rssi_ab=target_rssi)
        flow = Flow(0, 0, 1, 10, 10, (0, 1))
        flow_set = FlowSet([flow])
        schedule = Schedule(3, 10, 2)
        schedule.add(request(0, 1), 0, 0)
        sim = TschSimulator(schedule, flow_set, env, env.channel_map,
                            config=SimulationConfig(seed=3))
        stats = sim.run(3000)
        simulated = stats.overall_link_prr((0, 1), False)
        assert simulated == pytest.approx(curve(5.0), abs=0.03)

    def test_concurrent_transmissions_interfere(self):
        """Cross-coupling at or above the signal level destroys most
        packets; DSSS processing gain keeps equal-power collisions from
        being a total loss, but the PRR drops far below the clean 1.0."""
        rssi = np.full((4, 4, 1), -60.0)
        idx = np.arange(4)
        rssi[idx, idx, :] = -np.inf
        rssi[0, 3, :] = -52.0  # interference 8 dB above signal at node 3
        env = RadioEnvironment(
            positions=np.zeros((4, 3)), rssi_dbm=rssi,
            channel_map=ChannelMap.first_n(1), grey_sigma_db=3.6)
        flows = FlowSet([Flow(0, 0, 1, 10, 10, (0, 1)),
                         Flow(1, 2, 3, 10, 10, (2, 3))])
        schedule = Schedule(4, 10, 1)
        schedule.add(request(0, 1, flow_id=0), 0, 0)
        schedule.add(request(2, 3, flow_id=1), 0, 0)
        sim = TschSimulator(schedule, flows, env, env.channel_map,
                            config=SimulationConfig(seed=4))
        stats = sim.run(200)
        # Equal-power collision (link 0->1): substantial but partial loss.
        assert stats.overall_link_prr((0, 1), True) < 0.9
        # Dominated collision (link 2->3): near-total loss.
        assert stats.overall_link_prr((2, 3), True) < 0.1

    def test_capture_lets_strong_transmission_survive(self):
        """Asymmetric coupling: the strong link survives the collision,
        the weak one does not."""
        rssi = np.full((4, 4, 1), -150.0)
        idx = np.arange(4)
        rssi[idx, idx, :] = -np.inf
        rssi[0, 1, :] = -60.0   # strong intended link
        rssi[2, 3, :] = -92.0   # marginal intended link
        rssi[2, 1, :] = -95.0   # weak interference at receiver 1
        rssi[0, 3, :] = -70.0   # strong interference at receiver 3
        env = RadioEnvironment(
            positions=np.zeros((4, 3)), rssi_dbm=rssi,
            channel_map=ChannelMap.first_n(1), grey_sigma_db=3.6)
        flows = FlowSet([Flow(0, 0, 1, 10, 10, (0, 1)),
                         Flow(1, 2, 3, 10, 10, (2, 3))])
        schedule = Schedule(4, 10, 1)
        schedule.add(request(0, 1, flow_id=0), 0, 0)
        schedule.add(request(2, 3, flow_id=1), 0, 0)
        sim = TschSimulator(schedule, flows, env, env.channel_map,
                            config=SimulationConfig(seed=5))
        stats = sim.run(200)
        assert stats.overall_link_prr((0, 1), True) > 0.9
        assert stats.overall_link_prr((2, 3), True) < 0.2

    def test_wifi_interferer_degrades_overlapping_channel(self):
        env = tiny_environment(rssi_ab=-93.0, num_channels=1)
        flow = Flow(0, 0, 1, 10, 10, (0, 1))
        flow_set = FlowSet([flow])
        schedule = Schedule(3, 10, 1)
        schedule.add(request(0, 1), 0, 0)
        interferer = WifiInterferer(Position(0, 0, 0), wifi_channel=1,
                                    duty_cycle=1.0)
        rssi_matrix = np.full((1, 3), -85.0)
        clean = TschSimulator(schedule, flow_set, env, env.channel_map,
                              config=SimulationConfig(seed=6)).run(300)
        noisy = TschSimulator(schedule, flow_set, env, env.channel_map,
                              interferers=[interferer],
                              interferer_rssi_dbm=rssi_matrix,
                              config=SimulationConfig(seed=6)).run(300)
        assert (noisy.overall_link_prr((0, 1), False)
                < clean.overall_link_prr((0, 1), False) - 0.2)

    def test_interferers_require_rssi_matrix(self):
        env = tiny_environment()
        flow_set, schedule = tiny_flow_and_schedule()
        with pytest.raises(ValueError):
            TschSimulator(schedule, flow_set, env, env.channel_map,
                          interferers=[WifiInterferer(Position(0, 0, 0))])

    def test_determinism(self):
        flow_set, schedule = tiny_flow_and_schedule()
        env = tiny_environment(rssi_bc=-94.0)
        runs = []
        for _ in range(2):
            sim = TschSimulator(schedule, flow_set, env, env.channel_map,
                                config=SimulationConfig(seed=7))
            runs.append(sim.run(50).pdr_per_flow()[0])
        assert runs[0] == runs[1]

    def test_invalid_repetitions(self):
        flow_set, schedule = tiny_flow_and_schedule()
        env = tiny_environment()
        sim = TschSimulator(schedule, flow_set, env, env.channel_map)
        with pytest.raises(ValueError):
            sim.run(0)


class TestDarkNodeObservability:
    """Regression: a dark *sender's* failed attempt updates the stats
    but used to be skipped in the obs tallies (``rep_attempts`` /
    ``link_outcomes``), while a dark *receiver's* failure was counted in
    both — so ``sim.attempts`` drifted from the stats totals exactly when
    dark-node faults were active."""

    @staticmethod
    def _stats_attempts(stats):
        attempts = 0
        for record in stats.repetitions:
            for counters in (record.reuse, record.contention_free):
                for counter in counters.values():
                    attempts += counter.attempts
        return attempts

    @pytest.mark.parametrize("dark_node", [0, 2],
                             ids=["dark_sender", "dark_receiver"])
    def test_obs_attempts_match_stats(self, dark_node):
        from repro.obs import recorder as _obs
        from repro.obs.recorder import Recorder
        from repro.simulator.conditions import Conditions

        flow_set, schedule = tiny_flow_and_schedule()
        env = tiny_environment()
        conditions = Conditions(dark_nodes=frozenset({dark_node}))
        with _obs.recording(Recorder()) as rec:
            stats = TschSimulator(
                schedule, flow_set, env, env.channel_map,
                config=SimulationConfig(seed=11),
                conditions=conditions).run(10)
        expected = self._stats_attempts(stats)
        assert expected > 0  # dark node must not silence the whole run
        assert rec.registry.counter_value("sim.attempts") == expected
