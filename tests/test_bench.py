"""Benchmark harness smoke tests (`python -m repro bench`)."""

from __future__ import annotations

import json

from repro.bench import (
    bench_schedulers,
    check_auto,
    compare_bench,
    format_bench,
    run_bench,
)


class TestBench:
    def test_quick_report_structure(self, tmp_path):
        out = tmp_path / "bench.json"
        report = run_bench(str(out), quick=True, seed=1, repetitions=1)

        on_disk = json.loads(out.read_text())
        assert on_disk["mode"] == "quick"
        assert on_disk["environment"]["cpu_count"] >= 1

        rows = report["schedulers"]
        assert {row["policy"] for row in rows} == {"NR", "RA", "RC"}
        for row in rows:
            assert row["scalar"]["wall_s"] > 0
            assert row["vector"]["wall_s"] > 0
            assert row["speedup"] > 0
            # Scalar and vector do the same work, so the instrumented
            # counters agree between kernels.
            assert row["scalar"]["placements"] == row["vector"]["placements"]
            assert (row["scalar"]["slots_scanned"]
                    == row["vector"]["slots_scanned"])

        remediation = report["remediation"]
        assert len(remediation) == 1 and remediation[0]["num_flows"] == 30
        cell = remediation[0]
        assert cell["repair"]["schedulable"]
        assert cell["repair"]["evicted_cells"] > 0
        assert cell["repair"]["wall_s"] > 0
        assert cell["rebuild"]["wall_s"] > 0
        assert cell["speedup"] > 1.0
        assert report["headline"]["repair_max_speedup"] == cell["speedup"]

        simulator = report["simulator"]
        assert simulator["sim_repetitions"] == 10
        cells = [cell for cell in simulator["cells"] if "slot" in cell]
        assert cells, "quick simulator bench produced no timed cell"
        for cell in cells:
            assert cell["slot"]["wall_s"] > 0
            assert cell["event"]["wall_s"] > 0
            assert cell["batched"]["wall_s"] > 0
            assert cell["batched_speedup"] > 0

        sweep = report["sweep_workers"]
        assert sweep["outcomes_identical"] is True
        assert set(sweep["wall_s_by_workers"]) == {"1", "4"}
        assert report["headline"]["rc_max_speedup"] > 0

        text = format_bench(report)
        assert "RC" in text and "headline" in text
        assert "repair" in text

    def test_compare_gates_remediation_cells(self):
        def fake(repair_s, rebuild_s):
            return {"schedulers": [],
                    "remediation": [{"num_flows": 30, "policy": "RC",
                                     "repair": {"wall_s": repair_s},
                                     "rebuild": {"wall_s": rebuild_s}}]}

        assert compare_bench(fake(0.010, 0.130), fake(0.010, 0.130)) == []
        regressions = compare_bench(fake(0.020, 0.130), fake(0.010, 0.130))
        assert len(regressions) == 1
        assert "remediation@30 [repair]" in regressions[0]

    def test_kernel_divergence_would_abort(self):
        """bench_schedulers compares full schedule signatures; a tiny run
        exercises that cross-check end to end."""
        rows = bench_schedulers((6,), seed=2, repetitions=1)
        assert len(rows) == 3  # one per policy, divergence check passed


def _auto_row(policy="RA", flows=20, scalar=1.0, vector=2.0, auto=1.0):
    return {"num_flows": flows, "policy": policy,
            "scalar": {"wall_s": scalar}, "vector": {"wall_s": vector},
            "auto": {"wall_s": auto}}


class TestCheckAuto:
    def test_passes_within_tolerance(self):
        # 5% over the best fixed kernel, and not losing to scalar.
        check_auto([_auto_row(scalar=2.0, vector=1.0, auto=1.05)],
                   tolerance=0.15)

    def test_violation_lists_the_cell(self):
        import pytest

        rows = [_auto_row(auto=1.0),
                _auto_row(policy="RC", flows=50, scalar=3.0, vector=1.0,
                          auto=2.0)]
        with pytest.raises(AssertionError) as err:
            check_auto(rows, tolerance=0.15)
        message = str(err.value)
        assert "RC@50" in message
        assert "RA@20" not in message

    def test_losing_to_scalar_is_hard_flagged(self):
        """auto > scalar is a mis-resolution even inside the vs-best
        tolerance: pooled auto timings only exceed scalar's when the
        resolution picked a genuinely slower vector path."""
        import pytest

        with pytest.raises(AssertionError) as err:
            check_auto([_auto_row(scalar=1.0, vector=2.0, auto=1.1)],
                       tolerance=0.5)
        assert "auto_speedup" in str(err.value)

    def test_skips_rows_without_all_three_kernels(self):
        # Pre-auto history rows lack the auto cell entirely.
        check_auto([{"num_flows": 20, "policy": "RA",
                     "scalar": {"wall_s": 1.0},
                     "vector": {"wall_s": 2.0}}], tolerance=0.0)

    def test_best_of_one_skips_the_check(self, monkeypatch):
        """bench_schedulers at repetitions=1 must not run check_auto
        (best-of-1 timings cannot support a noise-bounded assertion)."""
        import repro.bench as bench_module

        def boom(rows, tolerance):
            raise AssertionError("check_auto ran at repetitions=1")

        monkeypatch.setattr(bench_module, "check_auto", boom)
        rows = bench_module.bench_schedulers((6,), seed=2, repetitions=1)
        assert all("auto" in row for row in rows)
