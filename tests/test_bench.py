"""Benchmark harness smoke tests (`python -m repro bench`)."""

from __future__ import annotations

import json

from repro.bench import bench_schedulers, format_bench, run_bench


class TestBench:
    def test_quick_report_structure(self, tmp_path):
        out = tmp_path / "bench.json"
        report = run_bench(str(out), quick=True, seed=1, repetitions=1)

        on_disk = json.loads(out.read_text())
        assert on_disk["mode"] == "quick"
        assert on_disk["environment"]["cpu_count"] >= 1

        rows = report["schedulers"]
        assert {row["policy"] for row in rows} == {"NR", "RA", "RC"}
        for row in rows:
            assert row["scalar"]["wall_s"] > 0
            assert row["vector"]["wall_s"] > 0
            assert row["speedup"] > 0
            # Scalar and vector do the same work, so the instrumented
            # counters agree between kernels.
            assert row["scalar"]["placements"] == row["vector"]["placements"]
            assert (row["scalar"]["slots_scanned"]
                    == row["vector"]["slots_scanned"])

        sweep = report["sweep_workers"]
        assert sweep["outcomes_identical"] is True
        assert set(sweep["wall_s_by_workers"]) == {"1", "4"}
        assert report["headline"]["rc_max_speedup"] > 0

        text = format_bench(report)
        assert "RC" in text and "headline" in text

    def test_kernel_divergence_would_abort(self):
        """bench_schedulers compares full schedule signatures; a tiny run
        exercises that cross-check end to end."""
        rows = bench_schedulers((6,), seed=2, repetitions=1)
        assert len(rows) == 3  # one per policy, divergence check passed
