"""Property-based tests (hypothesis) on core data structures and invariants.

The big ones:

* Any schedule the NR / RA / RC engines produce satisfies the paper's
  reuse constraints, precedence, releases, and deadlines — for arbitrary
  random topologies and workloads.
* Our K-S test matches scipy on arbitrary inputs.
* The TSCH hopping formula never double-books a channel.
"""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import assume, given, settings, strategies as st

from repro.core.constraints import validate_schedule
from repro.core.nr import NoReusePolicy
from repro.core.ra import AggressiveReusePolicy
from repro.core.rc import ConservativeReusePolicy
from repro.core.scheduler import FixedPriorityScheduler
from repro.detection.kstest import ks_2samp, ks_statistic
from repro.flows.flow import Flow, FlowSet
from repro.mac.tsch import hop_channel
from repro.network.graphs import (
    ChannelReuseGraph,
    CommunicationGraph,
    all_pairs_hops,
)
from repro.routing.shortest_path import NoRouteError, shortest_path
from repro.routing.traffic import TrafficType, assign_routes

from conftest import build_topology


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def random_connected_topology(draw):
    """A random connected topology with strong and weak links."""
    n = draw(st.integers(min_value=4, max_value=10))
    # Spanning chain keeps it connected; extra random edges add structure.
    strong = {(i, i + 1) for i in range(n - 1)}
    extra = draw(st.sets(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=8))
    weak = set()
    for u, v in extra:
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in strong:
            continue
        if draw(st.booleans()):
            strong.add(edge)
        else:
            weak.add(edge)
    return build_topology(n, sorted(strong), sorted(weak))


@st.composite
def random_workload(draw, topology):
    """Random flows over a topology's communication graph."""
    n = topology.num_nodes
    num_flows = draw(st.integers(min_value=1, max_value=5))
    flows = []
    for flow_id in range(num_flows):
        source = draw(st.integers(0, n - 1))
        destination = draw(st.integers(0, n - 1))
        assume(source != destination)
        period = draw(st.sampled_from([50, 100, 200]))
        deadline = draw(st.integers(period // 2, period))
        flows.append(Flow(flow_id, source, destination, period, deadline))
    return FlowSet(flows)


POLICIES = [
    ("NR", lambda: NoReusePolicy(), math.inf),
    ("RA", lambda: AggressiveReusePolicy(rho_t=2), 2),
    ("RC", lambda: ConservativeReusePolicy(rho_t=2), 2),
]


# ----------------------------------------------------------------------
# Scheduler invariants
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(data=st.data())
@pytest.mark.parametrize("name,policy_factory,rho_floor", POLICIES)
def test_schedules_satisfy_all_invariants(name, policy_factory, rho_floor,
                                          data):
    """Every produced schedule obeys conflicts, channel constraints,
    precedence, releases, and deadlines."""
    topology = data.draw(random_connected_topology())
    flow_set = data.draw(random_workload(topology))
    comm = CommunicationGraph.from_topology(topology, 0.9)
    reuse = ChannelReuseGraph.from_topology(topology)
    try:
        routed = assign_routes(flow_set.deadline_monotonic(), comm,
                               TrafficType.PEER_TO_PEER)
    except NoRouteError:
        assume(False)
    num_offsets = data.draw(st.integers(1, 3))
    scheduler = FixedPriorityScheduler(topology.num_nodes, num_offsets,
                                       reuse, policy_factory())
    result = scheduler.run(routed)
    if not result.schedulable:
        return
    schedule = result.schedule
    schedule.validate_basic()
    if rho_floor != math.inf:
        assert validate_schedule(schedule, reuse, rho_floor) is None
    else:
        for _, _, txs in schedule.occupied_cells():
            assert len(txs) == 1  # NR never shares

    # Precedence, release, and deadline per flow instance.
    by_instance = {}
    for entry in schedule.entries:
        key = (entry.request.flow_id, entry.request.instance)
        by_instance.setdefault(key, []).append(entry)
    flows = {f.flow_id: f for f in routed}
    for (flow_id, instance), entries in by_instance.items():
        flow = flows[flow_id]
        release = instance * flow.period_slots
        deadline = release + flow.deadline_slots - 1
        ordered = sorted(entries,
                         key=lambda e: (e.request.hop_index,
                                        e.request.attempt))
        slots = [e.slot for e in ordered]
        assert slots == sorted(slots)
        assert len(set(slots)) == len(slots)
        assert slots[0] >= release
        assert slots[-1] <= deadline
        assert len(entries) == flow.num_hops * 2


@settings(max_examples=25, deadline=None, derandomize=True)
@given(data=st.data())
def test_rc_never_reuses_more_than_ra(data):
    """On any workload both can schedule, RC shares at most as many cells
    as RA — conservatism as an invariant."""
    topology = data.draw(random_connected_topology())
    flow_set = data.draw(random_workload(topology))
    comm = CommunicationGraph.from_topology(topology, 0.9)
    reuse = ChannelReuseGraph.from_topology(topology)
    try:
        routed = assign_routes(flow_set.deadline_monotonic(), comm,
                               TrafficType.PEER_TO_PEER)
    except NoRouteError:
        assume(False)
    ra = FixedPriorityScheduler(topology.num_nodes, 2, reuse,
                                AggressiveReusePolicy(rho_t=2)).run(routed)
    rc = FixedPriorityScheduler(topology.num_nodes, 2, reuse,
                                ConservativeReusePolicy(rho_t=2)).run(routed)
    assume(ra.schedulable and rc.schedulable)
    assert (rc.schedule.num_reused_cells()
            <= ra.schedule.num_reused_cells())


@settings(max_examples=25, deadline=None, derandomize=True)
@given(data=st.data())
def test_nr_schedulable_implies_reuse_schedulable(data):
    """Reuse only adds options: anything NR schedules, RA and RC do too."""
    topology = data.draw(random_connected_topology())
    flow_set = data.draw(random_workload(topology))
    comm = CommunicationGraph.from_topology(topology, 0.9)
    reuse = ChannelReuseGraph.from_topology(topology)
    try:
        routed = assign_routes(flow_set.deadline_monotonic(), comm,
                               TrafficType.PEER_TO_PEER)
    except NoRouteError:
        assume(False)
    nr = FixedPriorityScheduler(topology.num_nodes, 2, reuse,
                                NoReusePolicy()).run(routed)
    assume(nr.schedulable)
    for policy in (AggressiveReusePolicy(rho_t=2),
                   ConservativeReusePolicy(rho_t=2)):
        result = FixedPriorityScheduler(topology.num_nodes, 2, reuse,
                                        policy).run(routed)
        assert result.schedulable


# ----------------------------------------------------------------------
# Hop counts / graphs
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_hop_matrix_is_metric(data):
    """All-pairs hops: symmetric, zero diagonal, triangle inequality."""
    topology = data.draw(random_connected_topology())
    reuse = ChannelReuseGraph.from_topology(topology)
    hops = reuse.hops
    n = topology.num_nodes
    assert np.array_equal(hops, hops.T)
    assert all(hops[i, i] == 0 for i in range(n))
    for i in range(n):
        for j in range(n):
            for k in range(n):
                if hops[i, j] >= 0 and hops[j, k] >= 0:
                    assert hops[i, k] <= hops[i, j] + hops[j, k]


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_shortest_path_is_shortest(data):
    topology = data.draw(random_connected_topology())
    comm = CommunicationGraph.from_topology(topology, 0.9)
    hops = all_pairs_hops(comm.adjacency)
    n = topology.num_nodes
    source = data.draw(st.integers(0, n - 1))
    destination = data.draw(st.integers(0, n - 1))
    assume(hops[source, destination] >= 0)
    path = shortest_path(comm, source, destination)
    assert len(path) - 1 == hops[source, destination]
    for u, v in zip(path, path[1:]):
        assert comm.has_edge(u, v)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 16))
def test_hopping_no_channel_collision(asn, num_channels):
    """Within a slot, distinct offsets map to distinct channels."""
    channels = [hop_channel(asn, c, num_channels)
                for c in range(num_channels)]
    assert sorted(channels) == list(range(num_channels))


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_hopping_cycles_all_channels(data):
    num_channels = data.draw(st.integers(1, 16))
    offset = data.draw(st.integers(0, num_channels - 1))
    visited = {hop_channel(asn, offset, num_channels)
               for asn in range(num_channels)}
    assert visited == set(range(num_channels))


# ----------------------------------------------------------------------
# K-S test vs scipy
# ----------------------------------------------------------------------

unit_samples = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=2,
    max_size=60)


@settings(max_examples=100, deadline=None)
@given(unit_samples, unit_samples)
def test_ks_statistic_matches_scipy(a, b):
    ours = ks_statistic(a, b)
    theirs = scipy.stats.ks_2samp(a, b).statistic
    assert ours == pytest.approx(theirs, abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=8,
                max_size=60),
       st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=8,
                max_size=60))
def test_ks_pvalue_close_to_scipy_asymptotic(a, b):
    ours = ks_2samp(a, b)
    theirs = scipy.stats.ks_2samp(a, b, method="asymp")
    assert 0.0 <= ours.p_value <= 1.0
    # Small heavily-tied samples (n ~ 8) push both asymptotic
    # approximations outside 0.06 of each other (e.g. ours 0.458 vs
    # scipy 0.520 with the exact p at 0.485 between them).
    assert ours.p_value == pytest.approx(theirs.pvalue, abs=0.08)


@settings(max_examples=60, deadline=None)
@given(unit_samples)
def test_ks_identical_samples_never_reject(a):
    result = ks_2samp(a, a)
    assert result.statistic == 0.0
    assert not result.reject(0.05)


# ----------------------------------------------------------------------
# Laxity
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_laxity_upper_bound(data):
    """Laxity never exceeds window size minus |T_post| and never increases
    when the schedule gains transmissions."""
    from repro.core.laxity import calculate_laxity
    from repro.core.schedule import Schedule
    from repro.core.transmissions import TransmissionRequest

    schedule = Schedule(6, 100, 2)
    slot = data.draw(st.integers(0, 50))
    deadline = data.draw(st.integers(slot, 99))
    remaining = [
        TransmissionRequest(0, 0, h, 0, h % 5, (h % 5) + 1, 0, deadline)
        for h in range(data.draw(st.integers(0, 4)))]
    empty_laxity = calculate_laxity(schedule, slot, deadline, remaining)
    assert empty_laxity == (deadline - slot) - len(remaining)

    # Add some busy slots; laxity can only drop.
    for busy_slot in data.draw(st.sets(st.integers(0, 99), max_size=10)):
        if not (schedule.node_busy(0, busy_slot)
                or schedule.node_busy(1, busy_slot)):
            schedule.add(
                TransmissionRequest(1, 0, 0, 0, 0, 1, 0, 99), busy_slot, 0)
    loaded_laxity = calculate_laxity(schedule, slot, deadline, remaining)
    assert loaded_laxity <= empty_laxity
