"""Tests for the OpenMetrics exposition and its strict parser, plus the
histogram edge cases the exposition must agree with."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.obs.openmetrics import (
    parse_openmetrics,
    render_openmetrics,
    sanitize_name,
)
from repro.obs.timeseries import TimeSeriesStore


class TestSanitizeName:
    def test_dots_and_odd_characters(self):
        assert sanitize_name("scheduler.slots_scanned") \
            == "scheduler_slots_scanned"
        assert sanitize_name("policy.RC.placements") == "policy_RC_placements"
        assert sanitize_name("9starts.with.digit") == "_9starts_with_digit"


class TestRender:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("scheduler.placements", 3)
        registry.set_gauge("manager.rho_t", 2.5)
        registry.observe("hops", 1, buckets=(1, 2, 4))
        registry.observe("hops", 3, buckets=(1, 2, 4))
        registry.observe("hops", 99, buckets=(1, 2, 4))  # overflow bin
        text = render_openmetrics(registry.snapshot())
        assert text.endswith("# EOF\n")

        families = parse_openmetrics(text)
        counter = families["repro_scheduler_placements_total"]
        assert counter["type"] == "counter"
        assert counter["samples"] == [
            ("repro_scheduler_placements_total", {}, 3.0)]
        gauge = families["repro_manager_rho_t"]
        assert gauge["samples"][0][2] == 2.5

        hist = families["repro_hops"]
        assert hist["type"] == "histogram"
        by_le = {s[1]["le"]: s[2] for s in hist["samples"]
                 if s[0] == "repro_hops_bucket"}
        # Cumulative buckets: <=1 holds 1, <=2 still 1, <=4 holds 2,
        # +Inf holds all 3.
        assert by_le == {"1": 1.0, "2": 1.0, "4": 2.0, "+Inf": 3.0}
        flat = {s[0]: s[2] for s in hist["samples"] if not s[1]}
        assert flat["repro_hops_count"] == 3.0
        assert flat["repro_hops_sum"] == pytest.approx(103.0)

    def test_labeled_series_families(self):
        store = TimeSeriesStore()
        store.record("slo.flow.3.pdr", 0, 0.8)
        store.record("slo.flow.3.pdr", 1, 0.9)        # latest wins
        store.record("slo.flow.12.burn_fast", 1, 2.5)
        store.record("channel.14.prr", 1, 0.77)
        store.record("flow.4.pdr", 1, 0.95)
        store.record("manager.median_pdr", 1, 0.91)   # fallback family
        text = render_openmetrics({}, timeseries=store)
        families = parse_openmetrics(text)

        assert families["repro_slo_pdr"]["samples"] == [
            ("repro_slo_pdr", {"flow": "3"}, 0.9)]
        assert families["repro_slo_burn_fast"]["samples"] == [
            ("repro_slo_burn_fast", {"flow": "12"}, 2.5)]
        assert families["repro_channel_prr"]["samples"] == [
            ("repro_channel_prr", {"channel": "14"}, 0.77)]
        assert families["repro_flow_pdr"]["samples"] == [
            ("repro_flow_pdr", {"flow": "4"}, 0.95)]
        assert families["repro_ts_manager_median_pdr"]["samples"] == [
            ("repro_ts_manager_median_pdr", {}, 0.91)]

    def test_series_prefix_becomes_run_label(self):
        store = TimeSeriesStore()
        store.record("reschedule/slo.flow.1.pdr", 0, 0.5)
        store.record("noop/manager.median_pdr", 0, 0.6)
        families = parse_openmetrics(render_openmetrics({},
                                                        timeseries=store))
        assert families["repro_slo_pdr"]["samples"] == [
            ("repro_slo_pdr", {"flow": "1", "run": "reschedule"}, 0.5)]
        assert families["repro_ts_manager_median_pdr"]["samples"] == [
            ("repro_ts_manager_median_pdr", {"run": "noop"}, 0.6)]

    def test_empty_snapshot_renders_bare_eof(self):
        text = render_openmetrics({})
        assert text == "# EOF\n"
        assert parse_openmetrics(text) == {}


class TestServiceFamilies:
    """Cache-lookup counters and request-stage histograms render as
    labeled families and survive the strict parser."""

    def snapshot(self):
        registry = MetricsRegistry()
        registry.inc("service.cache.topology.hit", 5)
        registry.inc("service.cache.topology.miss", 2)
        registry.inc("service.cache.schedule.miss", 4)
        registry.inc("service.repair_fallbacks", 1)
        registry.observe("span.compile.seconds", 0.02,
                         buckets=(0.01, 0.1, 1.0))
        registry.observe("span.shard.queue.seconds", 0.005,
                         buckets=(0.01, 0.1, 1.0))
        return registry.snapshot()

    def test_cache_lookup_counters_are_one_labeled_family(self):
        families = parse_openmetrics(render_openmetrics(self.snapshot()))
        family = families["repro_service_cache_lookups_total"]
        assert family["type"] == "counter"
        by_label = {(labels["kind"], labels["verdict"]): value
                    for _, labels, value in family["samples"]}
        assert by_label == {("topology", "hit"): 5.0,
                            ("topology", "miss"): 2.0,
                            ("schedule", "miss"): 4.0}
        # The raw dotted names must not leak out as their own families.
        assert not any("cache_topology" in name for name in families)

    def test_repair_fallbacks_still_a_plain_counter(self):
        families = parse_openmetrics(render_openmetrics(self.snapshot()))
        assert families["repro_service_repair_fallbacks_total"][
            "samples"] == [
            ("repro_service_repair_fallbacks_total", {}, 1.0)]

    def test_stage_histograms_share_one_family(self):
        families = parse_openmetrics(render_openmetrics(self.snapshot()))
        family = families["repro_stage_seconds"]
        assert family["type"] == "histogram"
        stages = {labels["stage"] for _, labels, _ in family["samples"]
                  if "stage" in labels}
        # Dotted stage names (shard.queue) survive as label values.
        assert stages == {"compile", "shard.queue"}
        counts = {labels["stage"]: value
                  for name, labels, value in family["samples"]
                  if name == "repro_stage_seconds_count"}
        assert counts == {"compile": 1.0, "shard.queue": 1.0}
        buckets = {(labels["stage"], labels["le"]): value
                   for name, labels, value in family["samples"]
                   if name == "repro_stage_seconds_bucket"}
        assert buckets[("compile", "0.1")] == 1.0
        assert buckets[("compile", "0.01")] == 0.0
        assert buckets[("shard.queue", "0.01")] == 1.0
        assert buckets[("shard.queue", "+Inf")] == 1.0

    def test_merged_worker_snapshots_round_trip(self):
        merged = MetricsRegistry.merge_snapshots(
            [self.snapshot(), self.snapshot()])
        families = parse_openmetrics(render_openmetrics(merged))
        by_label = {(labels["kind"], labels["verdict"]): value
                    for _, labels, value
                    in families["repro_service_cache_lookups_total"]
                    ["samples"]}
        assert by_label[("topology", "hit")] == 10.0
        counts = {labels["stage"]: value
                  for name, labels, value
                  in families["repro_stage_seconds"]["samples"]
                  if name == "repro_stage_seconds_count"}
        assert counts == {"compile": 2.0, "shard.queue": 2.0}


class TestStrictParser:
    def test_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="# EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_rejects_early_eof_with_line_number(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_openmetrics("# EOF\nx 1\n# EOF\n")

    def test_rejects_blank_line(self):
        with pytest.raises(ValueError, match="line 2: blank"):
            parse_openmetrics("# TYPE x gauge\n\nx 1\n# EOF\n")

    def test_rejects_sample_outside_family(self):
        with pytest.raises(ValueError, match="outside a TYPE'd family"):
            parse_openmetrics("orphan 1\n# EOF\n")
        with pytest.raises(ValueError, match="outside a TYPE'd family"):
            parse_openmetrics(
                "# TYPE x gauge\nunrelated_name 1\n# EOF\n")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_openmetrics(
                "# TYPE x gauge\nx 1\n# TYPE x gauge\nx 2\n# EOF\n")

    def test_rejects_unknown_type_and_bad_value(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_openmetrics("# TYPE x widget\nx 1\n# EOF\n")
        with pytest.raises(ValueError, match="bad sample value"):
            parse_openmetrics("# TYPE x gauge\nx banana\n# EOF\n")

    def test_rejects_malformed_label(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_openmetrics('# TYPE x gauge\nx{flow=3} 1\n# EOF\n')

    def test_rejects_declared_family_without_samples(self):
        with pytest.raises(ValueError, match="no samples"):
            parse_openmetrics("# TYPE x gauge\n# EOF\n")
        with pytest.raises(ValueError, match="HELP but no TYPE"):
            parse_openmetrics("# HELP x something\n# EOF\n")

    def test_accepts_special_values_and_escaped_labels(self):
        families = parse_openmetrics(
            '# TYPE x gauge\n'
            'x{msg="a\\"b,c"} +Inf\n'
            'x{msg="two"} NaN\n'
            '# EOF\n')
        samples = families["x"]["samples"]
        assert samples[0][1] == {"msg": 'a\\"b,c'}
        assert samples[0][2] == math.inf
        assert math.isnan(samples[1][2])


# ----------------------------------------------------------------------
# Histogram edge cases (satellite: empty render, single-bucket merge,
# snapshot/exposition quantile consistency)
# ----------------------------------------------------------------------

class TestHistogramEdgeCases:
    def test_empty_histogram_renders_and_parses(self):
        registry = MetricsRegistry()
        registry.histogram("never.observed", buckets=(1, 2))
        text = render_openmetrics(registry.snapshot())
        families = parse_openmetrics(text)
        hist = families["repro_never_observed"]
        assert all(s[2] == 0.0 for s in hist["samples"])
        assert registry.histogram("never.observed").quantile(0.5) is None
        assert registry.histogram("never.observed").mean() is None

    def test_single_bucket_merge(self):
        left = Histogram("x", buckets=(5,))
        left.observe(1)
        left.observe(9)  # overflow bin
        right = Histogram("x", buckets=(5,))
        right.observe(4)
        left.merge_dict(right.to_dict())
        assert left.counts == [2, 1]
        assert left.count == 3
        assert left.sum == pytest.approx(14.0)
        assert left.min == 1 and left.max == 9

    def test_single_bucket_merge_rejects_mismatched_bounds(self):
        left = Histogram("x", buckets=(5,))
        right = Histogram("x", buckets=(6,))
        right.observe(1)
        with pytest.raises(ValueError, match="bucket bounds mismatch"):
            left.merge_dict(right.to_dict())
        assert left.count == 0  # untouched by the failed merge

    def test_quantile_from_buckets_validation(self):
        with pytest.raises(ValueError, match="q must be"):
            quantile_from_buckets((1,), (0, 0), 1.5)
        with pytest.raises(ValueError, match="bins"):
            quantile_from_buckets((1, 2), (0, 0), 0.5)
        assert quantile_from_buckets((1, 2), (0, 0, 0), 0.5) is None

    def test_overflow_observations_yield_last_finite_bound(self):
        hist = Histogram("x", buckets=(1, 2))
        hist.observe(50)
        assert hist.quantile(0.99) == 2.0

    def test_quantiles_agree_between_snapshot_and_exposition(self):
        """The JSON snapshot and the OpenMetrics text are two views of
        one histogram; quantiles computed from either must agree."""
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 1.7, 3.0, 3.2, 9.9):
            registry.observe("lat", value, buckets=(1, 2, 4, 8))
        snapshot = registry.snapshot()["histograms"]["lat"]

        families = parse_openmetrics(render_openmetrics(
            registry.snapshot()))
        buckets = [s for s in families["repro_lat"]["samples"]
                   if s[0] == "repro_lat_bucket"]
        finite = [(float(s[1]["le"]), s[2]) for s in buckets
                  if s[1]["le"] != "+Inf"]
        finite.sort()
        bounds = [b for b, _ in finite]
        # De-cumulate the exposition's bucket counts back to bins.
        cumulative = [c for _, c in finite]
        total = next(s[2] for s in families["repro_lat"]["samples"]
                     if s[0] == "repro_lat_count")
        bins = [int(c - p) for c, p in
                zip(cumulative, [0.0] + cumulative[:-1])]
        bins.append(int(total - cumulative[-1]))

        assert bounds == snapshot["buckets"]
        assert bins == snapshot["counts"]
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert quantile_from_buckets(bounds, bins, q) \
                == quantile_from_buckets(snapshot["buckets"],
                                         snapshot["counts"], q) \
                == registry.histogram("lat").quantile(q)
