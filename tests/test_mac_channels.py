"""Tests for repro.mac.channels."""

import pytest

from repro.mac.channels import (
    Blacklist,
    ChannelMap,
    MAX_CHANNEL,
    MIN_CHANNEL,
    NUM_CHANNELS_24GHZ,
    channel_center_frequency_mhz,
    channels_overlapping_wifi,
    wifi_center_frequency_mhz,
)


class TestChannelFrequencies:
    def test_channel_11_center(self):
        assert channel_center_frequency_mhz(11) == 2405.0

    def test_channel_26_center(self):
        assert channel_center_frequency_mhz(26) == 2480.0

    def test_spacing_is_5mhz(self):
        assert (channel_center_frequency_mhz(12)
                - channel_center_frequency_mhz(11)) == 5.0

    @pytest.mark.parametrize("bad", [10, 27, 0, -1])
    def test_out_of_band_rejected(self, bad):
        with pytest.raises(ValueError):
            channel_center_frequency_mhz(bad)

    def test_wifi_channel_1_center(self):
        assert wifi_center_frequency_mhz(1) == 2412.0

    def test_wifi_channel_out_of_range(self):
        with pytest.raises(ValueError):
            wifi_center_frequency_mhz(14)


class TestWifiOverlap:
    def test_wifi_1_overlaps_802154_11_to_14(self):
        """The paper's setup: WiFi channel 1 covers 802.15.4 channels 11-14."""
        assert channels_overlapping_wifi(1) == [11, 12, 13, 14]

    def test_wifi_6_overlaps_middle_channels(self):
        overlapping = channels_overlapping_wifi(6)
        assert 16 in overlapping and 19 in overlapping
        assert 11 not in overlapping

    def test_narrow_wifi_overlaps_fewer(self):
        narrow = channels_overlapping_wifi(1, wifi_bandwidth_mhz=10.0)
        assert set(narrow) <= set(channels_overlapping_wifi(1))


class TestChannelMap:
    def test_first_n(self):
        cmap = ChannelMap.first_n(4)
        assert list(cmap) == [11, 12, 13, 14]
        assert len(cmap) == 4

    def test_all_channels(self):
        cmap = ChannelMap.all_channels()
        assert len(cmap) == NUM_CHANNELS_24GHZ
        assert list(cmap)[0] == MIN_CHANNEL
        assert list(cmap)[-1] == MAX_CHANNEL

    def test_physical_logical_roundtrip(self):
        cmap = ChannelMap((15, 11, 20))
        for logical, physical in enumerate((15, 11, 20)):
            assert cmap.physical(logical) == physical
            assert cmap.logical(physical) == logical

    def test_contains(self):
        cmap = ChannelMap.first_n(3)
        assert 12 in cmap
        assert 20 not in cmap

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChannelMap(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ChannelMap((11, 11))

    def test_out_of_band_rejected(self):
        with pytest.raises(ValueError):
            ChannelMap((10,))

    def test_logical_out_of_range(self):
        with pytest.raises(ValueError):
            ChannelMap.first_n(3).physical(3)

    def test_unknown_physical(self):
        with pytest.raises(ValueError):
            ChannelMap.first_n(3).logical(26)

    def test_from_blacklist(self):
        cmap = ChannelMap.from_blacklist([11, 26])
        assert 11 not in cmap
        assert 26 not in cmap
        assert len(cmap) == 14

    def test_blacklist_everything_rejected(self):
        with pytest.raises(ValueError):
            ChannelMap.from_blacklist(range(MIN_CHANNEL, MAX_CHANNEL + 1))

    def test_index_map(self):
        cmap = ChannelMap.first_n(3)
        assert cmap.index_map() == {11: 0, 12: 1, 13: 2}

    def test_first_n_bounds(self):
        with pytest.raises(ValueError):
            ChannelMap.first_n(0)
        with pytest.raises(ValueError):
            ChannelMap.first_n(17)


class TestBlacklist:
    def test_quiet_channels_not_blacklisted(self):
        blacklist = Blacklist(noise_threshold_dbm=-85.0)
        blacklist.observe(11, -95.0)
        assert blacklist.blacklisted() == []

    def test_noisy_channel_blacklisted(self):
        blacklist = Blacklist(noise_threshold_dbm=-85.0)
        blacklist.observe(11, -70.0)
        blacklist.observe(12, -95.0)
        assert blacklist.blacklisted() == [11]

    def test_observe_keeps_running_max(self):
        blacklist = Blacklist(noise_threshold_dbm=-85.0)
        blacklist.observe(11, -95.0)
        blacklist.observe(11, -60.0)
        blacklist.observe(11, -95.0)
        assert blacklist.blacklisted() == [11]

    def test_usable_map_excludes_blacklisted(self):
        blacklist = Blacklist(noise_threshold_dbm=-85.0)
        blacklist.observe(13, -60.0)
        usable = blacklist.usable_map()
        assert 13 not in usable
        assert len(usable) == 15
