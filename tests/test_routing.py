"""Tests for repro.routing (shortest paths + traffic patterns)."""

import numpy as np
import pytest

from repro.flows.flow import Flow, FlowSet
from repro.network.graphs import CommunicationGraph
from repro.routing.shortest_path import (
    NoRouteError,
    path_length,
    shortest_path,
    shortest_path_tree,
)
from repro.routing.traffic import (
    TrafficType,
    assign_routes,
    route_centralized,
    route_peer_to_peer,
)

from conftest import build_topology


@pytest.fixture
def grid_graph(grid_topology):
    return CommunicationGraph.from_topology(grid_topology, 0.9)


class TestShortestPath:
    def test_direct_neighbor(self, grid_graph):
        assert shortest_path(grid_graph, 0, 1) == [0, 1]

    def test_corner_to_corner_length(self, grid_graph):
        path = shortest_path(grid_graph, 0, 8)
        assert path_length(path) == 4

    def test_deterministic_tie_break(self, grid_graph):
        """Among equal-length paths, the smallest-id parents win."""
        assert shortest_path(grid_graph, 0, 8) == shortest_path(grid_graph, 0, 8)
        assert shortest_path(grid_graph, 0, 4) == [0, 1, 4]

    def test_self_path(self, grid_graph):
        assert shortest_path(grid_graph, 3, 3) == [3]

    def test_no_route_raises(self):
        topo = build_topology(4, [(0, 1), (2, 3)])
        graph = CommunicationGraph.from_topology(topo, 0.9)
        with pytest.raises(NoRouteError):
            shortest_path(graph, 0, 3)

    def test_out_of_range(self, grid_graph):
        with pytest.raises(ValueError):
            shortest_path(grid_graph, 0, 99)

    def test_tree_contains_all_reachable(self, grid_graph):
        tree = shortest_path_tree(grid_graph, 0)
        assert set(tree) == set(range(9))
        assert tree[8] == shortest_path(grid_graph, 0, 8)

    def test_tree_paths_start_at_root(self, grid_graph):
        tree = shortest_path_tree(grid_graph, 4)
        for node, path in tree.items():
            assert path[0] == 4
            assert path[-1] == node


class TestPeerToPeerRouting:
    def test_route_assigned(self, grid_graph):
        f = Flow(0, 0, 8, 100, 100)
        routed = route_peer_to_peer(grid_graph, f)
        assert routed.route[0] == 0
        assert routed.route[-1] == 8
        assert routed.num_hops == 4


class TestCentralizedRouting:
    def test_route_passes_through_ap(self, grid_graph):
        f = Flow(0, 0, 8, 100, 100)
        routed = route_centralized(grid_graph, f, access_points=[4])
        assert 4 in routed.route
        # 0→4 uplink (2 hops) + 4→8 downlink (2 hops)
        assert routed.num_hops == 4

    def test_uplink_and_downlink_may_use_different_aps(self, grid_graph):
        f = Flow(0, 0, 8, 100, 100)
        routed = route_centralized(grid_graph, f, access_points=[1, 7])
        # Best uplink AP for node 0 is 1; best downlink AP for 8 is 7.
        assert routed.route[:2] == (0, 1)
        assert routed.route[-2:] == (7, 8)
        # The 1→7 wire hop costs nothing: only 2 wireless links.
        assert routed.num_hops == 2

    def test_same_ap_wire_handoff_collapsed(self, grid_graph):
        f = Flow(0, 3, 5, 100, 100)
        routed = route_centralized(grid_graph, f, access_points=[4])
        # Route is 3→4 (uplink), then 4→5 (downlink); 4 appears twice in
        # the node sequence but yields exactly two wireless links.
        assert routed.links == ((3, 4), (4, 5))

    def test_requires_access_points(self, grid_graph):
        with pytest.raises(ValueError):
            route_centralized(grid_graph, Flow(0, 0, 8, 100, 100), [])

    def test_unreachable_ap_raises(self):
        topo = build_topology(4, [(0, 1), (2, 3)])
        graph = CommunicationGraph.from_topology(topo, 0.9)
        with pytest.raises(NoRouteError):
            route_centralized(graph, Flow(0, 0, 1, 100, 100),
                              access_points=[3])

    def test_centralized_longer_than_p2p(self, grid_graph):
        """Centralized routes detour through the AP (paper: ~2x length)."""
        f = Flow(0, 3, 5, 100, 100)
        p2p = route_peer_to_peer(grid_graph, f)
        central = route_centralized(grid_graph, f, access_points=[7])
        assert central.num_hops >= p2p.num_hops


class TestAssignRoutes:
    def test_assign_preserves_order(self, grid_graph):
        fs = FlowSet([Flow(2, 0, 8, 100, 100), Flow(1, 6, 2, 100, 100)])
        routed = assign_routes(fs, grid_graph, TrafficType.PEER_TO_PEER)
        assert [f.flow_id for f in routed] == [2, 1]
        assert routed.all_routed()

    def test_assign_centralized(self, grid_graph):
        fs = FlowSet([Flow(0, 0, 8, 100, 100)])
        routed = assign_routes(fs, grid_graph, TrafficType.CENTRALIZED,
                               access_points=[4])
        assert 4 in routed[0].route
