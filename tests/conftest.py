"""Shared fixtures: small hand-built topologies and testbed caches.

The hand-built topologies give tests precise control over graph structure
(which links exist, hop distances, PRR values); the session-scoped
testbeds avoid re-synthesizing 80-node environments in every test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mac.channels import ChannelMap
from repro.network.node import Node, NodeRole, Position
from repro.network.topology import Topology


def build_topology(num_nodes, good_links, weak_links=(), num_channels=2,
                   good_prr=0.99, weak_prr=0.3, name="test"):
    """Build a topology from explicit link lists.

    Args:
        num_nodes: Node count (dense ids 0..n-1).
        good_links: Iterable of (u, v) pairs given PRR ``good_prr`` in both
            directions on every channel (communication-graph edges at the
            0.9 threshold).
        weak_links: Pairs given PRR ``weak_prr`` (reuse-graph-only edges).
        num_channels: Channels in the map (starting at 11).
        good_prr / weak_prr: PRR values to assign.
        name: Topology label.
    """
    channel_map = ChannelMap.first_n(num_channels)
    prr = np.zeros((num_nodes, num_nodes, num_channels))
    for u, v in good_links:
        prr[u, v, :] = good_prr
        prr[v, u, :] = good_prr
    for u, v in weak_links:
        prr[u, v, :] = weak_prr
        prr[v, u, :] = weak_prr
    nodes = [Node(i, NodeRole.FIELD_DEVICE, Position(float(i), 0.0))
             for i in range(num_nodes)]
    return Topology(nodes=nodes, channel_map=channel_map, prr=prr, name=name)


@pytest.fixture
def line_topology():
    """Six nodes in a line: 0-1-2-3-4-5 (strong links only).

    Communication graph = reuse graph = the line, so hop distances are
    exactly the node-index differences.
    """
    links = [(i, i + 1) for i in range(5)]
    return build_topology(6, links)


@pytest.fixture
def line_with_weak_links():
    """A 6-node line plus weak (reuse-only) shortcuts 0-2, 3-5."""
    links = [(i, i + 1) for i in range(5)]
    return build_topology(6, links, weak_links=[(0, 2), (3, 5)])


@pytest.fixture
def grid_topology():
    """A 3x3 strong grid (node r*3+c), giving route diversity."""
    links = []
    for r in range(3):
        for c in range(3):
            if c < 2:
                links.append((r * 3 + c, r * 3 + c + 1))
            if r < 2:
                links.append((r * 3 + c, (r + 1) * 3 + c))
    return build_topology(9, links)


@pytest.fixture(scope="session")
def indriya():
    """The Indriya-like testbed (session-cached)."""
    from repro.testbeds import make_indriya

    return make_indriya()


@pytest.fixture(scope="session")
def wustl():
    """The WUSTL-like testbed (session-cached)."""
    from repro.testbeds import make_wustl

    return make_wustl()


@pytest.fixture(scope="session")
def topology_builder():
    """The :func:`build_topology` helper, for per-test custom graphs."""
    return build_topology
