"""Process-parallel experiment runners: determinism and metric merging.

The contract of :mod:`repro.experiments.parallel` is that the worker
count is invisible in the results: ``workers=N`` returns exactly the
outcome list of ``workers=1`` (same values, same order), and the merged
metrics counters for deterministic quantities (placements, slots
scanned) are identical too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.experiments.parallel import (
    parallel_map,
    resolve_workers,
    trial_network,
)
from repro.experiments.reliability import run_reliability
from repro.experiments.schedulability import run_sweep
from repro.routing.traffic import TrafficType


def _echo_trial(context, task):
    return (context["base"], task)


class TestParallelMap:
    def test_serial_preserves_order(self):
        results = parallel_map(_echo_trial, [3, 1, 2], workers=1,
                               context={"base": 10})
        assert results == [(10, 3), (10, 1), (10, 2)]

    def test_pool_preserves_order(self):
        results = parallel_map(_echo_trial, list(range(7)), workers=3,
                               context={"base": 1})
        assert results == [(1, task) for task in range(7)]

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(-2) == 1
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1

    def test_trial_network_caches_per_context(self, indriya):
        topology, _ = indriya
        context = {"topology": topology}
        first = trial_network(context, num_channels=4)
        assert trial_network(context, num_channels=4) is first
        assert trial_network(context, num_channels=5) is not first


def _sweep(topology, workers, record=False):
    snapshot = None
    if record:
        with obs.recording() as recorder:
            result = run_sweep(
                topology, TrafficType.CENTRALIZED, "channels", [4, 5],
                fixed_flows=12, num_flow_sets=3, seed=11, workers=workers)
        snapshot = recorder.snapshot()
    else:
        result = run_sweep(
            topology, TrafficType.CENTRALIZED, "channels", [4, 5],
            fixed_flows=12, num_flow_sets=3, seed=11, workers=workers)
    outcomes = [(o.x, o.set_index, o.policy, o.schedulable, o.tx_hist,
                 o.hop_hist) for o in result.outcomes]
    return outcomes, snapshot


class TestSweepDeterminism:
    def test_workers4_equals_workers1(self, indriya):
        topology, _ = indriya
        serial, _ = _sweep(topology, workers=1)
        fanned, _ = _sweep(topology, workers=4)
        assert fanned == serial

    def test_merged_counters_match_serial(self, indriya):
        """Deterministic work counters aggregate identically: each trial
        ships its worker-local snapshot home and the parent merges."""
        topology, _ = indriya
        serial, snap1 = _sweep(topology, workers=1, record=True)
        fanned, snap4 = _sweep(topology, workers=4, record=True)
        assert fanned == serial

        def deterministic(snapshot):
            return {name: value
                    for name, value in snapshot["counters"].items()
                    if name.startswith(("scheduler.", "policy.", "rc."))}

        counters1 = deterministic(snap1)
        assert counters1  # obs was on: the runs were instrumented
        assert deterministic(snap4) == counters1


class TestReliabilityDeterminism:
    def test_workers2_equals_workers1(self, wustl):
        topology, environment = wustl
        kwargs = dict(num_flow_sets=2, repetitions=4, seed=3)
        serial = run_reliability(topology, environment, workers=1, **kwargs)
        fanned = run_reliability(topology, environment, workers=2, **kwargs)
        key = [(o.set_index, o.policy, o.schedulable, o.median_pdr,
                o.worst_pdr, o.tx_hist) for o in serial]
        assert [(o.set_index, o.policy, o.schedulable, o.median_pdr,
                 o.worst_pdr, o.tx_hist) for o in fanned] == key
