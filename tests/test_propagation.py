"""Tests for repro.propagation (path loss + PRR model)."""

import math

import numpy as np
import pytest

from repro.propagation.pathloss import (
    LogDistancePathLoss,
    dbm_to_mw,
    mw_to_dbm,
    sinr_db,
)
from repro.propagation.prr_model import (
    PrrCurve,
    bit_error_rate,
    frame_success_probability,
    get_prr_curve,
    prr,
    prr_curve,
    sinr_for_prr,
)


class TestPathLoss:
    def test_reference_distance_loss(self):
        model = LogDistancePathLoss(pl_d0_db=40.0, exponent=3.0)
        assert model.path_loss_db(1.0) == 40.0

    def test_decade_adds_10n_db(self):
        model = LogDistancePathLoss(pl_d0_db=40.0, exponent=3.0)
        assert model.path_loss_db(10.0) == pytest.approx(70.0)

    def test_below_reference_clamped(self):
        model = LogDistancePathLoss(pl_d0_db=40.0)
        assert model.path_loss_db(0.1) == 40.0

    def test_floor_attenuation(self):
        model = LogDistancePathLoss(pl_d0_db=40.0, floor_attenuation_db=15.0)
        no_floor = model.path_loss_db(5.0, floors_crossed=0)
        two_floors = model.path_loss_db(5.0, floors_crossed=2)
        assert two_floors - no_floor == pytest.approx(30.0)

    def test_shadowing_term_added(self):
        model = LogDistancePathLoss(pl_d0_db=40.0)
        assert (model.path_loss_db(5.0, shadowing_db=4.0)
                - model.path_loss_db(5.0)) == pytest.approx(4.0)

    def test_received_power(self):
        model = LogDistancePathLoss(pl_d0_db=40.0, exponent=2.0)
        assert model.received_power_dbm(0.0, 10.0) == pytest.approx(-60.0)

    def test_monotone_in_distance(self):
        model = LogDistancePathLoss()
        losses = [model.path_loss_db(d) for d in (1, 5, 20, 80)]
        assert losses == sorted(losses)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss().path_loss_db(-1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(reference_distance_m=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(shadowing_sigma_db=-1.0)

    def test_draw_shadowing_shape(self):
        model = LogDistancePathLoss(shadowing_sigma_db=4.0)
        draws = model.draw_shadowing(np.random.default_rng(0), (100,))
        assert draws.shape == (100,)
        assert abs(float(np.std(draws)) - 4.0) < 1.0


class TestPowerConversion:
    def test_dbm_mw_roundtrip(self):
        assert float(mw_to_dbm(dbm_to_mw(-37.0))) == pytest.approx(-37.0)

    def test_zero_dbm_is_one_mw(self):
        assert float(dbm_to_mw(0.0)) == pytest.approx(1.0)

    def test_zero_mw_is_minus_inf(self):
        assert float(mw_to_dbm(0.0)) == -math.inf


class TestSinr:
    def test_no_interference_equals_snr(self):
        assert sinr_db(-90.0, -98.0) == pytest.approx(8.0)

    def test_interference_adds_linearly(self):
        """Equal-power interference at noise level costs 3 dB."""
        clean = sinr_db(-90.0, -98.0)
        with_equal_interferer = sinr_db(-90.0, -98.0, [-98.0])
        assert clean - with_equal_interferer == pytest.approx(3.01, abs=0.02)

    def test_cumulative_interference(self):
        """More concurrent interferers lower SINR monotonically (paper IV-C)."""
        values = [sinr_db(-90.0, -98.0, [-100.0] * k) for k in range(4)]
        assert values == sorted(values, reverse=True)


class TestPrrModel:
    def test_ber_decreases_with_sinr(self):
        assert bit_error_rate(-5.0) > bit_error_rate(0.0) > bit_error_rate(5.0)

    def test_ber_bounds(self):
        assert 0.0 <= bit_error_rate(-30.0) <= 1.0
        assert bit_error_rate(10.0) < 1e-9

    def test_frame_success_monotone_in_size(self):
        assert (frame_success_probability(0.0, 20)
                > frame_success_probability(0.0, 120))

    def test_prr_high_at_high_sinr(self):
        assert prr(10.0) > 0.9999

    def test_prr_low_at_low_sinr(self):
        assert prr(-10.0) < 1e-6

    def test_prr_monotone(self):
        grid = np.linspace(-10, 10, 81)
        values = prr_curve(grid)
        assert np.all(np.diff(values) >= -1e-12)

    def test_ack_reduces_prr(self):
        assert prr(0.0, include_ack=True) <= prr(0.0, include_ack=False)

    def test_invalid_frame_size(self):
        with pytest.raises(ValueError):
            frame_success_probability(0.0, 0)

    def test_sinr_for_prr_inverts(self):
        sinr = sinr_for_prr(0.9)
        assert prr(sinr) == pytest.approx(0.9, abs=1e-3)

    def test_sinr_for_prr_bad_target(self):
        with pytest.raises(ValueError):
            sinr_for_prr(1.0)


class TestPrrCurve:
    def test_raw_curve_matches_analytic(self):
        curve = PrrCurve(smoothing_sigma_db=0.0)
        for sinr in (-5.0, 0.0, 3.0, 8.0):
            assert curve(sinr) == pytest.approx(prr(sinr), abs=1e-3)

    def test_smoothing_widens_transition(self):
        """Smoothing is the grey-region model: the 10%-90% span grows."""
        raw = PrrCurve(smoothing_sigma_db=0.0)
        smooth = PrrCurve(smoothing_sigma_db=3.0)
        raw_span = raw.inverse(0.9) - raw.inverse(0.1)
        smooth_span = smooth.inverse(0.9) - smooth.inverse(0.1)
        assert smooth_span > 2 * raw_span

    def test_smoothed_still_monotone(self):
        curve = PrrCurve(smoothing_sigma_db=3.6)
        grid = np.linspace(-20, 20, 401)
        values = curve.many(grid)
        assert np.all(np.diff(values) >= -1e-9)

    def test_extremes_clamped(self):
        curve = PrrCurve(smoothing_sigma_db=2.0)
        assert curve(-100.0) == pytest.approx(0.0, abs=1e-6)
        assert curve(100.0) == pytest.approx(1.0, abs=1e-3)

    def test_smoothing_is_expectation_over_fading(self):
        """E[raw(s + X)], X~N(0,σ) ≈ smoothed(s) — the simulator contract."""
        sigma = 3.0
        raw = PrrCurve(smoothing_sigma_db=0.0)
        smooth = PrrCurve(smoothing_sigma_db=sigma)
        rng = np.random.default_rng(1)
        for s in (0.0, 3.0, 6.0):
            draws = raw.many(s + rng.normal(0.0, sigma, 20000))
            assert float(draws.mean()) == pytest.approx(smooth(s), abs=0.01)

    def test_many_matches_scalar(self):
        curve = get_prr_curve(60, 3.6)
        grid = np.array([-3.0, 0.0, 4.0])
        assert np.allclose(curve.many(grid), [curve(x) for x in grid])

    def test_cache_returns_same_instance(self):
        assert get_prr_curve(60, 3.6) is get_prr_curve(60, 3.6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PrrCurve(smoothing_sigma_db=-1.0)
        with pytest.raises(ValueError):
            PrrCurve(lo_db=5.0, hi_db=-5.0)

    def test_inverse_round_trip(self):
        curve = PrrCurve(smoothing_sigma_db=3.6)
        assert curve(curve.inverse(0.9)) == pytest.approx(0.9, abs=0.01)
