"""Tests for the `repro top` ASCII observatory (repro.obs.top)."""

from __future__ import annotations

from repro.obs.slo import SloConfig
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.top import SPARK_ASCII, SPARK_CHARS, bar, render_top, sparkline


class TestSparkline:
    def test_empty_and_flat(self):
        assert sparkline([]) == ""
        flat = sparkline([0.5, 0.5, 0.5])
        assert flat == SPARK_CHARS[len(SPARK_CHARS) // 2] * 3

    def test_shape_is_min_max_normalized(self):
        ramp = sparkline([0.0, 1.0])
        assert ramp == SPARK_CHARS[0] + SPARK_CHARS[-1]
        # Absolute levels don't matter, only shape.
        assert sparkline([100.0, 101.0]) == ramp

    def test_window_keeps_the_tail(self):
        values = list(range(100))
        assert len(sparkline(values, width=10)) == 10
        # The tail of an increasing series ends at the top of the ramp.
        assert sparkline(values, width=10)[-1] == SPARK_CHARS[-1]

    def test_ascii_fallback(self):
        out = sparkline([0.0, 1.0], ascii_only=True)
        assert out == SPARK_ASCII[0] + SPARK_ASCII[-1]
        assert all(ord(c) < 128 for c in out)


class TestBar:
    def test_full_empty_and_clamped(self):
        assert bar(1.0, width=4) == "[████]"
        assert bar(0.0, width=4) == "[░░░░]"
        assert bar(2.0, width=4) == bar(1.0, width=4)
        assert bar(-1.0, width=4) == bar(0.0, width=4)

    def test_ascii_fallback(self):
        assert bar(0.5, width=4, ascii_only=True) == "[##--]"


def storm_store():
    """A synthetic store shaped like a short managed run."""
    store = TimeSeriesStore()
    for epoch in range(6):
        pdr = 0.95 if epoch < 3 else 0.55
        store.record("manager.median_pdr", epoch, pdr)
        store.record("manager.worst_pdr", epoch, pdr - 0.2)
        store.record("manager.actions", epoch, 1.0 if epoch == 4 else 0.0)
        store.record("manager.slo_alerting", epoch,
                     2.0 if epoch >= 3 else 0.0)
        store.record("channel.11.prr", epoch, pdr)
        store.record("channel.15.prr", epoch, 0.99)
        # Flow 1 dies in the storm, flow 2 stays healthy.
        bad = epoch >= 3
        store.record("slo.flow.1.pdr", epoch, 0.4 if bad else 1.0)
        store.record("slo.flow.1.burn_fast", epoch, 4.0 if bad else 0.0)
        store.record("slo.flow.1.burn_slow", epoch, 3.0 if bad else 0.0)
        store.record("slo.flow.2.pdr", epoch, 1.0)
        store.record("slo.flow.2.burn_fast", epoch, 0.0)
        store.record("slo.flow.2.burn_slow", epoch, 0.0)
    return store


class TestRenderTop:
    def test_empty_store_renders_no_data_panels(self):
        out = render_top(TimeSeriesStore())
        assert "repro top" in out
        assert "series: 0" in out
        assert out.count("(no data)") >= 3  # manager, channels, health

    def test_full_dashboard(self):
        out = render_top(storm_store(), snapshot={
            "counters": {"slo.alerts": 2, "manager.epochs": 6}},
            source="ts.jsonl")
        assert "source: ts.jsonl" in out
        assert "median PDR  0.550" in out
        assert "(epoch 5)" in out
        # Alerting flow sorts first and is marked; healthy flow is ok.
        flow_lines = [l for l in out.splitlines()
                      if l.strip().startswith(("1 ", "2 "))]
        assert "ALERT!" in flow_lines[0] and flow_lines[0].strip(
            ).startswith("1")
        assert "ok" in flow_lines[1]
        assert "totals: 1 alert, 0 warn, 1 ok" in out
        assert "ch 11" in out and "ch 15" in out
        assert "slo alerts" in out
        assert "manager epochs" in out

    def test_burn_threshold_rederives_state(self):
        # With a sky-high threshold nothing alerts; with a low one the
        # healthy flow still doesn't (its burn is exactly 0).
        relaxed = render_top(storm_store(),
                             slo_config=SloConfig(burn_threshold=100.0))
        assert "ALERT!" not in relaxed
        assert "totals: 0 alert, 0 warn, 2 ok" in relaxed

    def test_warn_state_needs_only_the_fast_window(self):
        store = TimeSeriesStore()
        store.record("slo.flow.7.pdr", 0, 0.8)
        store.record("slo.flow.7.burn_fast", 0, 5.0)
        store.record("slo.flow.7.burn_slow", 0, 0.5)
        out = render_top(store)
        assert "WARN" in out
        assert "ALERT!" not in out

    def test_max_flows_summarizes_hidden_rows(self):
        store = TimeSeriesStore()
        for flow in range(5):
            store.record(f"slo.flow.{flow}.pdr", 0, 1.0)
            store.record(f"slo.flow.{flow}.burn_fast", 0,
                         3.0 if flow == 4 else 0.0)
            store.record(f"slo.flow.{flow}.burn_slow", 0,
                         3.0 if flow == 4 else 0.0)
        out = render_top(store, max_flows=2)
        assert "… 3 more flows (0 warn/alert) not shown" in out
        # The alerting flow made the cut ahead of healthy lower ids.
        assert "ALERT!" in out

    def test_ascii_only_renders_pure_ascii(self):
        out = render_top(storm_store(), ascii_only=True,
                         snapshot={"counters": {"slo.alerts": 2}})
        body = out.replace("─", "-").replace("…", "...")
        assert all(ord(c) < 128 for c in body)
