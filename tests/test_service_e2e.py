"""End-to-end tests: a real ``repro serve`` process over a unix socket.

Starts the service as a subprocess, drives it with a blocking NDJSON
client and with the ``repro loadgen`` CLI, and checks the acceptance
properties: zero errors on a mixed workload, responses bit-identical to
direct library calls (shadow executor), reschedules served by the
repair path, OpenMetrics exposition parsing strictly, ledger batch
records intact, and a clean SIGTERM shutdown.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.ledger import RunLedger
from repro.obs.openmetrics import parse_openmetrics
from repro.service.executor import ServiceExecutor
from repro.service.loadgen import LoadgenOptions, build_plan
from repro.service.protocol import parse_request

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Loadgen plan with reused cells and (empirically) zero repair
#: fallbacks — the "clean workload" of the acceptance criteria.
PLAN_KW = dict(requests=60, networks=8, flows=30, seed=5)


class NdjsonClient:
    """Minimal blocking line-oriented client for tests."""

    def __init__(self, path: str, timeout: float = 120.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.file = self.sock.makefile("rwb")

    def request(self, payload: dict) -> dict:
        self.file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self.file.flush()
        line = self.file.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    def send_raw(self, data: bytes) -> dict:
        self.file.write(data)
        self.file.flush()
        return json.loads(self.file.readline())

    def close(self) -> None:
        try:
            self.file.close()
            self.sock.close()
        except OSError:
            pass


@pytest.fixture()
def service(tmp_path):
    """A running 2-worker service on a tmp unix socket."""
    socket_path = str(tmp_path / "serve.sock")
    ledger_path = str(tmp_path / "runs.jsonl")
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", socket_path,
         "--service-workers", "2",
         "--batch-size", "10",
         "--ledger", ledger_path],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.time() + 60
    while not os.path.exists(socket_path):
        if process.poll() is not None:
            raise AssertionError(
                f"serve exited early:\n{process.stdout.read()}")
        if time.time() > deadline:
            process.kill()
            raise AssertionError("serve did not open its socket")
        time.sleep(0.05)
    yield {"socket": socket_path, "ledger": ledger_path,
           "process": process}
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def drive_plan(client: NdjsonClient, plan):
    """Run a loadgen plan serially; returns the responses in order."""
    return [client.request(payload) for payload in plan]


class TestServeEndToEnd:
    def test_mixed_workload_bit_identical(self, service):
        plan = build_plan(LoadgenOptions(**PLAN_KW))
        client = NdjsonClient(service["socket"])
        try:
            responses = drive_plan(client, plan)
            status = client.request({"id": "st", "verb": "status"})
        finally:
            client.close()

        assert all(response["ok"] for response in responses)
        # Bit-identity: replay the same stream on a shadow executor.
        shadow = ServiceExecutor()
        modes = {"repair": 0, "noop": 0, "rebuild": 0}
        for payload, response in zip(plan, responses):
            expected = shadow.handle(parse_request(dict(payload)))
            assert expected["schedule_hash"] == \
                response["result"]["schedule_hash"], payload
            mode = response["result"].get("repair_mode")
            if mode:
                modes[mode] += 1
        # The clean workload is served by the repair path, never the
        # rebuild fallback.
        assert modes["repair"] > 0
        assert modes["rebuild"] == 0

        result = status["result"]
        assert result["workers"] == 2
        assert result["workers_alive"] == 2
        assert result["repair_fallbacks"] == 0
        assert result["networks"] == PLAN_KW["networks"]
        total = sum(result["requests"].values())
        assert total == len(plan)
        cache = result["cache"]
        assert cache["hit_total"] + cache["miss_total"] == 3 * sum(
            1 for p in plan if p["verb"] == "schedule")

    def test_warm_cache_faster_than_cold(self, service):
        config = {"testbed": "indriya", "seed": 3, "flows": 20}
        client = NdjsonClient(service["socket"])
        try:
            cold = client.request({"id": 0, "verb": "schedule",
                                   "network": "warmth",
                                   "config": config})
            warm = client.request({"id": 1, "verb": "schedule",
                                   "network": "warmth",
                                   "config": config})
        finally:
            client.close()
        assert cold["result"]["cache"]["schedule"] == "miss"
        assert warm["result"]["cache"]["schedule"] == "hit"
        assert warm["result"]["schedule_hash"] == \
            cold["result"]["schedule_hash"]
        # Generous margin: a warm hit skips topology + workload +
        # scheduling entirely, so 2x is conservative even on CI.
        assert warm["result"]["elapsed_ms"] < \
            cold["result"]["elapsed_ms"] / 2

    def test_sharding_pins_network_to_one_worker(self, service):
        client = NdjsonClient(service["socket"])
        try:
            workers = {
                name: client.request(
                    {"id": name, "verb": "schedule", "network": name,
                     "config": {"seed": 1, "flows": 4}})["worker"]
                for name in ("a", "b", "c", "d")
                for _ in range(2)}
            repeat = {
                name: client.request(
                    {"id": name + "2", "verb": "schedule",
                     "network": name,
                     "config": {"seed": 1, "flows": 4}})["worker"]
                for name in ("a", "b", "c", "d")}
        finally:
            client.close()
        assert workers == repeat
        assert set(workers.values()) == {0, 1}

    def test_protocol_errors_answered_inline(self, service):
        client = NdjsonClient(service["socket"])
        try:
            bad_json = client.send_raw(b"{nope\n")
            bad_verb = client.request({"id": 9, "verb": "frobnicate"})
            no_state = client.request({"id": 10, "verb": "reschedule",
                                       "network": "ghost"})
            ping = client.request({"id": 11, "verb": "ping"})
        finally:
            client.close()
        assert not bad_json["ok"]
        assert bad_json["error"]["type"] == "ProtocolError"
        assert not bad_verb["ok"]
        assert bad_verb["id"] is None  # parse failed before id capture
        assert not no_state["ok"]
        assert no_state["error"]["type"] == "ServiceError"
        assert no_state["id"] == 10
        assert ping["ok"] and ping["result"]["pong"]

    def test_explain_verb(self, service):
        client = NdjsonClient(service["socket"])
        try:
            compiled = client.request(
                {"id": 0, "verb": "schedule", "network": "x",
                 "config": {"seed": 1, "flows": 6},
                 "include_schedule": True})
            entry = compiled["result"]["schedule"]["entries"][0]
            explained = client.request(
                {"id": 1, "verb": "explain", "network": "x",
                 "link": [entry["sender"], entry["receiver"]],
                 "slot": entry["slot"]})
        finally:
            client.close()
        assert explained["ok"]
        assert explained["result"]["lines"]

    def test_metrics_exposition_parses_strictly(self, service):
        client = NdjsonClient(service["socket"])
        try:
            client.request({"id": 0, "verb": "schedule", "network": "m",
                            "config": {"seed": 1, "flows": 4}})
            metrics = client.request({"id": 1, "verb": "metrics"})
        finally:
            client.close()
        assert metrics["ok"]
        families = parse_openmetrics(metrics["result"]["exposition"])
        sample_names = {sample[0] for family in families.values()
                        for sample in family["samples"]}
        assert any(name.startswith("repro_service_requests")
                   for name in sample_names)

    def test_sigterm_clean_shutdown_and_ledger(self, service):
        plan = build_plan(LoadgenOptions(requests=25, networks=4,
                                         flows=8, seed=2))
        client = NdjsonClient(service["socket"])
        try:
            responses = drive_plan(client, plan)
        finally:
            client.close()
        assert all(response["ok"] for response in responses)

        process = service["process"]
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
        output = process.stdout.read()
        assert "shutting down" in output
        assert "drained 25 request(s)" in output

        # Worker batch records (batch size 10 -> >= 3 across workers,
        # partial batches flushed at shutdown) are all intact.
        ledger = RunLedger(service["ledger"])
        records = [r for r in ledger.records()
                   if r.get("command") == "serve" and "metrics" in r]
        assert ledger.skipped == 0
        assert sum(r["metrics"]["requests"] for r in records) == 25


class TestLoadgenCli:
    def test_loadgen_verify_roundtrip(self, service, tmp_path, capsys):
        report_path = tmp_path / "load-report.json"
        code = main([
            "loadgen", "--socket", service["socket"],
            "--requests", "40", "--networks", "8", "--flows", "30",
            "--seed", "5", "--verify",
            "--report-out", str(report_path), "--no-ledger"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 mismatch(es)" in out

        report = json.loads(report_path.read_text())
        assert report["requests"] == 40
        assert report["errors"] == 0
        assert report["verify"] == {"checked": 40, "mismatches": 0,
                                    "mismatch_samples": []}
        assert report["reschedule_modes"]["rebuild"] == 0
        assert report["latency_ms"]["p99"] >= \
            report["latency_ms"]["p50"] > 0
        assert sum(bucket["count"]
                   for bucket in report["histogram"]) == 40
        assert report["service"]["repair_fallbacks"] == 0

    def test_loadgen_open_loop(self, service, capsys):
        code = main([
            "loadgen", "--socket", service["socket"],
            "--requests", "20", "--networks", "4", "--flows", "6",
            "--seed", "3", "--rate", "200", "--no-ledger"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "open loop" in out
        assert "errors: 0" in out

    def test_plan_is_seed_deterministic(self):
        options = LoadgenOptions(requests=50, networks=6, seed=9)
        assert build_plan(options) == build_plan(options)
        shifted = LoadgenOptions(requests=50, networks=6, seed=10)
        assert build_plan(shifted) != build_plan(options)
        plan = build_plan(options)
        first_by_network = {}
        for payload in plan:
            first_by_network.setdefault(payload["network"],
                                        payload["verb"])
        assert set(first_by_network.values()) == {"schedule"}


@pytest.fixture()
def traced_service(tmp_path):
    """A 2-worker service recording every request span (threshold 0)."""
    socket_path = str(tmp_path / "serve.sock")
    spans_path = str(tmp_path / "spans.jsonl")
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", socket_path,
         "--service-workers", "2",
         "--spans", spans_path,
         "--span-threshold-ms", "0",
         "--no-ledger"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.time() + 60
    while not os.path.exists(socket_path):
        if process.poll() is not None:
            raise AssertionError(
                f"serve exited early:\n{process.stdout.read()}")
        if time.time() > deadline:
            process.kill()
            raise AssertionError("serve did not open its socket")
        time.sleep(0.05)
    yield {"socket": socket_path, "spans": spans_path,
           "process": process}
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def shutdown(handle):
    """SIGTERM the service and wait so workers flush their exports."""
    handle["process"].send_signal(signal.SIGTERM)
    handle["process"].wait(timeout=30)


class TestTracedServeEndToEnd:
    """Acceptance: a request is reconstructable offline as a complete
    cross-process waterfall with correct parentage."""

    def test_cross_process_waterfall(self, traced_service, tmp_path):
        from repro.obs.spans import (build_traces, expand_span_paths,
                                     format_trace_show,
                                     load_span_records, new_trace_id)

        plan = build_plan(LoadgenOptions(**PLAN_KW))
        sent_ids = []
        client = NdjsonClient(traced_service["socket"])
        try:
            for index, payload in enumerate(plan):
                trace_id = new_trace_id()
                sent = dict(payload,
                            trace={"trace_id": trace_id,
                                   "span_id": f"client-{index}"})
                response = client.request(sent)
                assert response["ok"], response
                # Every response echoes the adopted trace id.
                assert response["trace"] == {"trace_id": trace_id}
                sent_ids.append(trace_id)
        finally:
            client.close()
        shutdown(traced_service)

        paths = expand_span_paths(traced_service["spans"])
        # Front export plus at least one worker shard that served work.
        assert traced_service["spans"] in paths
        assert any(path.endswith((".w0", ".w1")) for path in paths)
        records, metas = load_span_records(paths)
        assert "front" in {meta["process"] for meta in metas}

        traces = build_traces(records)
        assert traces, "no traces reconstructed"
        complete = []
        for trace in traces:
            by_id = {s["span"]: s for s in trace["spans"]}
            names = {s["name"] for s in trace["spans"]}
            if not {"request", "dispatch", "work"} <= names:
                continue
            complete.append(trace)
            assert trace["trace_id"] in sent_ids
            for span in trace["spans"]:
                # Parentage: every non-root span links to a span we
                # actually exported (complete chains, no orphans)...
                parent_id = span["parent"]
                if parent_id is None or parent_id.startswith("client-"):
                    continue
                parent = by_id.get(parent_id)
                assert parent is not None, span
                # ...and (serial stages) children fit in the parent.
                siblings = [s for s in trace["spans"]
                            if s["parent"] == parent["span"]]
                assert sum(s["duration_ms"] for s in siblings) <= \
                    parent["duration_ms"] + 1.0
            work = next(s for s in trace["spans"] if s["name"] == "work")
            dispatch = next(s for s in trace["spans"]
                            if s["name"] == "dispatch")
            request = next(s for s in trace["spans"]
                           if s["name"] == "request")
            assert request["parent"].startswith("client-")
            assert request["attrs"]["verb"] in ("schedule", "reschedule",
                                                "simulate")
            assert dispatch["parent"] == request["span"]
            assert work["parent"] == dispatch["span"]
            stages = [s for s in trace["spans"]
                      if s["parent"] == work["span"]]
            # A fresh schedule always compiles (or at least consults
            # the caches); other verbs may legitimately do no staged
            # work (e.g. a noop reschedule).
            if request["attrs"]["verb"] == "schedule":
                assert {s["name"] for s in stages} >= {"cache.topology"}
        assert complete, "no complete front+worker waterfall captured"
        assert any(s["name"] == "compile"
                   for t in complete for s in t["spans"])

        # And the CLI renders it.
        shown = format_trace_show(paths, limit=3)
        assert "trace " in shown
        assert "work" in shown and "dispatch" in shown

    def test_loadgen_trace_out(self, traced_service, tmp_path, capsys):
        report_path = tmp_path / "load-report.json"
        trace_path = tmp_path / "client-spans.jsonl"
        code = main([
            "loadgen", "--socket", traced_service["socket"],
            "--requests", "20", "--networks", "4", "--flows", "12",
            "--seed", "7", "--verify",
            "--trace-out", str(trace_path),
            "--trace-threshold-ms", "0",
            "--report-out", str(report_path), "--no-ledger"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "slow " in out  # exemplar lines in the text report

        report = json.loads(report_path.read_text())
        # Clean runs keep the pre-tracing verify shape (plus nothing).
        assert report["verify"] == {"checked": 20, "mismatches": 0,
                                    "mismatch_samples": []}
        trace_section = report["trace"]
        assert trace_section["out"] == str(trace_path)
        assert trace_section["kept_traces"] >= 1
        exemplars = trace_section["exemplars"]
        assert exemplars and all(e["trace_id"] for e in exemplars)
        durations = [e["duration_ms"] for e in exemplars]
        assert durations == sorted(durations, reverse=True)

        # The client-side dump itself reconstructs, with loadgen as
        # the local root process.
        from repro.obs.spans import build_traces, load_span_records
        records, metas = load_span_records([str(trace_path)])
        assert metas[0]["process"] == "loadgen"
        traces = build_traces(records)
        exemplar_ids = {e["trace_id"] for e in exemplars}
        assert exemplar_ids <= {t["trace_id"] for t in traces}
