"""Tests for the event-driven batched simulator core (repro.simulator.events).

The contract under test: both engines consume one pinned, outcome-
independent draw plan per repetition, so the batched event engine is
bit-identical to the slot oracle — per run, per epoch, and regardless of
how repetitions are chunked into draw matrices.
"""

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.flows.flow import Flow, FlowSet
from repro.mac.channels import ChannelMap
from repro.simulator import (
    ENGINE_AUTO,
    ENGINE_EVENT,
    ENGINE_SLOT,
    EVENT_MIN_REPETITIONS,
    SimulationConfig,
    TschSimulator,
    build_draw_plan,
    repetition_draws,
    resolve_engine,
)
from repro.simulator.conditions import Conditions
from repro.testbeds.synth import RadioEnvironment

from test_core_schedule import request
from test_simulator import tiny_environment, tiny_flow_and_schedule


def signature(stats):
    """Everything two equivalent runs must agree on (mirrors the fuzz
    comparator): end-to-end flow counts plus every repetition's per-link
    and per-channel attempt counters."""
    def bucket(counters):
        return tuple(sorted((key, c.attempts, c.successes)
                            for key, c in counters.items()))

    return (
        tuple(sorted(stats.flow_released.items())),
        tuple(sorted(stats.flow_delivered.items())),
        tuple((bucket(record.reuse), bucket(record.contention_free),
               bucket(record.channels))
              for record in stats.repetitions),
    )


def tiny_simulator(seed=5, **config_kwargs):
    flow_set, schedule = tiny_flow_and_schedule()
    env = tiny_environment()
    return TschSimulator(schedule, flow_set, env, env.channel_map,
                         config=SimulationConfig(seed=seed, **config_kwargs))


# ----------------------------------------------------------------------
# Engine resolution
# ----------------------------------------------------------------------

class TestEngineResolution:
    def test_fixed_engines_resolve_to_themselves(self):
        assert resolve_engine(ENGINE_SLOT, 1000) == ENGINE_SLOT
        assert resolve_engine(ENGINE_EVENT, 1) == ENGINE_EVENT

    def test_auto_switches_at_the_repetition_floor(self):
        assert resolve_engine(ENGINE_AUTO,
                              EVENT_MIN_REPETITIONS - 1) == ENGINE_SLOT
        assert resolve_engine(ENGINE_AUTO,
                              EVENT_MIN_REPETITIONS) == ENGINE_EVENT

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("bogus", 10)
        with pytest.raises(ValueError):
            SimulationConfig(engine="bogus")

    def test_run_override_beats_config(self):
        sim = tiny_simulator(engine=ENGINE_SLOT)
        # Same seed, same draws — only the execution strategy differs.
        assert signature(sim.run(6, engine=ENGINE_EVENT)) == \
            signature(sim.run(6))


# ----------------------------------------------------------------------
# Golden trace: the pinned draw layout
# ----------------------------------------------------------------------

class TestDrawPlan:
    def test_repetition_draws_golden_trace(self):
        """A repetition's entire stochastic state is exactly two
        vectorized draws from ``default_rng([seed, g])`` — normals first,
        then uniforms.  Any change to draw order or count breaks
        cross-engine and cross-epoch reproducibility, so this layout is
        pinned."""
        plan = tiny_simulator().draw_plan
        for g in (0, 1, 7):
            normals, uniforms = repetition_draws(plan, seed=5,
                                                 global_repetition=g)
            oracle = np.random.default_rng([5, g])
            np.testing.assert_array_equal(
                normals, oracle.standard_normal(plan.num_normals))
            np.testing.assert_array_equal(
                uniforms, oracle.random(plan.num_uniforms))

    def test_index_helpers_partition_the_layout(self):
        """Every draw position is owned by exactly one (kind, slot,
        entry) coordinate and the blocks tile the arrays completely."""
        flow_set, schedule = tiny_flow_and_schedule()
        sim = TschSimulator(schedule, flow_set, tiny_environment(),
                            ChannelMap.first_n(2))
        num_interferers = 2
        plan = build_draw_plan(sim.compiled, num_interferers)

        normal_indices = [plan.drift_index(a, b) for a, b in plan.pairs]
        uniform_indices = []
        for pos, count in enumerate(plan.entry_counts):
            for entry in range(count):
                normal_indices.append(plan.signal_fast_index(pos, entry))
                for other in range(count):
                    normal_indices.append(
                        plan.interference_fast_index(pos, entry, other))
                uniform_indices.append(
                    plan.reception_uniform_index(pos, entry))
            for interferer in range(num_interferers):
                uniform_indices.append(
                    plan.activity_uniform_index(pos, interferer))
                for entry in range(count):
                    normal_indices.append(
                        plan.interferer_fast_index(pos, interferer, entry))

        assert sorted(normal_indices) == list(range(plan.num_normals))
        assert sorted(uniform_indices) == list(range(plan.num_uniforms))

    def test_plan_covers_every_scheduled_slot_only(self):
        flow_set, schedule = tiny_flow_and_schedule()
        sim = TschSimulator(schedule, flow_set, tiny_environment(),
                            ChannelMap.first_n(2))
        assert sim.draw_plan.slots == tuple(sorted(sim.compiled))
        # tiny_flow_and_schedule occupies slots 0-3 of a 100-slot frame:
        # the event timeline must not contain the 96 idle ASNs.
        assert sim.draw_plan.slots == (0, 1, 2, 3)


# ----------------------------------------------------------------------
# Draw isolation: inactive entries consume their draws anyway
# ----------------------------------------------------------------------

def two_flow_environment(num_channels=2):
    """Four nodes, two radio-isolated links 0->1 and 2->3."""
    rssi = np.full((4, 4, num_channels), -150.0)
    idx = np.arange(4)
    rssi[idx, idx, :] = -np.inf
    rssi[0, 1, :] = rssi[1, 0, :] = -60.0
    rssi[2, 3, :] = rssi[3, 2, :] = -60.0
    return RadioEnvironment(
        positions=np.zeros((4, 3)),
        rssi_dbm=rssi,
        channel_map=ChannelMap.first_n(num_channels),
        grey_sigma_db=3.6,
    )


def two_flow_setup():
    flow_a = Flow(0, 0, 1, 100, 100, (0, 1))
    flow_b = Flow(1, 2, 3, 100, 100, (2, 3))
    flow_set = FlowSet([flow_a, flow_b])
    schedule = Schedule(4, 100, 2)
    schedule.add(request(0, 1, flow_id=0, hop=0, attempt=0), 0, 0)
    schedule.add(request(0, 1, flow_id=0, hop=0, attempt=1), 1, 0)
    schedule.add(request(2, 3, flow_id=1, hop=0, attempt=0), 2, 0)
    schedule.add(request(2, 3, flow_id=1, hop=0, attempt=1), 3, 0)
    return flow_set, schedule


class TestDrawIsolation:
    @pytest.mark.parametrize("engine", [ENGINE_SLOT, ENGINE_EVENT])
    def test_dark_sender_leaves_other_flow_untouched(self, engine):
        """Darkening flow B's sender must not shift flow A's random
        draws (the historical bug class: an engine that skips an
        inactive entry's draws re-times every draw after it)."""
        flow_set, schedule = two_flow_setup()
        env = two_flow_environment()

        def run(conditions):
            sim = TschSimulator(schedule, flow_set, env, env.channel_map,
                                config=SimulationConfig(seed=9),
                                conditions=conditions)
            return sim.run(12, engine=engine)

        clean = run(None)
        dark = run(Conditions(dark_nodes=frozenset({2})))

        assert dark.pdr_per_flow()[1] == 0.0
        assert dark.flow_released[0] == clean.flow_released[0]
        assert dark.flow_delivered[0] == clean.flow_delivered[0]
        link_a = (0, 1)
        for rep_clean, rep_dark in zip(clean.repetitions, dark.repetitions):
            assert rep_clean.contention_free[link_a].attempts == \
                rep_dark.contention_free[link_a].attempts
            assert rep_clean.contention_free[link_a].successes == \
                rep_dark.contention_free[link_a].successes


# ----------------------------------------------------------------------
# ASN / substream continuity across start_repetition
# ----------------------------------------------------------------------

class TestStartRepetitionContinuity:
    @pytest.mark.parametrize("engine", [ENGINE_SLOT, ENGINE_EVENT])
    def test_split_run_equals_whole_run(self, engine):
        """run(6) must equal run(3) followed by run(3, start_repetition=3)
        — repetition substreams key on the *global* index, and the ASN
        (hence the hop pattern) advances with it."""
        whole = tiny_simulator().run(6, engine=engine)

        sim = tiny_simulator()
        first = sim.run(3, engine=engine)
        second = sim.run(3, start_repetition=3, engine=engine)

        merged_released = dict(first.flow_released)
        merged_delivered = dict(first.flow_delivered)
        for flow_id, count in second.flow_released.items():
            merged_released[flow_id] = merged_released.get(flow_id, 0) + count
        for flow_id, count in second.flow_delivered.items():
            merged_delivered[flow_id] = (merged_delivered.get(flow_id, 0)
                                         + count)
        assert merged_released == dict(whole.flow_released)
        assert merged_delivered == dict(whole.flow_delivered)

        def rep_buckets(stats):
            return signature(stats)[2]

        assert rep_buckets(first) + rep_buckets(second) == rep_buckets(whole)

    def test_engines_agree_on_offset_repetitions(self):
        """Parity is per global repetition, not just from zero."""
        slot = tiny_simulator().run(4, start_repetition=10,
                                    engine=ENGINE_SLOT)
        event = tiny_simulator().run(4, start_repetition=10,
                                     engine=ENGINE_EVENT)
        assert signature(slot) == signature(event)


# ----------------------------------------------------------------------
# Epoch boundaries: the manager's per-epoch pattern
# ----------------------------------------------------------------------

class TestEpochBoundaries:
    EPOCHS = 3
    REPS = 4

    def _run_epochs(self, engine):
        """The manager loop's shape: a fresh simulator every epoch with
        start_repetition advancing by repetitions_per_epoch."""
        from repro.obs import recorder as _obs
        from repro.obs.recorder import Recorder

        per_epoch = []
        with _obs.recording(Recorder()) as rec:
            for epoch in range(self.EPOCHS):
                stats = tiny_simulator().run(
                    self.REPS, start_repetition=epoch * self.REPS,
                    engine=engine)
                per_epoch.append(stats)
        counters = rec.registry.snapshot()["counters"]
        return per_epoch, {name: value for name, value in counters.items()
                           if name.startswith("sim.")}

    def test_epochs_identical_across_engines(self):
        slot_epochs, slot_counters = self._run_epochs(ENGINE_SLOT)
        event_epochs, event_counters = self._run_epochs(ENGINE_EVENT)

        for slot_stats, event_stats in zip(slot_epochs, event_epochs):
            assert signature(slot_stats) == signature(event_stats)
            assert slot_stats.channel_prr() == event_stats.channel_prr()

        # The sim.* counters agree except for the engine-tagged run
        # counter, which records which code path executed.
        assert slot_counters.pop("sim.runs.slot") == self.EPOCHS
        assert event_counters.pop("sim.runs.event") == self.EPOCHS
        assert slot_counters == event_counters

    def test_epoch_split_matches_one_batched_run(self):
        """Running all epochs as one batched call gives the same
        per-repetition records as the epoch-by-epoch split."""
        whole = tiny_simulator().run(self.EPOCHS * self.REPS,
                                     engine=ENGINE_EVENT)
        epochs, _ = self._run_epochs(ENGINE_EVENT)
        split_buckets = tuple(bucket for stats in epochs
                              for bucket in signature(stats)[2])
        assert split_buckets == signature(whole)[2]


# ----------------------------------------------------------------------
# Chunking is a memory knob, never a semantics knob
# ----------------------------------------------------------------------

class TestChunkInvariance:
    @pytest.mark.parametrize("chunk_reps", [1, 2, 5, None])
    def test_chunking_never_changes_results(self, chunk_reps):
        baseline = tiny_simulator().run(5, engine=ENGINE_EVENT)
        chunked = tiny_simulator().run(5, engine=ENGINE_EVENT,
                                       chunk_reps=chunk_reps)
        assert signature(chunked) == signature(baseline)
