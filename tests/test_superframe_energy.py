"""Tests for repro.mac.superframe and repro.analysis.energy."""

import pytest

from repro.analysis.energy import (
    NodeEnergy,
    RadioPowerProfile,
    network_lifetime_days,
    superframe_energy,
)
from repro.core.schedule import Schedule
from repro.mac.superframe import SlotAction, build_superframe

from test_core_schedule import request


@pytest.fixture
def small_schedule():
    schedule = Schedule(6, 20, 2)
    schedule.add(request(0, 1), 0, 0)
    schedule.add(request(2, 3), 0, 1)
    schedule.add(request(1, 2), 5, 0)
    return schedule


class TestSuperframe:
    def test_actions_assigned(self, small_schedule):
        superframe = build_superframe(small_schedule)
        table0 = superframe.table(0)
        assert table0.action_in_slot(0) is SlotAction.TRANSMIT
        assert table0.action_in_slot(1) is SlotAction.SLEEP
        table1 = superframe.table(1)
        assert table1.action_in_slot(0) is SlotAction.RECEIVE
        assert table1.action_in_slot(5) is SlotAction.TRANSMIT

    def test_unscheduled_device_sleeps(self, small_schedule):
        superframe = build_superframe(small_schedule)
        table = superframe.table(5)
        assert table.entries == []
        assert table.duty_cycle() == 0.0
        assert table.action_in_slot(3) is SlotAction.SLEEP

    def test_active_devices(self, small_schedule):
        superframe = build_superframe(small_schedule)
        assert superframe.active_devices() == [0, 1, 2, 3]

    def test_duty_cycle(self, small_schedule):
        superframe = build_superframe(small_schedule)
        # Node 1 is active in slots 0 and 5 of 20.
        assert superframe.table(1).duty_cycle() == pytest.approx(0.1)

    def test_busiest_device(self, small_schedule):
        superframe = build_superframe(small_schedule)
        node, duty = superframe.busiest_device()
        assert node in (1, 2)  # both have two active slots
        assert duty == pytest.approx(0.1)

    def test_transmit_receive_slot_lists(self, small_schedule):
        superframe = build_superframe(small_schedule)
        assert superframe.table(2).receive_slots() == [5]
        assert superframe.table(2).transmit_slots() == [0]

    def test_entries_sorted_by_slot(self, small_schedule):
        superframe = build_superframe(small_schedule)
        slots = [e.slot for e in superframe.table(1).entries]
        assert slots == sorted(slots)

    def test_mean_duty_cycle(self, small_schedule):
        superframe = build_superframe(small_schedule)
        assert 0.0 < superframe.mean_duty_cycle() <= 0.1

    def test_empty_schedule(self):
        superframe = build_superframe(Schedule(4, 10, 1))
        assert superframe.active_devices() == []
        assert superframe.mean_duty_cycle() == 0.0
        assert superframe.busiest_device() == (None, 0.0)


class TestEnergy:
    def test_slot_charges_ordering(self):
        """TX slots cost less than RX slots (RX listens longer); both
        dwarf sleep slots."""
        profile = RadioPowerProfile()
        assert profile.receive_slot_charge_mc() > profile.transmit_slot_charge_mc()
        assert profile.transmit_slot_charge_mc() > 100 * profile.sleep_slot_charge_mc()

    def test_per_node_accounting(self, small_schedule):
        superframe = build_superframe(small_schedule)
        energies = superframe_energy(superframe)
        node1 = energies[1]
        assert node1.transmit_slots == 1
        assert node1.receive_slots == 1
        assert node1.sleep_slots == 18
        assert node1.charge_mc > 0

    def test_busier_node_uses_more_energy(self, small_schedule):
        superframe = build_superframe(small_schedule)
        energies = superframe_energy(superframe)
        assert energies[1].charge_mc > energies[0].charge_mc

    def test_average_current_positive(self, small_schedule):
        superframe = build_superframe(small_schedule)
        energies = superframe_energy(superframe)
        current = energies[1].average_current_ma(superframe.num_slots)
        assert 0.0 < current < RadioPowerProfile().rx_current_ma

    def test_lifetime_decreases_with_load(self):
        """A device with more active slots lives shorter."""
        light = Schedule(4, 100, 1)
        light.add(request(0, 1), 0, 0)
        heavy = Schedule(4, 100, 1)
        for slot in range(0, 50, 2):
            heavy.add(request(0, 1), slot, 0)
        light_life = network_lifetime_days(build_superframe(light))
        heavy_life = network_lifetime_days(build_superframe(heavy))
        assert heavy_life < light_life

    def test_empty_network_lifetime_infinite(self):
        assert network_lifetime_days(
            build_superframe(Schedule(4, 10, 1))) == float("inf")

    def test_idle_node_lifetime_years(self):
        """A node with one active slot per 100 sleeps almost always and
        should be projected to last years."""
        schedule = Schedule(4, 1000, 1)
        schedule.add(request(0, 1), 0, 0)
        superframe = build_superframe(schedule)
        energies = superframe_energy(superframe)
        assert energies[0].lifetime_days(1000) > 365
