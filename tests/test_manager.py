"""Tests for the closed-loop network-manager runtime (repro.manager)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.core.transmissions import TransmissionRequest
from repro.detection.classifier import LinkDiagnosis, Verdict
from repro.detection.health import (
    EpochReport,
    LinkEpochReport,
    StreamingHealthMonitor,
)
from repro.manager.faults import (
    ConditionSchedule,
    FaultEvent,
    SCENARIO_PRESETS,
    ScenarioResolver,
    load_scenario,
    resolve_scenario,
    save_scenario,
)
from repro.manager.loop import ManagerConfig, NetworkManager, run_manager
from repro.manager.policies import (
    Action,
    BlacklistChannel,
    EscalateRho,
    NoOp,
    Observation,
    RescheduleVictims,
    make_manager_policy,
)
from repro.simulator.engine import compiled_entries
from repro.testbeds import WUSTL_PLAN


# ----------------------------------------------------------------------
# Fault events and scenarios
# ----------------------------------------------------------------------

class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="solar_flare")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="reuse_interference", start_epoch=-1)
        with pytest.raises(ValueError):
            FaultEvent(kind="reuse_interference", start_epoch=4, end_epoch=4)

    def test_kind_specific_requirements(self):
        with pytest.raises(ValueError, match="requires links"):
            FaultEvent(kind="link_degradation")
        with pytest.raises(ValueError, match="requires nodes"):
            FaultEvent(kind="node_churn")

    def test_active_window_is_half_open(self):
        event = FaultEvent(kind="reuse_interference", start_epoch=2,
                           end_epoch=5)
        assert [event.active_in(e) for e in range(7)] == [
            False, False, True, True, True, False, False]

    def test_open_ended_event_stays_active(self):
        event = FaultEvent(kind="reuse_interference", start_epoch=3)
        assert not event.active_in(2)
        assert event.active_in(3) and event.active_in(1000)

    @pytest.mark.parametrize("event", [
        FaultEvent(kind="reuse_interference", start_epoch=3, boost_db=9.0),
        FaultEvent(kind="wifi_burst", start_epoch=1, end_epoch=4,
                   wifi_channel=6, duty_cycle=0.3, tx_power_dbm=12.0),
        FaultEvent(kind="link_degradation", start_epoch=2,
                   links=((3, 7), (1, 2)), attenuation_db=8.0),
        FaultEvent(kind="node_churn", start_epoch=5, nodes=(4, 9)),
    ])
    def test_dict_round_trip(self, event):
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault event fields"):
            FaultEvent.from_dict({"kind": "node_churn", "nodes": [1],
                                  "severity": "high"})


class TestConditionSchedule:
    def test_events_for_preserves_declaration_order(self):
        first = FaultEvent(kind="reuse_interference", start_epoch=0)
        second = FaultEvent(kind="node_churn", start_epoch=0, nodes=(1,))
        schedule = ConditionSchedule("both", (first, second))
        assert schedule.events_for(0) == [first, second]
        assert schedule.events_for(0)[0] is not second

    def test_horizon_covers_every_window_edge(self):
        schedule = ConditionSchedule("h", (
            FaultEvent(kind="reuse_interference", start_epoch=2,
                       end_epoch=6),
            FaultEvent(kind="node_churn", start_epoch=7, nodes=(1,)),
        ))
        assert schedule.horizon() == 8

    def test_from_dict_requires_events(self):
        with pytest.raises(ValueError, match="events"):
            ConditionSchedule.from_dict({"name": "empty"})

    def test_json_file_round_trip(self, tmp_path):
        scenario = SCENARIO_PRESETS["storm-and-churn"]
        path = tmp_path / "scenario.json"
        save_scenario(scenario, path)
        assert load_scenario(path) == scenario

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="malformed scenario JSON"):
            load_scenario(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="must be an object"):
            load_scenario(path)

    def test_resolve_scenario_dispatch(self, tmp_path):
        preset = resolve_scenario("reuse-storm")
        assert preset is SCENARIO_PRESETS["reuse-storm"]
        assert resolve_scenario(preset) is preset
        path = tmp_path / "custom.json"
        save_scenario(ConditionSchedule("custom", ()), path)
        assert resolve_scenario(str(path)).name == "custom"
        with pytest.raises(ValueError, match="unknown scenario"):
            resolve_scenario("no-such-preset-or-file")


class TestScenarioResolver:
    @pytest.fixture(scope="class")
    def wustl_env(self, wustl):
        _, environment = wustl
        return environment

    def test_quiet_scenario_is_empty_overlay(self, wustl_env):
        resolver = ScenarioResolver(SCENARIO_PRESETS["quiet"], wustl_env,
                                    WUSTL_PLAN, seed=0)
        conditions = resolver.conditions_for(0)
        assert not conditions.pair_attenuation_db
        assert conditions.interference_boost_db == 0.0
        assert not conditions.dark_nodes
        assert not conditions.extra_interferers

    def test_reuse_storm_boost_lands_at_start_epoch(self, wustl_env):
        resolver = ScenarioResolver(SCENARIO_PRESETS["reuse-storm"],
                                    wustl_env, WUSTL_PLAN, seed=0)
        assert resolver.conditions_for(2).interference_boost_db == 0.0
        assert resolver.conditions_for(3).interference_boost_db == 15.0

    def test_conditions_cached_per_active_event_set(self, wustl_env):
        resolver = ScenarioResolver(SCENARIO_PRESETS["reuse-storm"],
                                    wustl_env, WUSTL_PLAN, seed=0)
        assert (resolver.conditions_for(4)
                is resolver.conditions_for(5))
        assert (resolver.conditions_for(0)
                is not resolver.conditions_for(4))

    def test_link_degradation_is_symmetric_and_additive(self, wustl_env):
        scenario = ConditionSchedule("deg", (
            FaultEvent(kind="link_degradation", links=((3, 7),),
                       attenuation_db=5.0),
            FaultEvent(kind="link_degradation", links=((7, 3),),
                       attenuation_db=2.0),
        ))
        conditions = ScenarioResolver(scenario, wustl_env, WUSTL_PLAN,
                                      seed=0).conditions_for(0)
        assert conditions.pair_attenuation_db[(3, 7)] == pytest.approx(7.0)
        assert conditions.pair_attenuation_db[(7, 3)] == pytest.approx(7.0)

    def test_wifi_burst_produces_interferer_rows(self, wustl_env):
        resolver = ScenarioResolver(SCENARIO_PRESETS["wifi-burst"],
                                    wustl_env, WUSTL_PLAN, seed=0)
        conditions = resolver.conditions_for(3)
        assert conditions.extra_interferers
        assert conditions.extra_interferer_rssi_dbm.shape == (
            len(conditions.extra_interferers),
            wustl_env.positions.shape[0])

    def test_resolution_is_deterministic_across_resolvers(self, wustl_env):
        def resolve(epoch):
            resolver = ScenarioResolver(SCENARIO_PRESETS["wifi-burst"],
                                        wustl_env, WUSTL_PLAN, seed=5)
            return resolver.conditions_for(epoch)

        first, second = resolve(4), resolve(4)
        assert first.extra_interferers == second.extra_interferers
        np.testing.assert_array_equal(first.extra_interferer_rssi_dbm,
                                      second.extra_interferer_rssi_dbm)

    def test_seed_changes_interferer_rssi(self, wustl_env):
        def resolve(seed):
            return ScenarioResolver(SCENARIO_PRESETS["wifi-burst"],
                                    wustl_env, WUSTL_PLAN,
                                    seed=seed).conditions_for(3)

        assert not np.array_equal(resolve(0).extra_interferer_rssi_dbm,
                                  resolve(1).extra_interferer_rssi_dbm)


# ----------------------------------------------------------------------
# Streaming health monitor
# ----------------------------------------------------------------------

def diagnosis(link, verdict, reuse_prr=None, cf_prr=None, epoch=0):
    return LinkDiagnosis(link=link, epoch=epoch, verdict=verdict,
                         reuse_prr=reuse_prr, contention_free_prr=cf_prr)


class TestStreamingHealthMonitor:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StreamingHealthMonitor(warmup_epochs=-1)
        with pytest.raises(ValueError):
            StreamingHealthMonitor(confirm_epochs=0)
        with pytest.raises(ValueError):
            StreamingHealthMonitor(suspect_prr=1.5)

    def test_warmup_and_cooldown_gate_actions(self):
        monitor = StreamingHealthMonitor(warmup_epochs=2, confirm_epochs=1,
                                         cooldown_epochs=1)
        assert not monitor.actionable(0) and not monitor.actionable(1)
        assert monitor.actionable(2)
        monitor.note_action(2)
        assert not monitor.actionable(3)
        assert monitor.actionable(4)

    def test_reject_streak_confirms_after_confirm_epochs(self):
        monitor = StreamingHealthMonitor(confirm_epochs=2)
        link = (1, 2)
        monitor.observe([diagnosis(link, Verdict.REJECT)])
        assert monitor.confirmed_reuse_victims() == []
        monitor.observe([diagnosis(link, Verdict.REJECT)])
        assert monitor.confirmed_reuse_victims() == [link]

    def test_streak_resets_when_link_disappears(self):
        monitor = StreamingHealthMonitor(confirm_epochs=2)
        link = (1, 2)
        monitor.observe([diagnosis(link, Verdict.REJECT)])
        monitor.observe([])  # link left the diagnoses (e.g. rescheduled)
        monitor.observe([diagnosis(link, Verdict.REJECT)])
        assert monitor.confirmed_reuse_victims() == []

    def test_accept_streak_confirms_external(self):
        monitor = StreamingHealthMonitor(confirm_epochs=2)
        link = (4, 5)
        for _ in range(2):
            monitor.observe([diagnosis(link, Verdict.ACCEPT)])
        assert monitor.confirmed_external() == [link]
        assert monitor.confirmed_reuse_victims() == []

    def test_suspects_need_low_reuse_prr(self):
        monitor = StreamingHealthMonitor(confirm_epochs=2, suspect_prr=0.7)
        deep = (1, 2)
        shallow = (3, 4)
        missing = (5, 6)
        epoch = [
            diagnosis(deep, Verdict.INSUFFICIENT_DATA, reuse_prr=0.2),
            diagnosis(shallow, Verdict.INSUFFICIENT_DATA, reuse_prr=0.75),
            diagnosis(missing, Verdict.INSUFFICIENT_DATA, reuse_prr=None),
        ]
        monitor.observe(epoch)
        monitor.observe(epoch)
        assert monitor.confirmed_suspects() == [deep]

    def test_note_action_clears_every_streak(self):
        monitor = StreamingHealthMonitor(confirm_epochs=1)
        monitor.observe([
            diagnosis((1, 2), Verdict.REJECT),
            diagnosis((3, 4), Verdict.ACCEPT),
            diagnosis((5, 6), Verdict.INSUFFICIENT_DATA, reuse_prr=0.1),
        ])
        assert (monitor.confirmed_reuse_victims()
                and monitor.confirmed_external()
                and monitor.confirmed_suspects())
        monitor.note_action(0)
        assert not (monitor.confirmed_reuse_victims()
                    or monitor.confirmed_external()
                    or monitor.confirmed_suspects())


# ----------------------------------------------------------------------
# Remediation policies (pure decision functions)
# ----------------------------------------------------------------------

def link_epoch_report(link, reuse_prr, epoch=0):
    return LinkEpochReport(link=link, epoch=epoch, reuse_samples=(reuse_prr,),
                           contention_free_samples=(), reuse_prr=reuse_prr,
                           contention_free_prr=None)


def observation(victims=(), external=(), suspects=(), channel_prr=None,
                actionable=True, rho_t=2, num_channels=5, barred=(),
                reuse_prrs=None):
    links = {}
    for link in (*victims, *external, *suspects):
        prr = (reuse_prrs or {}).get(link, 0.5)
        links[link] = link_epoch_report(link, prr)
    return Observation(
        epoch=4, report=EpochReport(epoch=4, links=links), diagnoses=[],
        confirmed_victims=list(victims), confirmed_external=list(external),
        confirmed_suspects=list(suspects),
        channel_prr=dict(channel_prr or {}), actionable=actionable,
        rho_t=rho_t, num_channels=num_channels, barred_links=tuple(barred))


class TestNoOp:
    def test_never_acts(self):
        assert NoOp().decide(observation(victims=[(1, 2)])) is None


class TestRescheduleVictims:
    def test_holds_still_when_not_actionable(self):
        policy = RescheduleVictims()
        assert policy.decide(observation(victims=[(1, 2)],
                                         actionable=False)) is None

    def test_holds_still_without_fresh_victims(self):
        policy = RescheduleVictims()
        assert policy.decide(observation()) is None
        assert policy.decide(observation(victims=[(1, 2)],
                                         barred=[(1, 2)])) is None

    def test_bars_worst_links_first_up_to_cap(self):
        policy = RescheduleVictims(max_victims_per_action=2)
        obs = observation(
            victims=[(1, 2), (3, 4), (5, 6)],
            reuse_prrs={(1, 2): 0.6, (3, 4): 0.1, (5, 6): 0.3})
        action = policy.decide(obs)
        assert action.kind == "reschedule"
        assert action.victims == ((3, 4), (5, 6))

    def test_suspects_included_and_deduplicated(self):
        policy = RescheduleVictims()
        action = policy.decide(observation(victims=[(1, 2)],
                                           suspects=[(1, 2), (3, 4)]))
        assert set(action.victims) == {(1, 2), (3, 4)}

    def test_suspects_excluded_when_disabled(self):
        policy = RescheduleVictims(include_suspects=False)
        assert policy.decide(observation(suspects=[(3, 4)])) is None


class TestBlacklistChannel:
    def prr(self, worst=0.5):
        return {11: worst, 12: 0.95, 13: 0.96, 14: 0.97, 15: 0.98}

    def test_requires_confirmed_external_links(self):
        policy = BlacklistChannel()
        assert policy.decide(observation(channel_prr=self.prr())) is None

    def test_blacklists_the_worst_channel(self):
        policy = BlacklistChannel()
        action = policy.decide(observation(external=[(1, 2)],
                                           channel_prr=self.prr()))
        assert action.kind == "blacklist" and action.channel == 11

    def test_respects_min_channels_floor(self):
        policy = BlacklistChannel(min_channels=2)
        obs = observation(external=[(1, 2)], channel_prr={11: 0.3, 12: 0.9},
                          num_channels=2)
        assert policy.decide(obs) is None

    def test_holds_still_when_all_channels_equally_bad(self):
        policy = BlacklistChannel(margin=0.05)
        obs = observation(external=[(1, 2)],
                          channel_prr={ch: 0.5 for ch in range(11, 16)})
        assert policy.decide(obs) is None


class TestEscalateRho:
    def test_escalates_on_victims_or_suspects(self):
        policy = EscalateRho(step=1)
        action = policy.decide(observation(suspects=[(1, 2)], rho_t=2))
        assert action.kind == "escalate_rho" and action.rho_t == 3

    def test_caps_at_max_rho(self):
        policy = EscalateRho(step=2, max_rho=4)
        assert policy.decide(observation(victims=[(1, 2)],
                                         rho_t=4)) is None
        action = policy.decide(observation(victims=[(1, 2)], rho_t=3))
        assert action.rho_t == 4

    def test_holds_still_without_degradation(self):
        assert EscalateRho().decide(observation()) is None


class TestMakeManagerPolicy:
    @pytest.mark.parametrize("name, cls", [
        ("noop", NoOp), ("reschedule", RescheduleVictims),
        ("blacklist", BlacklistChannel), ("escalate", EscalateRho),
        ("RescheduleVictims", RescheduleVictims), ("NOOP", NoOp),
    ])
    def test_names_resolve(self, name, cls):
        assert isinstance(make_manager_policy(name), cls)

    def test_instances_pass_through(self):
        policy = RescheduleVictims(max_victims_per_action=3)
        assert make_manager_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown manager policy"):
            make_manager_policy("panic")

    def test_action_describe_labels(self):
        assert Action(kind="reschedule",
                      victims=((1, 2),)).describe() == "reschedule(1 links)"
        assert Action(kind="blacklist",
                      channel=13).describe() == "blacklist(ch13)"
        assert Action(kind="escalate_rho",
                      rho_t=3).describe() == "escalate_rho(3)"


# ----------------------------------------------------------------------
# Compile cache (satellite: reuse compiled schedules across epochs)
# ----------------------------------------------------------------------

class TestCompileCache:
    def _schedule(self):
        schedule = Schedule(num_nodes=4, num_slots=6, num_offsets=2)
        schedule.add(TransmissionRequest(0, 0, 0, 0, sender=0, receiver=1,
                                         release_slot=0, deadline_slot=5),
                     slot=0, offset=0)
        return schedule

    def test_repeat_compiles_share_the_cache_entry(self):
        schedule = self._schedule()
        first = compiled_entries(schedule)
        assert compiled_entries(schedule) is first

    def test_schedule_growth_invalidates_the_entry(self):
        schedule = self._schedule()
        first = compiled_entries(schedule)
        schedule.add(TransmissionRequest(1, 0, 0, 0, sender=2, receiver=3,
                                         release_slot=0, deadline_slot=5),
                     slot=1, offset=1)
        second = compiled_entries(schedule)
        assert second is not first
        assert sorted(second) == [0, 1]

    def test_distinct_schedules_get_distinct_entries(self):
        assert (compiled_entries(self._schedule())
                is not compiled_entries(self._schedule()))


# ----------------------------------------------------------------------
# The manage loop end to end
# ----------------------------------------------------------------------

QUICK = dict(scheduler_policy="RA", num_flows=40, repetitions_per_epoch=8,
             warmup_epochs=1, confirm_epochs=1, cooldown_epochs=1)


class TestNetworkManager:
    def test_report_is_deterministic_and_worker_invariant(self, wustl):
        topology, environment = wustl
        config = ManagerConfig(policy="reschedule", num_epochs=5, seed=7,
                               **QUICK)
        serial = run_manager(topology, environment, WUSTL_PLAN, config,
                             seeds=[7, 8, 9, 10], workers=1)
        fanned = run_manager(topology, environment, WUSTL_PLAN, config,
                             seeds=[7, 8, 9, 10], workers=4)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in fanned]
        again = NetworkManager(topology, environment, WUSTL_PLAN,
                               config).run()
        assert again.to_dict() == serial[0].to_dict()

    def test_unschedulable_initial_workload_raises(self, wustl):
        topology, environment = wustl
        config = ManagerConfig(num_flows=400, channels=(11,), **{
            k: v for k, v in QUICK.items() if k != "num_flows"})
        with pytest.raises(RuntimeError, match="unschedulable"):
            NetworkManager(topology, environment, WUSTL_PLAN, config).run()

    def test_reschedule_recovers_pdr_lost_to_reuse_storm(self, wustl):
        """The acceptance experiment: under the reuse-interference fault,
        RescheduleVictims must claw back PDR that NoOp keeps losing."""
        topology, environment = wustl
        base = ManagerConfig(scenario="reuse-storm", scheduler_policy="RA",
                             num_epochs=10, seed=3)
        noop = NetworkManager(topology, environment, WUSTL_PLAN,
                              replace_policy(base, "noop")).run()
        fixer = NetworkManager(topology, environment, WUSTL_PLAN,
                               replace_policy(base, "reschedule")).run()

        # Identical fault timeline and identical behaviour until the
        # first remediation fires.
        assert [o.conditions for o in noop.epochs] == [
            o.conditions for o in fixer.epochs]
        assert noop.median_pdr_series()[:3] == fixer.median_pdr_series()[:3]
        assert not noop.actions_taken()
        assert fixer.actions_taken()
        assert fixer.barred_links

        # The storm lands at epoch 3 and must actually hurt.
        healthy = noop.median_pdr_series()[2]
        assert min(noop.median_pdr_series()[3:]) < healthy - 0.1

        # Tail comparison: the remediated network ends clearly above the
        # static baseline.
        noop_tail = noop.median_pdr_series()[-2:]
        fixer_tail = fixer.median_pdr_series()[-2:]
        assert min(fixer_tail) > max(noop_tail) + 0.1


def replace_policy(config: ManagerConfig, policy: str) -> ManagerConfig:
    from dataclasses import replace

    return replace(config, policy=policy)


class TestRebuildAudit:
    """A remediation policy's rebuilt schedule only goes live after the
    independent auditor accepts it; a corrupt rebuild is rolled back."""

    def test_corrupt_rebuild_is_rolled_back(self, wustl, monkeypatch):
        from repro.obs import recorder as _obs
        from repro.obs.recorder import Recorder

        topology, environment = wustl
        # repair=False forces every remediation through _rebuild so the
        # corruption below reliably reaches the audit (the repair path
        # has its own corrupt-repair test in TestRepairRemediation).
        config = ManagerConfig(scenario="reuse-storm", policy="reschedule",
                               num_epochs=6, seed=3, repair=False, **QUICK)

        real_rebuild = NetworkManager._rebuild

        def corrupt_rebuild(self, network, flow_set, rho_t, barred):
            rebuilt = real_rebuild(self, network, flow_set, rho_t, barred)
            if rebuilt is not None and len(rebuilt):
                entry = rebuilt.entries[0]
                rebuilt._occ_senders[entry.slot, entry.offset, 0] = (
                    (entry.request.sender + 1) % rebuilt.num_nodes)
            return rebuilt

        monkeypatch.setattr(NetworkManager, "_rebuild", corrupt_rebuild)
        with _obs.recording(Recorder()) as rec:
            report = NetworkManager(topology, environment, WUSTL_PLAN,
                                    config).run()

        attempted = [o for o in report.epochs if o.action is not None]
        assert attempted, "the storm never triggered a remediation"
        failed_audits = [o for o in report.epochs if not o.audit_ok]
        assert failed_audits, "no corrupt rebuild reached the audit"
        for outcome in failed_audits:
            assert not outcome.action_applied  # rolled back, not applied
            assert outcome.to_dict()["audit_ok"] is False
        # Rollback must also undo the barred-link additions.
        assert report.barred_links == ()

        assert rec.registry.counter_value("manager.audit_failures") >= 1
        audit_events = [e for e in rec.tracer.events()
                        if e.kind == "manager_audit_failed"]
        assert audit_events
        assert audit_events[0].fields["violations"][0]["kind"] == "occupancy"
        epoch_events = [e for e in rec.tracer.events()
                        if e.kind == "manager_epoch"]
        assert any(e.fields["audit_ok"] is False for e in epoch_events)

    def test_clean_rebuild_keeps_audit_ok(self, wustl):
        topology, environment = wustl
        config = ManagerConfig(scenario="reuse-storm", policy="reschedule",
                               num_epochs=6, seed=3, **QUICK)
        report = NetworkManager(topology, environment, WUSTL_PLAN,
                                config).run()
        assert all(o.audit_ok for o in report.epochs)
        assert any(o.action_applied for o in report.epochs)


class TestRepairRemediation:
    """Repair-first remediation: the incremental repair scheduler is the
    default path, and a repair the auditor rejects (or that fails
    placement) falls back to the audited full rebuild."""

    def test_repair_is_default_remediation_path(self, wustl):
        topology, environment = wustl
        config = ManagerConfig(scenario="reuse-storm", policy="reschedule",
                               num_epochs=6, seed=3, **QUICK)
        report = NetworkManager(topology, environment, WUSTL_PLAN,
                                config).run()
        repaired = [o for o in report.epochs if o.repair_mode == "repair"]
        assert repaired, "no remediation took the repair path"
        assert all(o.audit_ok for o in report.epochs)
        for outcome in repaired:
            assert outcome.action_applied
            assert outcome.evicted_cells > 0
            as_dict = outcome.to_dict()
            assert as_dict["repair_mode"] == "repair"
            assert as_dict["evicted_cells"] == outcome.evicted_cells
        idle = [o for o in report.epochs if o.action is None]
        assert all(o.repair_mode is None and o.evicted_cells == 0
                   for o in idle)

    def test_corrupt_repair_falls_back_to_rebuild(self, wustl,
                                                  monkeypatch):
        from repro.manager import loop as loop_mod
        from repro.obs import recorder as _obs
        from repro.obs.recorder import Recorder

        topology, environment = wustl
        config = ManagerConfig(scenario="reuse-storm", policy="reschedule",
                               num_epochs=6, seed=3, **QUICK)

        real_repair = loop_mod.repair_schedule

        def corrupt_repair(*args, **kwargs):
            outcome = real_repair(*args, **kwargs)
            if outcome.schedulable and len(outcome.schedule):
                entry = outcome.schedule.entries[0]
                outcome.schedule._occ_senders[entry.slot, entry.offset,
                                              0] = (
                    (entry.request.sender + 1)
                    % outcome.schedule.num_nodes)
            return outcome

        monkeypatch.setattr(loop_mod, "repair_schedule", corrupt_repair)
        with _obs.recording(Recorder()) as rec:
            report = NetworkManager(topology, environment, WUSTL_PLAN,
                                    config).run()

        applied = [o for o in report.epochs if o.action_applied]
        assert applied, "the storm never triggered a remediation"
        # Every corrupt repair must be rejected by the audit and land
        # via the rebuild instead — never as "repair", never unaudited.
        assert all(o.repair_mode == "rebuild" for o in applied)
        assert all(o.audit_ok for o in report.epochs)
        assert rec.registry.counter_value("manager.repair_fallbacks") >= 1
        fallback_events = [e for e in rec.tracer.events()
                           if e.kind == "manager_repair_fallback"]
        assert fallback_events
        assert fallback_events[0].fields["reason"] == "audit"
        assert (fallback_events[0].fields["violations"][0]["kind"]
                == "occupancy")
