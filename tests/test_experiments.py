"""Tests for repro.experiments (shared plumbing + per-figure runners).

These are scaled-down versions of the benchmark harness runs — few flow
sets, few repetitions — checking mechanics and the paper's qualitative
orderings where they are cheap to establish.
"""

import numpy as np
import pytest

from repro.core.constraints import validate_schedule
from repro.experiments.common import (
    POLICY_NAMES,
    build_workload,
    make_policy,
    prepare_network,
    schedule_workload,
)
from repro.experiments.detection_exp import run_detection
from repro.experiments.reliability import run_reliability
from repro.experiments.schedulability import run_sweep
from repro.flows.generator import PeriodRange
from repro.routing.traffic import TrafficType


class TestPrepareNetwork:
    def test_restricts_channels(self, indriya):
        topo, _ = indriya
        network = prepare_network(topo, num_channels=4)
        assert network.num_channels == 4
        assert list(network.topology.channel_map) == [11, 12, 13, 14]

    def test_explicit_channel_list(self, wustl):
        topo, _ = wustl
        network = prepare_network(topo, channels=(12, 14))
        assert list(network.topology.channel_map) == [12, 14]

    def test_two_access_points(self, indriya):
        topo, _ = indriya
        network = prepare_network(topo, num_channels=5)
        assert len(network.access_points) == 2

    def test_graphs_consistent_sizes(self, indriya):
        topo, _ = indriya
        network = prepare_network(topo, num_channels=5)
        assert network.communication.num_nodes == topo.num_nodes
        assert network.reuse.num_nodes == topo.num_nodes


class TestMakePolicy:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_known_policies(self, name):
        assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("XX")

    def test_rho_t_propagated(self):
        assert make_policy("RA", rho_t=3).rho_t == 3
        assert make_policy("RC", rho_t=3).rho_t == 3


class TestWorkloadAndScheduling:
    def test_build_workload_routed_and_ordered(self, indriya):
        topo, _ = indriya
        network = prepare_network(topo, num_channels=5)
        rng = np.random.default_rng(0)
        fs = build_workload(network, 10, PeriodRange(0, 2),
                            TrafficType.PEER_TO_PEER, rng)
        assert len(fs) == 10
        assert fs.all_routed()
        deadlines = [f.deadline_slots for f in fs]
        assert deadlines == sorted(deadlines)

    def test_centralized_routes_touch_ap(self, indriya):
        topo, _ = indriya
        network = prepare_network(topo, num_channels=5)
        rng = np.random.default_rng(0)
        fs = build_workload(network, 5, PeriodRange(0, 2),
                            TrafficType.CENTRALIZED, rng)
        for flow in fs:
            assert any(n in network.access_points for n in flow.route)

    def test_schedule_workload_valid(self, indriya):
        topo, _ = indriya
        network = prepare_network(topo, num_channels=5)
        rng = np.random.default_rng(1)
        fs = build_workload(network, 15, PeriodRange(0, 2),
                            TrafficType.PEER_TO_PEER, rng)
        for policy in POLICY_NAMES:
            result = schedule_workload(network, fs, policy)
            assert result.schedulable
            result.schedule.validate_basic()
            assert validate_schedule(result.schedule, network.reuse, 2) is None

    def test_nr_schedule_has_no_reuse(self, indriya):
        topo, _ = indriya
        network = prepare_network(topo, num_channels=5)
        rng = np.random.default_rng(1)
        fs = build_workload(network, 15, PeriodRange(0, 2),
                            TrafficType.PEER_TO_PEER, rng)
        result = schedule_workload(network, fs, "NR")
        assert result.schedule.num_reused_cells() == 0

    def test_rc_reuses_less_than_ra(self, indriya):
        """Conservatism: RC shares fewer cells than RA on heavy loads."""
        topo, _ = indriya
        network = prepare_network(topo, num_channels=4)
        rng = np.random.default_rng(2)
        fs = build_workload(network, 40, PeriodRange(-1, 2),
                            TrafficType.PEER_TO_PEER, rng)
        ra = schedule_workload(network, fs, "RA")
        rc = schedule_workload(network, fs, "RC")
        if ra.schedulable and rc.schedulable:
            assert (rc.schedule.num_reused_cells()
                    <= ra.schedule.num_reused_cells())


class TestSweep:
    def test_sweep_vs_flows(self, indriya):
        topo, _ = indriya
        result = run_sweep(topo, TrafficType.PEER_TO_PEER, "flows",
                           [20, 120], fixed_channels=4,
                           period_range=PeriodRange(0, 2),
                           num_flow_sets=3, seed=42)
        ratios = result.schedulable_ratios()
        assert set(ratios) == set(POLICY_NAMES)
        for policy in POLICY_NAMES:
            assert set(ratios[policy]) == {20, 120}
            for value in ratios[policy].values():
                assert 0.0 <= value <= 1.0
        # Channel reuse dominates NR at every point.
        for x in (20, 120):
            assert ratios["RA"][x] >= ratios["NR"][x]
            assert ratios["RC"][x] >= ratios["NR"][x]

    def test_sweep_vs_channels(self, indriya):
        topo, _ = indriya
        result = run_sweep(topo, TrafficType.PEER_TO_PEER, "channels",
                           [3, 5], fixed_flows=40,
                           period_range=PeriodRange(0, 2),
                           num_flow_sets=3, seed=7)
        ratios = result.schedulable_ratios()
        for x in (3, 5):
            assert ratios["RC"][x] >= ratios["NR"][x]

    def test_sweep_collects_histograms(self, indriya):
        topo, _ = indriya
        result = run_sweep(topo, TrafficType.PEER_TO_PEER, "flows",
                           [40], fixed_channels=4,
                           period_range=PeriodRange(0, 2),
                           num_flow_sets=2, seed=1)
        ra_fractions = result.tx_per_cell_fractions("RA")
        assert ra_fractions  # RA reuses, so the histogram is non-empty
        assert sum(ra_fractions.values()) == pytest.approx(1.0)

    def test_sweep_timing_recorded(self, indriya):
        topo, _ = indriya
        result = run_sweep(topo, TrafficType.PEER_TO_PEER, "flows",
                           [20], num_flow_sets=2, seed=1,
                           period_range=PeriodRange(0, 2))
        times = result.mean_times_ms()
        for policy in POLICY_NAMES:
            assert times[policy][20] > 0.0

    def test_invalid_vary(self, indriya):
        topo, _ = indriya
        with pytest.raises(ValueError):
            run_sweep(topo, TrafficType.PEER_TO_PEER, "nodes", [5])


class TestReliabilityExperiment:
    def test_runs_and_orders_policies(self, wustl):
        topo, env = wustl
        outcomes = run_reliability(topo, env, num_flow_sets=2,
                                   repetitions=20, seed=0)
        assert len(outcomes) == 6  # 2 sets x 3 policies
        by_policy = {}
        for outcome in outcomes:
            assert outcome.schedulable
            assert 0.0 <= outcome.worst_pdr <= 1.0
            assert outcome.median_pdr >= outcome.worst_pdr
            by_policy.setdefault(outcome.policy, []).append(outcome)
        # NR schedules contain no shared cells; RA schedules do.
        for outcome in by_policy["NR"]:
            assert set(outcome.tx_hist) == {1}
        for outcome in by_policy["RA"]:
            assert max(outcome.tx_hist) > 1

    def test_keep_stats(self, wustl):
        topo, env = wustl
        outcomes = run_reliability(topo, env, num_flow_sets=1,
                                   repetitions=5, seed=0, keep_stats=True,
                                   policies=("RA",))
        assert outcomes[0].stats is not None
        assert len(outcomes[0].stats.repetitions) == 5


class TestDetectionExperiment:
    def test_structure(self, wustl):
        topo, env = wustl
        from repro.testbeds import WUSTL_PLAN

        outcomes = run_detection(topo, env, WUSTL_PLAN, num_flows=60,
                                 num_epochs=2, repetitions_per_epoch=6,
                                 seed=0)
        assert len(outcomes) == 4  # (RA, RC) x (clean, wifi)
        for outcome in outcomes:
            assert outcome.schedulable
            assert len(outcome.epoch_reports) == 2
            assert set(outcome.rejected_per_epoch) == {0, 1}
        ra_clean = next(o for o in outcomes
                        if o.policy == "RA" and o.condition == "clean")
        rc_clean = next(o for o in outcomes
                        if o.policy == "RC" and o.condition == "clean")
        # RC reuses far fewer links than RA (paper: 20 vs 95).
        assert len(rc_clean.reuse_links) < len(ra_clean.reuse_links)
