"""Tests for repro.detection (K-S test, health epochs, classifier)."""

import numpy as np
import pytest
import scipy.stats

from repro.detection.classifier import (
    DetectionConfig,
    Verdict,
    diagnose_epoch,
    diagnose_link,
    rejected_links_per_epoch,
)
from repro.detection.health import (
    EpochReport,
    LinkEpochReport,
    build_epoch_report,
    build_epoch_reports,
)
from repro.detection.kstest import (
    KsResult,
    kolmogorov_survival,
    ks_2samp,
    ks_statistic,
)
from repro.simulator.stats import SimulationStats


# ----------------------------------------------------------------------
# K-S test
# ----------------------------------------------------------------------

class TestKsStatistic:
    def test_identical_samples(self):
        assert ks_statistic([1, 2, 3], [1, 2, 3]) == 0.0

    def test_disjoint_samples(self):
        assert ks_statistic([0, 1, 2], [10, 11, 12]) == 1.0

    def test_half_overlap(self):
        assert ks_statistic([1, 2], [2, 3]) == pytest.approx(0.5)

    def test_symmetry(self):
        a, b = [0.1, 0.5, 0.9], [0.3, 0.4, 0.8, 0.95]
        assert ks_statistic(a, b) == ks_statistic(b, a)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])

    def test_matches_scipy_statistic(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            a = rng.normal(0, 1, rng.integers(3, 40)).tolist()
            b = rng.normal(rng.uniform(-1, 1), 1,
                           rng.integers(3, 40)).tolist()
            ours = ks_statistic(a, b)
            scipys = scipy.stats.ks_2samp(a, b).statistic
            assert ours == pytest.approx(scipys, abs=1e-12)

    def test_ties_handled(self):
        """Heavy ties (common in PRR samples like 1.0, 1.0, ...)"""
        a = [1.0] * 10
        b = [1.0] * 9 + [0.5]
        expected = scipy.stats.ks_2samp(a, b).statistic
        assert ks_statistic(a, b) == pytest.approx(expected, abs=1e-12)


class TestKolmogorovSurvival:
    def test_at_zero(self):
        assert kolmogorov_survival(0.0) == 1.0

    def test_large_argument(self):
        assert kolmogorov_survival(5.0) < 1e-12

    def test_monotone_decreasing(self):
        values = [kolmogorov_survival(x) for x in (0.3, 0.6, 1.0, 1.5, 2.0)]
        assert values == sorted(values, reverse=True)

    def test_known_value(self):
        # Q_KS(1.0) ≈ 0.27 (standard tables).
        assert kolmogorov_survival(1.0) == pytest.approx(0.27, abs=0.01)


class TestKs2Samp:
    def test_same_distribution_high_p(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0, 1, 30).tolist()
        b = rng.uniform(0, 1, 30).tolist()
        result = ks_2samp(a, b)
        assert result.p_value > 0.05
        assert not result.reject(0.05)

    def test_different_distributions_low_p(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 40).tolist()
        b = rng.normal(3, 1, 40).tolist()
        result = ks_2samp(a, b)
        assert result.p_value < 0.001
        assert result.reject(0.05)

    def test_p_value_close_to_scipy(self):
        rng = np.random.default_rng(3)
        for shift in (0.0, 0.5, 1.5):
            a = rng.normal(0, 1, 25).tolist()
            b = rng.normal(shift, 1, 30).tolist()
            ours = ks_2samp(a, b)
            scipys = scipy.stats.ks_2samp(a, b, method="asymp")
            assert ours.p_value == pytest.approx(scipys.pvalue, abs=0.05)

    def test_reject_alpha_validation(self):
        result = ks_2samp([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            result.reject(0.0)

    def test_sizes_recorded(self):
        result = ks_2samp([1, 2, 3], [4, 5])
        assert (result.n1, result.n2) == (3, 2)


# ----------------------------------------------------------------------
# Health epochs
# ----------------------------------------------------------------------

def stats_with_pattern(reuse_prrs, cf_prrs, link=(0, 1)):
    """Build SimulationStats with one sample per repetition per category."""
    stats = SimulationStats()
    for reuse_value, cf_value in zip(reuse_prrs, cf_prrs):
        record = stats.start_repetition()
        for _ in range(10):
            record.record(link, True, np.random.default_rng(0).random()
                          < reuse_value)
        # Deterministic approximations: encode the PRR by success counts.
        record.reuse[link].attempts = 10
        record.reuse[link].successes = int(round(10 * reuse_value))
        record.contention_free[link].attempts = 10
        record.contention_free[link].successes = int(round(10 * cf_value))
    return stats


class TestEpochReports:
    def test_grouping(self):
        stats = stats_with_pattern([1.0] * 6, [1.0] * 6)
        reports = build_epoch_reports(stats, repetitions_per_epoch=3)
        assert len(reports) == 2
        assert reports[0].epoch == 0
        assert len(reports[0].links[(0, 1)].reuse_samples) == 3

    def test_partial_epoch_dropped(self):
        stats = stats_with_pattern([1.0] * 7, [1.0] * 7)
        reports = build_epoch_reports(stats, repetitions_per_epoch=3)
        assert len(reports) == 2

    def test_pooled_prr(self):
        stats = stats_with_pattern([0.5, 1.0], [1.0, 1.0])
        reports = build_epoch_reports(stats, repetitions_per_epoch=2)
        report = reports[0].links[(0, 1)]
        assert report.reuse_prr == pytest.approx(0.75)
        assert report.contention_free_prr == 1.0

    def test_reuse_links_listed(self):
        stats = SimulationStats()
        record = stats.start_repetition()
        record.record((0, 1), True, True)
        record.record((2, 3), False, True)
        reports = build_epoch_reports(stats, repetitions_per_epoch=1)
        assert reports[0].reuse_links() == [(0, 1)]

    def test_invalid_epoch_size(self):
        with pytest.raises(ValueError):
            build_epoch_reports(SimulationStats(), 0)

    def test_fewer_repetitions_than_one_epoch_yields_nothing(self):
        stats = stats_with_pattern([1.0] * 2, [1.0] * 2)
        assert build_epoch_reports(stats, repetitions_per_epoch=3) == []

    @pytest.mark.parametrize("total, per_epoch, expected",
                             [(5, 3, 1), (6, 3, 2), (1, 1, 1), (17, 18, 0),
                              (19, 18, 1)])
    def test_non_divisible_sample_counts(self, total, per_epoch, expected):
        stats = stats_with_pattern([1.0] * total, [1.0] * total)
        reports = build_epoch_reports(stats, per_epoch)
        assert len(reports) == expected
        for epoch, report in enumerate(reports):
            assert report.epoch == epoch
            assert len(report.links[(0, 1)].reuse_samples) == per_epoch

    def test_contention_free_only_link_has_empty_reuse_side(self):
        stats = SimulationStats()
        record = stats.start_repetition()
        record.record((0, 1), False, True)  # never in a shared cell
        reports = build_epoch_reports(stats, repetitions_per_epoch=1)
        report = reports[0].links[(0, 1)]
        assert report.reuse_samples == ()
        assert report.reuse_prr is None
        assert report.contention_free_prr == 1.0
        assert reports[0].reuse_links() == []

    def test_streaming_report_matches_batched_slice(self):
        """build_epoch_report over an explicit window (the manager's
        streaming path) must equal the batched grouping's epoch."""
        reuse = [1.0, 0.5, 0.8, 0.2, 0.6, 0.9]
        cf = [1.0, 1.0, 0.9, 0.8, 1.0, 0.7]
        stats = stats_with_pattern(reuse, cf)
        batched = build_epoch_reports(stats, repetitions_per_epoch=3)
        streamed = build_epoch_report(stats, epoch=1, window=(3, 6))
        assert streamed == batched[1]

    def test_default_window_spans_every_repetition(self):
        stats = stats_with_pattern([1.0, 0.0], [1.0, 1.0])
        report = build_epoch_report(stats, epoch=0)
        assert len(report.links[(0, 1)].reuse_samples) == 2
        assert report.links[(0, 1)].reuse_prr == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Classifier
# ----------------------------------------------------------------------

def link_report(reuse_samples, cf_samples, link=(0, 1), epoch=0):
    reuse_prr = (sum(reuse_samples) / len(reuse_samples)
                 if reuse_samples else None)
    cf_prr = sum(cf_samples) / len(cf_samples) if cf_samples else None
    return LinkEpochReport(
        link=link, epoch=epoch,
        reuse_samples=tuple(reuse_samples),
        contention_free_samples=tuple(cf_samples),
        reuse_prr=reuse_prr, contention_free_prr=cf_prr)


class TestClassifier:
    def test_healthy_link_is_ok(self):
        report = link_report([1.0] * 18, [1.0] * 18)
        diagnosis = diagnose_link(report)
        assert diagnosis.verdict is Verdict.OK

    def test_reuse_degraded_link_rejected(self):
        """Good contention-free PRR, bad reuse PRR → reject (reuse is the
        cause)."""
        report = link_report([0.4, 0.5, 0.3, 0.6, 0.5, 0.4] * 3,
                             [1.0, 0.95, 1.0, 0.98, 1.0, 0.97] * 3)
        diagnosis = diagnose_link(report)
        assert diagnosis.verdict is Verdict.REJECT
        assert diagnosis.ks is not None
        assert diagnosis.ks.p_value < 0.05

    def test_externally_degraded_link_accepted(self):
        """Bad in both conditions → accept (cause is elsewhere)."""
        samples = [0.5, 0.6, 0.4, 0.55, 0.45, 0.5] * 3
        report = link_report(samples, samples)
        diagnosis = diagnose_link(report)
        assert diagnosis.verdict is Verdict.ACCEPT

    def test_non_reuse_link_not_considered(self):
        report = link_report([], [1.0] * 10)
        assert diagnose_link(report) is None

    def test_insufficient_data(self):
        report = link_report([0.5], [])
        diagnosis = diagnose_link(report)
        assert diagnosis.verdict is Verdict.INSUFFICIENT_DATA

    def test_threshold_boundary(self):
        config = DetectionConfig(prr_threshold=0.9)
        report = link_report([0.9] * 10, [1.0] * 10)
        assert diagnose_link(report, config).verdict is Verdict.OK

    def test_diagnose_epoch_sorted(self):
        links = {
            (2, 3): link_report([1.0] * 5, [1.0] * 5, link=(2, 3)),
            (0, 1): link_report([1.0] * 5, [1.0] * 5, link=(0, 1)),
        }
        report = EpochReport(epoch=0, links=links)
        diagnoses = diagnose_epoch(report)
        assert [d.link for d in diagnoses] == [(0, 1), (2, 3)]

    def test_rejected_links_per_epoch(self):
        degraded = link_report([0.4, 0.5, 0.3, 0.6, 0.5, 0.4] * 3,
                               [1.0, 0.95, 1.0, 0.98, 1.0, 0.97] * 3)
        healthy = link_report([1.0] * 18, [1.0] * 18, link=(4, 5))
        epoch = EpochReport(epoch=0, links={(0, 1): degraded,
                                            (4, 5): healthy})
        rejected = rejected_links_per_epoch([epoch])
        assert rejected == {0: [(0, 1)]}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectionConfig(alpha=1.5)
        with pytest.raises(ValueError):
            DetectionConfig(prr_threshold=0.0)
        with pytest.raises(ValueError):
            DetectionConfig(min_samples=0)
