"""Tests for repro.analysis.response_time (analytic delay bounds)."""

import numpy as np
import pytest

from repro.analysis.response_time import (
    analyze_flow_set,
    conflict_bound,
    conflicting_demand,
    is_schedulable_by_analysis,
    response_time_bound,
    slot_demand,
    workload_bound,
)
from repro.core.nr import NoReusePolicy
from repro.core.scheduler import FixedPriorityScheduler
from repro.experiments.common import build_workload, prepare_network
from repro.flows.flow import Flow, FlowSet
from repro.flows.generator import PeriodRange
from repro.network.graphs import ChannelReuseGraph, CommunicationGraph
from repro.routing.traffic import TrafficType, assign_routes

from conftest import build_topology


def routed(specs, topology):
    graph = CommunicationGraph.from_topology(topology, 0.9)
    flows = [Flow(i, s, d, p, dl) for i, (s, d, p, dl) in enumerate(specs)]
    ordered = FlowSet(flows).deadline_monotonic()
    return assign_routes(ordered, graph, TrafficType.PEER_TO_PEER)


class TestDemandTerms:
    def test_slot_demand(self, line_topology):
        fs = routed([(0, 3, 100, 100)], line_topology)
        assert slot_demand(fs[0]) == 6  # 3 hops x 2 attempts

    def test_slot_demand_requires_route(self):
        with pytest.raises(ValueError):
            slot_demand(Flow(0, 0, 3, 100, 100))

    def test_conflicting_demand_disjoint(self, line_topology):
        fs = routed([(0, 1, 100, 100), (4, 5, 100, 100)], line_topology)
        assert conflicting_demand(fs[0], fs[1]) == 0

    def test_conflicting_demand_overlapping(self, line_topology):
        fs = routed([(0, 2, 100, 100), (2, 4, 100, 100)], line_topology)
        # fs[1]'s link (2,3) touches node 2 of fs[0]'s route.
        assert conflicting_demand(fs[0], fs[1]) == 2

    def test_workload_bound_scales_with_window(self, line_topology):
        fs = routed([(0, 2, 100, 100)], line_topology)
        assert workload_bound(fs[0], 100) == 8   # 2 releases x 4 slots
        assert workload_bound(fs[0], 300) == 16  # 4 releases

    def test_conflict_bound_zero_when_disjoint(self, line_topology):
        fs = routed([(0, 1, 100, 100), (4, 5, 100, 100)], line_topology)
        assert conflict_bound(fs[0], fs[1], 500) == 0


class TestResponseTime:
    def test_highest_priority_flow_bound_is_own_demand(self, line_topology):
        fs = routed([(0, 3, 100, 50)], line_topology)
        result = response_time_bound(fs, 0, num_channels=2)
        assert result.bound_slots == 6
        assert result.schedulable

    def test_unschedulable_when_demand_exceeds_deadline(self, line_topology):
        fs = routed([(0, 5, 100, 8)], line_topology)  # needs 10 slots
        result = response_time_bound(fs, 0, num_channels=2)
        # C_i alone exceeds the deadline after the first update check.
        assert not result.schedulable

    def test_interference_increases_bound(self, grid_topology):
        light = routed([(0, 2, 100, 100)], grid_topology)
        heavy = routed([(0, 2, 100, 90), (2, 8, 100, 100)], grid_topology)
        alone = response_time_bound(light, 0, num_channels=2)
        with_interference = response_time_bound(heavy, 1, num_channels=2)
        assert with_interference.bound_slots is None or \
            with_interference.bound_slots > alone.bound_slots

    def test_more_channels_reduce_contention(self, grid_topology):
        fs = routed([(0, 1, 100, 100), (3, 4, 100, 100),
                     (6, 7, 100, 100)], grid_topology)
        few = response_time_bound(fs, 2, num_channels=1)
        many = response_time_bound(fs, 2, num_channels=8)
        if few.bound_slots is not None and many.bound_slots is not None:
            assert many.bound_slots <= few.bound_slots

    def test_invalid_channels(self, line_topology):
        fs = routed([(0, 2, 100, 100)], line_topology)
        with pytest.raises(ValueError):
            response_time_bound(fs, 0, num_channels=0)

    def test_analyze_flow_set_covers_all(self, grid_topology):
        fs = routed([(0, 2, 100, 100), (6, 8, 200, 200)], grid_topology)
        results = analyze_flow_set(fs, num_channels=4)
        assert set(results) == {f.flow_id for f in fs}


class TestAnalysisIsSufficient:
    """The headline property: analysis-accepted workloads really are
    schedulable by the constructive NR scheduler."""

    @pytest.mark.parametrize("seed", range(8))
    def test_no_false_positives_on_random_workloads(self, wustl, seed):
        topology, _ = wustl
        network = prepare_network(topology, channels=(11, 12, 13, 14))
        rng = np.random.default_rng(seed)
        flows = build_workload(network, 10, PeriodRange(0, 1),
                               TrafficType.PEER_TO_PEER, rng)
        if not is_schedulable_by_analysis(flows, num_channels=4):
            pytest.skip("analysis inconclusive for this seed")
        scheduler = FixedPriorityScheduler(
            network.topology.num_nodes, 4, network.reuse, NoReusePolicy())
        assert scheduler.run(flows).schedulable

    def test_analysis_more_pessimistic_than_scheduler(self, wustl):
        """Across a load range, analysis accepts a subset of what the
        constructive scheduler accepts."""
        topology, _ = wustl
        network = prepare_network(topology, channels=(11, 12, 13, 14))
        analysis_yes = scheduler_yes = 0
        for seed in range(6):
            rng = np.random.default_rng(100 + seed)
            flows = build_workload(network, 30, PeriodRange(-1, 1),
                                   TrafficType.PEER_TO_PEER, rng)
            if is_schedulable_by_analysis(flows, num_channels=4):
                analysis_yes += 1
            scheduler = FixedPriorityScheduler(
                network.topology.num_nodes, 4, network.reuse,
                NoReusePolicy())
            if scheduler.run(flows).schedulable:
                scheduler_yes += 1
        assert analysis_yes <= scheduler_yes
