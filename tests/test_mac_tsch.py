"""Tests for repro.mac.tsch."""

import pytest

from repro.mac.channels import ChannelMap
from repro.mac.tsch import (
    HoppingSequence,
    SLOT_DURATION_MS,
    SLOTS_PER_SECOND,
    SlotTiming,
    hop_channel,
    seconds_to_slots,
    slots_to_seconds,
)


class TestSlotConversion:
    def test_one_second_is_100_slots(self):
        assert seconds_to_slots(1.0) == 100

    def test_half_second(self):
        assert seconds_to_slots(0.5) == 50

    def test_paper_period_range(self):
        """P = [2^-1, 2^3] seconds maps to 50..800 slots."""
        assert [seconds_to_slots(2.0 ** e) for e in range(-1, 4)] == [
            50, 100, 200, 400, 800]

    def test_non_slot_aligned_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_slots(0.125)  # 12.5 slots

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_slots(0.0)

    def test_roundtrip(self):
        assert slots_to_seconds(seconds_to_slots(2.0)) == 2.0

    def test_constants_consistent(self):
        assert SLOTS_PER_SECOND * SLOT_DURATION_MS == 1000.0


class TestHopChannel:
    def test_formula(self):
        """logicalChannel = (ASN + offset) mod |M| (paper Section III-A)."""
        assert hop_channel(asn=7, channel_offset=3, num_channels=4) == 2

    def test_asn_zero(self):
        assert hop_channel(0, 2, 5) == 2

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError):
            hop_channel(0, 5, 5)

    def test_negative_asn_rejected(self):
        with pytest.raises(ValueError):
            hop_channel(-1, 0, 5)

    def test_each_offset_distinct_channel_same_slot(self):
        """Distinct offsets never share a channel within a slot."""
        channels = {hop_channel(asn=42, channel_offset=c, num_channels=8)
                    for c in range(8)}
        assert len(channels) == 8


class TestHoppingSequence:
    def test_cycles_through_all_channels(self):
        """Any offset visits every physical channel across |M| slots.

        This is the property forcing the paper's 'reliable on all
        channels' admission rule for communication-graph edges.
        """
        sequence = HoppingSequence(ChannelMap.first_n(4))
        visited = sequence.channels_visited(channel_offset=1, num_slots=4)
        assert sorted(visited) == [11, 12, 13, 14]

    def test_periodicity(self):
        sequence = HoppingSequence(ChannelMap.first_n(3))
        first = sequence.channels_visited(0, 3)
        second = sequence.channels_visited(0, 3, start_asn=3)
        assert first == second

    def test_physical_channel(self):
        sequence = HoppingSequence(ChannelMap((20, 25)))
        assert sequence.physical_channel(asn=0, channel_offset=0) == 20
        assert sequence.physical_channel(asn=1, channel_offset=0) == 25


class TestSlotTiming:
    def test_default_template_fits_10ms(self):
        assert SlotTiming().fits_slot()

    def test_total(self):
        timing = SlotTiming(1000.0, 2000.0, 500.0, 500.0)
        assert timing.total_us() == 4000.0

    def test_oversized_template_detected(self):
        timing = SlotTiming(max_packet_us=9000.0)
        assert not timing.fits_slot()
