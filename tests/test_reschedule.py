"""Tests for repro.core.reschedule (Section VI's remediation loop)."""

import numpy as np
import pytest

from repro.core.constraints import validate_schedule
from repro.core.ra import AggressiveReusePolicy
from repro.core.rc import ConservativeReusePolicy
from repro.core.reschedule import (
    ReuseBarrierPolicy,
    links_sharing_cells_with,
    reschedule_without_reuse_on,
)
from repro.core.schedule import Schedule
from repro.core.scheduler import FixedPriorityScheduler
from repro.experiments.common import (
    build_workload,
    prepare_network,
    schedule_workload,
)
from repro.flows.generator import PeriodRange
from repro.routing.traffic import TrafficType

from test_core_schedule import request


@pytest.fixture(scope="module")
def ra_scenario(wustl):
    """A heavy RA schedule on WUSTL with plenty of reuse."""
    topology, environment = wustl
    network = prepare_network(topology, channels=(11, 12, 13, 14))
    rng = np.random.default_rng(2)
    flows = build_workload(network, 60, PeriodRange(-1, 1),
                           TrafficType.PEER_TO_PEER, rng)
    result = schedule_workload(network, flows, "RA")
    assert result.schedulable
    assert result.schedule.num_reused_cells() > 0
    return network, flows, result


class TestLinksSharing:
    def test_cell_partners_found(self):
        schedule = Schedule(8, 10, 1)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5), 0, 0)
        schedule.add(request(6, 7), 1, 0)
        partners = links_sharing_cells_with(schedule, [(0, 1)])
        assert partners == {(4, 5)}

    def test_direction_insensitive(self):
        schedule = Schedule(8, 10, 1)
        schedule.add(request(1, 0), 0, 0)
        schedule.add(request(4, 5), 0, 0)
        assert links_sharing_cells_with(schedule, [(0, 1)]) == {(4, 5)}

    def test_no_reuse_no_partners(self):
        schedule = Schedule(8, 10, 2)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5), 0, 1)
        assert links_sharing_cells_with(schedule, [(0, 1)]) == set()


class TestReschedule:
    def test_victims_moved_to_exclusive_cells(self, ra_scenario):
        network, flows, original = ra_scenario
        victims = original.schedule.reuse_links()[:3]
        rescheduled = reschedule_without_reuse_on(
            flows, network.topology.num_nodes, 4, network.reuse,
            AggressiveReusePolicy(rho_t=2), victims)
        assert rescheduled.schedulable
        victim_set = set(victims) | {(v, u) for u, v in victims}
        for _, _, transmissions in rescheduled.schedule.reused_cells():
            for entry in transmissions:
                assert entry.request.link not in victim_set, (
                    f"victim {entry.request.link} still shares a cell")

    def test_rescheduled_schedule_still_valid(self, ra_scenario):
        network, flows, original = ra_scenario
        victims = original.schedule.reuse_links()[:3]
        rescheduled = reschedule_without_reuse_on(
            flows, network.topology.num_nodes, 4, network.reuse,
            AggressiveReusePolicy(rho_t=2), victims)
        rescheduled.schedule.validate_basic()
        assert validate_schedule(rescheduled.schedule, network.reuse,
                                 2) is None

    def test_non_victims_may_still_reuse(self, ra_scenario):
        network, flows, original = ra_scenario
        victims = original.schedule.reuse_links()[:1]
        rescheduled = reschedule_without_reuse_on(
            flows, network.topology.num_nodes, 4, network.reuse,
            AggressiveReusePolicy(rho_t=2), victims)
        # Barring one link doesn't force a reuse-free schedule.
        assert rescheduled.schedule.num_reused_cells() > 0

    def test_empty_victim_set_equals_original_policy(self, ra_scenario):
        network, flows, original = ra_scenario
        rescheduled = reschedule_without_reuse_on(
            flows, network.topology.num_nodes, 4, network.reuse,
            AggressiveReusePolicy(rho_t=2), [])
        assert rescheduled.schedulable
        assert (rescheduled.schedule.num_reused_cells()
                == original.schedule.num_reused_cells())

    def test_works_with_rc_policy(self, ra_scenario):
        network, flows, _ = ra_scenario
        result = reschedule_without_reuse_on(
            flows, network.topology.num_nodes, 4, network.reuse,
            ConservativeReusePolicy(rho_t=2), [(0, 1)])
        assert result.schedulable

    def test_barrier_policy_name(self):
        policy = ReuseBarrierPolicy(AggressiveReusePolicy(rho_t=2),
                                    {(0, 1)})
        assert policy.name == "RA+barrier"

    def test_barrier_expands_directions(self):
        policy = ReuseBarrierPolicy(AggressiveReusePolicy(rho_t=2),
                                    {(0, 1)})
        assert (1, 0) in policy.victim_links
