"""Tests for repro.core.constraints (the paper's Section V-A rules)."""

import math

import pytest

from repro.core.constraints import (
    NO_REUSE,
    conflicts_in_slot,
    feasible_offsets,
    offset_satisfies_channel_constraint,
    placement_is_valid,
    validate_schedule,
)
from repro.core.schedule import Schedule
from repro.network.graphs import ChannelReuseGraph

from test_core_schedule import request


@pytest.fixture
def line_reuse_graph(line_topology):
    """Reuse graph of the 6-node line: hop(u, v) == |u - v|."""
    return ChannelReuseGraph.from_topology(line_topology)


class TestTransmissionConflict:
    def test_no_conflict_on_empty_slot(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        assert not conflicts_in_slot(schedule, 0, 1, 5)

    def test_shared_sender_conflicts(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        schedule.add(request(0, 1), 5, 0)
        assert conflicts_in_slot(schedule, 0, 2, 5)

    def test_shared_receiver_conflicts(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        schedule.add(request(0, 1), 5, 0)
        assert conflicts_in_slot(schedule, 2, 1, 5)

    def test_cross_roles_conflict(self, line_reuse_graph):
        """Sender of one = receiver of other is still a conflict
        (half-duplex radios, paper Section III-B)."""
        schedule = Schedule(6, 10, 2)
        schedule.add(request(0, 1), 5, 0)
        assert conflicts_in_slot(schedule, 1, 2, 5)

    def test_disjoint_nodes_no_conflict(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        schedule.add(request(0, 1), 5, 0)
        assert not conflicts_in_slot(schedule, 3, 4, 5)


class TestChannelConstraint:
    def test_empty_cell_always_ok(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        assert offset_satisfies_channel_constraint(
            schedule, line_reuse_graph, 0, 1, 5, 0, NO_REUSE)
        assert offset_satisfies_channel_constraint(
            schedule, line_reuse_graph, 0, 1, 5, 0, 2)

    def test_no_reuse_forbids_occupied_cell(self, line_reuse_graph):
        """Rule 2a: with ρ = ∞ the offset must be unassigned."""
        schedule = Schedule(6, 10, 2)
        schedule.add(request(4, 5), 5, 0)
        assert not offset_satisfies_channel_constraint(
            schedule, line_reuse_graph, 0, 1, 5, 0, NO_REUSE)

    def test_reuse_requires_rho_hops_both_ways(self, line_reuse_graph):
        """Rule 2b: new sender ≥ ρ hops from existing receiver AND
        existing sender ≥ ρ hops from new receiver."""
        schedule = Schedule(6, 10, 2)
        schedule.add(request(0, 1), 5, 0)  # occupies offset 0
        # Candidate 4->5: hop(4, 1) = 3 and hop(0, 5) = 5.
        assert offset_satisfies_channel_constraint(
            schedule, line_reuse_graph, 4, 5, 5, 0, 3)
        # rho = 4 fails because hop(new sender 4, existing receiver 1) = 3.
        assert not offset_satisfies_channel_constraint(
            schedule, line_reuse_graph, 4, 5, 5, 0, 4)

    def test_reuse_checks_new_receiver_against_existing_sender(
            self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        schedule.add(request(5, 4), 5, 0)
        # Candidate 0->2: hop(0, 4) = 4 ok at rho 3; hop(5, 2) = 3 ok;
        # at rho 4, hop(5, 2) = 3 violates.
        assert offset_satisfies_channel_constraint(
            schedule, line_reuse_graph, 0, 2, 5, 0, 3)
        assert not offset_satisfies_channel_constraint(
            schedule, line_reuse_graph, 0, 2, 5, 0, 4)

    def test_all_occupants_must_satisfy(self, line_reuse_graph):
        schedule = Schedule(6, 20, 1)
        schedule.add(request(0, 1), 5, 0)
        schedule.add(request(4, 5), 5, 0)  # ok at rho 3 vs (0,1)
        # A third transmission 2->3 is within 2 hops of everything.
        assert not offset_satisfies_channel_constraint(
            schedule, line_reuse_graph, 2, 3, 5, 0, 2)

    def test_feasible_offsets_filtering(self, line_reuse_graph):
        schedule = Schedule(6, 10, 3)
        schedule.add(request(0, 1), 5, 0)
        schedule.add(request(2, 3), 5, 1)
        # Candidate 4->5 at rho 2: offset 0 ok (hop(4,1)=3, hop(0,5)=5);
        # offset 1 fails (hop(2,5)=3 ok but hop(4,3)=1 < 2);
        # offset 2 empty -> ok.
        assert feasible_offsets(schedule, line_reuse_graph, 4, 5, 5, 2) == [0, 2]

    def test_placement_is_valid_combines_both(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        schedule.add(request(0, 1), 5, 0)
        assert not placement_is_valid(
            schedule, line_reuse_graph, 1, 2, 5, 1, NO_REUSE)  # conflict
        assert placement_is_valid(
            schedule, line_reuse_graph, 3, 4, 5, 1, NO_REUSE)
        assert not placement_is_valid(
            schedule, line_reuse_graph, 3, 4, 5, 0, NO_REUSE)  # occupied


class TestValidateSchedule:
    def test_valid_schedule_passes(self, line_reuse_graph):
        schedule = Schedule(6, 10, 1)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(4, 5), 0, 0)  # hop(4,1)=3, hop(0,5)=5
        assert validate_schedule(schedule, line_reuse_graph, 3) is None

    def test_too_close_reuse_detected(self, line_reuse_graph):
        schedule = Schedule(6, 10, 1)
        schedule.add(request(0, 1), 0, 0)
        schedule.add(request(3, 4), 0, 0)  # hop(3,1)=2 < 3
        error = validate_schedule(schedule, line_reuse_graph, 3)
        assert error is not None and "closer than" in error
