"""Tests for repro.flows (flow model + workload generation)."""

import numpy as np
import pytest

from repro.flows.flow import Flow, FlowSet
from repro.flows.generator import (
    PeriodRange,
    generate_fixed_period_flow_set,
    generate_flow_set,
    pick_access_points,
)
from repro.network.graphs import CommunicationGraph


def flow(fid, src=0, dst=5, period=100, deadline=None, route=()):
    if deadline is None:
        deadline = period
    return Flow(fid, src, dst, period, deadline, tuple(route))


class TestFlow:
    def test_valid_flow(self):
        f = flow(0, period=100, deadline=80)
        assert f.period_slots == 100
        assert f.deadline_slots == 80

    def test_deadline_must_not_exceed_period(self):
        with pytest.raises(ValueError):
            flow(0, period=100, deadline=101)

    def test_deadline_positive(self):
        with pytest.raises(ValueError):
            flow(0, period=100, deadline=0)

    def test_source_destination_distinct(self):
        with pytest.raises(ValueError):
            Flow(0, 3, 3, 100, 100)

    def test_route_endpoints_checked(self):
        with pytest.raises(ValueError):
            flow(0, src=0, dst=5, route=[1, 2, 5])
        with pytest.raises(ValueError):
            flow(0, src=0, dst=5, route=[0, 2, 4])

    def test_links(self):
        f = flow(0, route=[0, 2, 4, 5])
        assert f.links == ((0, 2), (2, 4), (4, 5))
        assert f.num_hops == 3

    def test_links_collapse_wired_handoff(self):
        """Centralized routes repeat the AP node at the wire crossing."""
        f = flow(0, route=[0, 3, 3, 5])
        assert f.links == ((0, 3), (3, 5))

    def test_with_route(self):
        f = flow(0).with_route([0, 1, 5])
        assert f.has_route
        assert f.links == ((0, 1), (1, 5))

    def test_wire_after_excludes_hop(self):
        """Different up/downlink APs: the AP->AP hop is wired."""
        f = flow(0, src=0, dst=5).with_route([0, 2, 3, 5], wire_after=1)
        assert f.links == ((0, 2), (3, 5))
        assert f.num_hops == 2

    def test_wire_after_requires_route(self):
        with pytest.raises(ValueError):
            Flow(0, 0, 5, 100, 100, wire_after=0)

    def test_wire_after_out_of_range(self):
        with pytest.raises(ValueError):
            Flow(0, 0, 5, 100, 100, route=(0, 2, 5), wire_after=2)

    def test_instances(self):
        f = flow(0, period=50, deadline=40)
        instances = list(f.instances(200))
        assert len(instances) == 4
        assert instances[0].release_slot == 0
        assert instances[0].deadline_slot == 39
        assert instances[3].release_slot == 150
        assert instances[3].deadline_slot == 189

    def test_instances_require_multiple(self):
        with pytest.raises(ValueError):
            list(flow(0, period=60).instances(100))

    def test_instance_window(self):
        f = flow(0, period=100, deadline=70)
        inst = next(f.instances(100))
        assert inst.window == (0, 69)


class TestFlowSet:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            FlowSet([flow(1), flow(1)])

    def test_hyperperiod_lcm(self):
        fs = FlowSet([flow(0, period=50), flow(1, period=400),
                      flow(2, period=100)])
        assert fs.hyperperiod() == 400

    def test_empty_hyperperiod(self):
        assert FlowSet([]).hyperperiod() == 0

    def test_deadline_monotonic_order(self):
        fs = FlowSet([flow(0, period=100, deadline=90),
                      flow(1, period=100, deadline=30),
                      flow(2, period=100, deadline=60)])
        ordered = fs.deadline_monotonic()
        assert [f.flow_id for f in ordered] == [1, 2, 0]

    def test_dm_tie_broken_by_id(self):
        fs = FlowSet([flow(1, period=100, deadline=50),
                      flow(0, period=100, deadline=50)])
        assert [f.flow_id for f in fs.deadline_monotonic()] == [0, 1]

    def test_rate_monotonic_order(self):
        fs = FlowSet([flow(0, period=400), flow(1, period=50)])
        assert [f.flow_id for f in fs.rate_monotonic()] == [1, 0]

    def test_total_instances(self):
        fs = FlowSet([flow(0, period=50), flow(1, period=100)])
        assert fs.total_instances() == 3

    def test_utilization(self):
        fs = FlowSet([flow(0, period=100, route=[0, 1, 5])])
        assert fs.utilization() == pytest.approx(2 * 2 / 100)
        assert fs.utilization(attempts_per_link=1) == pytest.approx(2 / 100)

    def test_utilization_requires_routes(self):
        with pytest.raises(ValueError):
            FlowSet([flow(0)]).utilization()

    def test_all_routed(self):
        assert not FlowSet([flow(0)]).all_routed()
        assert FlowSet([flow(0, route=[0, 5])]).all_routed()


class TestPeriodRange:
    def test_periods(self):
        assert PeriodRange(-1, 2).periods_slots() == [50, 100, 200, 400]

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            PeriodRange(3, 1)

    def test_too_fine_rejected(self):
        with pytest.raises(ValueError):
            PeriodRange(-3, 0)

    def test_single_period(self):
        assert PeriodRange(0, 0).periods_slots() == [100]


class TestGenerator:
    def test_pick_access_points_highest_degree(self, grid_topology):
        aps = pick_access_points(grid_topology, 0.9, count=2)
        assert aps[0] == 4  # grid center has degree 4
        assert len(aps) == 2

    def test_generate_flow_set_properties(self, grid_topology):
        graph = CommunicationGraph.from_topology(grid_topology, 0.9)
        rng = np.random.default_rng(0)
        fs, aps = generate_flow_set(grid_topology, graph, 10,
                                    PeriodRange(0, 2), rng)
        assert len(fs) == 10
        assert len(aps) == 2
        for f in fs:
            assert f.source != f.destination
            assert f.source not in aps and f.destination not in aps
            assert f.period_slots in (100, 200, 400)
            assert f.period_slots // 2 <= f.deadline_slots <= f.period_slots
            assert not f.has_route

    def test_generate_deterministic(self, grid_topology):
        graph = CommunicationGraph.from_topology(grid_topology, 0.9)
        a, _ = generate_flow_set(grid_topology, graph, 5, PeriodRange(0, 1),
                                 np.random.default_rng(7))
        b, _ = generate_flow_set(grid_topology, graph, 5, PeriodRange(0, 1),
                                 np.random.default_rng(7))
        assert [(f.source, f.destination, f.period_slots, f.deadline_slots)
                for f in a] == \
               [(f.source, f.destination, f.period_slots, f.deadline_slots)
                for f in b]

    def test_generate_zero_flows_rejected(self, grid_topology):
        graph = CommunicationGraph.from_topology(grid_topology, 0.9)
        with pytest.raises(ValueError):
            generate_flow_set(grid_topology, graph, 0, PeriodRange(0, 1),
                              np.random.default_rng(0))

    def test_fixed_period_mix(self, grid_topology):
        graph = CommunicationGraph.from_topology(grid_topology, 0.9)
        fs, _ = generate_fixed_period_flow_set(
            grid_topology, graph, ((0.5, 3), (1.0, 2)),
            np.random.default_rng(0))
        periods = sorted(f.period_slots for f in fs)
        assert periods == [50, 50, 50, 100, 100]
        assert all(f.deadline_slots == f.period_slots for f in fs)

    def test_fixed_period_random_deadlines(self, grid_topology):
        graph = CommunicationGraph.from_topology(grid_topology, 0.9)
        fs, _ = generate_fixed_period_flow_set(
            grid_topology, graph, ((1.0, 20),), np.random.default_rng(0),
            deadline_equals_period=False)
        assert any(f.deadline_slots < f.period_slots for f in fs)
        assert all(f.deadline_slots >= 50 for f in fs)
