"""Tests for repro.analysis.latency."""

import numpy as np
import pytest

from repro.analysis.latency import (
    InstanceLatency,
    LatencySummary,
    instance_latencies,
    per_flow_worst_latency,
)
from repro.core.schedule import Schedule
from repro.experiments.common import (
    build_workload,
    prepare_network,
    schedule_workload,
)
from repro.flows.flow import Flow, FlowSet
from repro.flows.generator import PeriodRange
from repro.routing.traffic import TrafficType

from test_core_schedule import request


def two_hop_flow_schedule():
    flow = Flow(0, 0, 2, 100, 80, (0, 1, 2))
    flow_set = FlowSet([flow])
    schedule = Schedule(3, 100, 1)
    schedule.add(request(0, 1, hop=0, attempt=0, deadline=79), 0, 0)
    schedule.add(request(0, 1, hop=0, attempt=1, deadline=79), 1, 0)
    schedule.add(request(1, 2, hop=1, attempt=0, deadline=79), 4, 0)
    schedule.add(request(1, 2, hop=1, attempt=1, deadline=79), 7, 0)
    return flow_set, schedule


class TestInstanceLatencies:
    def test_latency_measured_to_last_slot(self):
        flow_set, schedule = two_hop_flow_schedule()
        latencies = instance_latencies(schedule, flow_set)
        assert len(latencies) == 1
        latency = latencies[0]
        assert latency.finish_slot == 7
        assert latency.latency_slots == 8
        assert latency.latency_ms == 80.0
        assert latency.slack_slots == 72

    def test_multiple_instances(self):
        flow = Flow(0, 0, 1, 50, 50, (0, 1))
        flow_set = FlowSet([flow])
        schedule = Schedule(2, 100, 1)
        schedule.add(request(0, 1, instance=0, deadline=49), 3, 0)
        schedule.add(request(0, 1, instance=0, attempt=1, deadline=49), 4, 0)
        schedule.add(request(0, 1, instance=1, deadline=99, release=50), 50, 0)
        schedule.add(request(0, 1, instance=1, attempt=1, deadline=99,
                             release=50), 51, 0)
        latencies = instance_latencies(schedule, flow_set)
        assert [l.latency_slots for l in latencies] == [5, 2]

    def test_unknown_flow_rejected(self):
        _, schedule = two_hop_flow_schedule()
        with pytest.raises(ValueError):
            instance_latencies(schedule, FlowSet([]))

    def test_per_flow_worst(self):
        latencies = [
            InstanceLatency(0, 0, 0, 4, 5, 50),
            InstanceLatency(0, 1, 50, 58, 9, 50),
            InstanceLatency(1, 0, 0, 2, 3, 50),
        ]
        assert per_flow_worst_latency(latencies) == {0: 9, 1: 3}


class TestLatencySummary:
    def test_summary_values(self):
        latencies = [InstanceLatency(0, i, 0, l - 1, l, 100)
                     for i, l in enumerate([2, 4, 6, 8, 10])]
        summary = LatencySummary.from_latencies(latencies)
        assert summary.mean == 6.0
        assert summary.median == 6.0
        assert summary.maximum == 10
        assert summary.min_slack == 90
        assert summary.n == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.from_latencies([])


class TestLatencyOnRealSchedules:
    def test_reuse_compresses_latency(self, wustl):
        """Channel reuse's payoff: RC/RA finish instances no later than
        NR on the same heavy workload."""
        topology, _ = wustl
        network = prepare_network(topology, channels=(11, 12, 13, 14))
        rng = np.random.default_rng(4)
        flows = build_workload(network, 60, PeriodRange(-1, 1),
                               TrafficType.PEER_TO_PEER, rng)
        summaries = {}
        for policy in ("NR", "RA", "RC"):
            result = schedule_workload(network, flows, policy)
            if not result.schedulable:
                continue
            latencies = instance_latencies(result.schedule, flows)
            summaries[policy] = LatencySummary.from_latencies(latencies)
            # Everything respects the deadline by construction.
            assert summaries[policy].min_slack >= 0
        if "NR" in summaries and "RA" in summaries:
            assert summaries["RA"].mean <= summaries["NR"].mean + 1e-9
