"""Tests for repro.service: protocol, cache, and executor semantics."""

import json

import pytest

from repro.cli import main
from repro.core.kernel import KERNEL_SCALAR, KERNEL_VECTOR, kernel_mode
from repro.service.cache import ArtifactCache
from repro.service.executor import ServiceError, ServiceExecutor, \
    direct_schedule
from repro.service.protocol import (
    NetworkConfig,
    ProtocolError,
    encode_line,
    parse_request,
    partition_by_shard,
    shard_of,
)

CONFIG = {"testbed": "indriya", "seed": 1, "channels": 5, "flows": 8}

#: A config with reused cells, so reschedules exercise the repair path.
REUSE_CONFIG = {"testbed": "indriya", "seed": 5, "channels": 5,
                "flows": 30, "workload_seed": 7}


def schedule_request(network="net-a", config=CONFIG, **extra):
    payload = {"verb": "schedule", "network": network, "config": config}
    payload.update(extra)
    return parse_request(payload)


class TestProtocol:
    def test_parse_schedule(self):
        request = schedule_request(id=7)
        assert request.verb == "schedule"
        assert request.id == 7
        assert request.config.flows == 8
        assert request.config.effective_workload_seed == 1

    def test_roundtrip_through_wire_form(self):
        request = schedule_request(id=3)
        line = encode_line(request.to_dict())
        again = parse_request(line.decode("utf-8"))
        assert again.to_dict() == request.to_dict()

    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="bad JSON"):
            parse_request("{nope")

    def test_rejects_unknown_verb(self):
        with pytest.raises(ProtocolError, match="unknown verb"):
            parse_request({"verb": "destroy", "network": "n"})

    def test_rejects_missing_network(self):
        with pytest.raises(ProtocolError, match="network"):
            parse_request({"verb": "schedule", "config": CONFIG})

    def test_rejects_unknown_config_field(self):
        with pytest.raises(ProtocolError, match="unknown config field"):
            parse_request({"verb": "schedule", "network": "n",
                           "config": dict(CONFIG, nodes=99)})

    def test_rejects_bad_victims(self):
        with pytest.raises(ProtocolError, match="victims"):
            parse_request({"verb": "reschedule", "network": "n",
                           "victims": "all-of-them"})

    def test_explain_needs_link_and_slot(self):
        with pytest.raises(ProtocolError, match="link"):
            parse_request({"verb": "explain", "network": "n", "slot": 0})
        with pytest.raises(ProtocolError, match="slot"):
            parse_request({"verb": "explain", "network": "n",
                           "link": [0, 1]})

    def test_control_verbs_need_no_network(self):
        assert parse_request({"verb": "status"}).verb == "status"
        assert parse_request({"verb": "ping"}).verb == "ping"

    def test_config_hash_ignores_field_order(self):
        a = NetworkConfig.from_dict({"seed": 1, "flows": 8})
        b = NetworkConfig.from_dict({"flows": 8, "seed": 1})
        assert a.schedule_hash() == b.schedule_hash()
        assert a.topology_hash() == b.topology_hash()

    def test_config_hash_layers(self):
        base = NetworkConfig.from_dict({"seed": 1, "flows": 8})
        more_flows = NetworkConfig.from_dict({"seed": 1, "flows": 9})
        # Flow count changes workload + schedule keys, not topology.
        assert base.topology_hash() == more_flows.topology_hash()
        assert base.workload_hash() != more_flows.workload_hash()
        assert base.schedule_hash() != more_flows.schedule_hash()
        # Policy changes only the schedule key.
        nr = NetworkConfig.from_dict({"seed": 1, "flows": 8,
                                      "policy": "NR"})
        assert base.workload_hash() == nr.workload_hash()
        assert base.schedule_hash() != nr.schedule_hash()

    def test_every_config_field_changes_schedule_hash(self):
        base = NetworkConfig()
        variants = [
            {"testbed": "wustl"}, {"seed": 1}, {"channels": 4},
            {"flows": 11}, {"traffic": "centralized"},
            {"period_min_exp": 1}, {"period_max_exp": 4},
            {"policy": "NR"}, {"rho_t": 3}, {"workload_seed": 42},
        ]
        hashes = {base.schedule_hash()}
        for change in variants:
            variant = NetworkConfig.from_dict(dict(base.to_dict(),
                                                   **change))
            assert variant.schedule_hash() not in hashes, change
            hashes.add(variant.schedule_hash())

    def test_shard_deterministic_and_in_range(self):
        names = [f"net-{i}" for i in range(100)]
        first = [shard_of(name, 4) for name in names]
        assert first == [shard_of(name, 4) for name in names]
        assert all(0 <= shard < 4 for shard in first)
        # Spread: 100 names over 4 shards should touch every shard.
        assert len(set(first)) == 4
        groups = partition_by_shard(names, 4)
        assert sorted(sum(groups, [])) == sorted(names)


class TestArtifactCache:
    def test_get_or_build_counts(self):
        cache = ArtifactCache(capacity=4)
        value, verdict = cache.get_or_build("topology", "k1",
                                            lambda: "built")
        assert (value, verdict) == ("built", "miss")
        value, verdict = cache.get_or_build("topology", "k1",
                                            lambda: "rebuilt")
        assert (value, verdict) == ("built", "hit")
        stats = cache.stats()
        assert stats["hits"]["topology"] == 1
        assert stats["misses"]["topology"] == 1

    def test_lru_eviction(self):
        cache = ArtifactCache(capacity=2)
        cache.put("schedule", "a", 1)
        cache.put("schedule", "b", 2)
        assert cache.get("schedule", "a") == 1  # refresh a; b is LRU
        cache.put("schedule", "c", 3)
        assert cache.get("schedule", "b") is None
        assert cache.get("schedule", "a") == 1
        assert cache.stats()["evictions"] == 1

    def test_invalidate_exact_and_kind(self):
        cache = ArtifactCache(capacity=8)
        cache.put("schedule", "a", 1)
        cache.put("schedule", "b", 2)
        cache.put("topology", "t", 3)
        assert cache.invalidate("schedule", "a") == 1
        assert cache.invalidate("schedule") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert cache.stats()["invalidations"] == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ArtifactCache(capacity=0)


class TestExecutorSchedule:
    def test_cold_then_warm_identical(self):
        executor = ServiceExecutor()
        cold = executor.handle(schedule_request())
        warm = executor.handle(schedule_request())
        assert cold["cache"] == {"topology": "miss", "workload": "miss",
                                 "schedule": "miss"}
        assert warm["cache"] == {"topology": "hit", "workload": "hit",
                                 "schedule": "hit"}
        assert cold["schedule_hash"] == warm["schedule_hash"]
        assert cold["makespan"] == warm["makespan"]

    def test_matches_direct_library_call(self):
        executor = ServiceExecutor()
        served = executor.handle(schedule_request())
        direct = direct_schedule(NetworkConfig.from_dict(CONFIG))
        assert served["schedule_hash"] == \
            direct.schedule.canonical_hash()
        assert served["schedulable"] == direct.schedulable

    @pytest.mark.parametrize("kernel", [KERNEL_SCALAR, KERNEL_VECTOR])
    def test_cold_vs_warm_bit_identical_per_kernel(self, kernel):
        with kernel_mode(kernel):
            executor = ServiceExecutor()
            cold = executor.handle(schedule_request(config=REUSE_CONFIG))
            warm = executor.handle(schedule_request(config=REUSE_CONFIG))
        assert cold["schedule_hash"] == warm["schedule_hash"]
        assert warm["cache"]["schedule"] == "hit"

    def test_kernels_agree_through_the_service_path(self):
        hashes = set()
        for kernel in (KERNEL_SCALAR, KERNEL_VECTOR):
            with kernel_mode(kernel):
                executor = ServiceExecutor()
                result = executor.handle(
                    schedule_request(config=REUSE_CONFIG))
                hashes.add(result["schedule_hash"])
        assert len(hashes) == 1

    def test_networks_share_topology_artifact(self):
        executor = ServiceExecutor()
        executor.handle(schedule_request(network="a"))
        other = executor.handle(schedule_request(
            network="b", config=dict(CONFIG, workload_seed=9)))
        assert other["cache"]["topology"] == "hit"
        assert other["cache"]["workload"] == "miss"

    def test_rebind_invalidates_old_schedule_artifact(self):
        executor = ServiceExecutor()
        executor.handle(schedule_request())
        before = executor.cache.stats()["invalidations"]
        executor.handle(schedule_request(
            config=dict(CONFIG, flows=9)))
        assert executor.cache.stats()["invalidations"] == before + 1

    def test_counters_reconcile_with_requests(self):
        executor = ServiceExecutor()
        repeats = 4
        for _ in range(repeats):
            executor.handle(schedule_request())
        stats = executor.cache.stats()
        # Every schedule request performs exactly one lookup per kind.
        for kind in ("topology", "workload", "schedule"):
            assert stats["hits"][kind] + stats["misses"][kind] == repeats
        assert stats["hit_total"] + stats["miss_total"] == 3 * repeats
        assert executor.requests["schedule"] == repeats

    def test_include_schedule_payload(self):
        executor = ServiceExecutor()
        result = executor.handle(schedule_request(include_schedule=True))
        assert result["schedule"]["entries"]
        assert json.dumps(result)  # JSON-serializable end to end


class TestExecutorReschedule:
    def test_reschedule_before_schedule_is_an_error(self):
        executor = ServiceExecutor()
        with pytest.raises(ServiceError, match="no schedule yet"):
            executor.handle(parse_request(
                {"verb": "reschedule", "network": "ghost"}))

    def test_auto_reschedule_uses_repair_path(self):
        executor = ServiceExecutor()
        compiled = executor.handle(
            schedule_request(config=REUSE_CONFIG))
        assert compiled["reuse_cells"] > 0
        result = executor.handle(parse_request(
            {"verb": "reschedule", "network": "net-a"}))
        assert result["repair_mode"] == "repair"
        assert result["schedulable"] is True
        assert result["victims"]
        assert result["barred_links"] == len(result["victims"])
        assert result["schedule_hash"] != compiled["schedule_hash"]
        assert executor.fallbacks == 0

    def test_repair_matches_direct_repair_call(self):
        import math

        from repro.core.repair import ChangeSet, repair_schedule

        config = NetworkConfig.from_dict(REUSE_CONFIG)
        executor = ServiceExecutor()
        executor.handle(schedule_request(config=REUSE_CONFIG))
        served = executor.handle(parse_request(
            {"verb": "reschedule", "network": "net-a"}))
        assert served["repair_mode"] == "repair"

        direct = direct_schedule(config)
        from repro.service.executor import _auto_victim
        victim = _auto_victim(direct.schedule, set())
        outcome = repair_schedule(
            direct.schedule, direct.flow_set,
            executor.sessions["net-a"].prepared.reuse,
            ChangeSet(victims=(victim,)), rho_t=config.rho_t,
            policy_name=config.policy)
        assert outcome.schedulable
        assert outcome.schedule.canonical_hash() == \
            served["schedule_hash"]

    def test_noop_when_nothing_reused(self):
        executor = ServiceExecutor()
        # Tiny workload: no reused cells, so auto finds no victim.
        executor.handle(schedule_request(
            config=dict(CONFIG, flows=3)))
        result = executor.handle(parse_request(
            {"verb": "reschedule", "network": "net-a"}))
        assert result["repair_mode"] == "noop"

    def test_explicit_victims_deduplicated(self):
        executor = ServiceExecutor()
        executor.handle(schedule_request(config=REUSE_CONFIG))
        session = executor.sessions["net-a"]
        link = sorted(tuple(sorted(e.request.link)) for _, _, txs in
                      session.schedule.reused_cells() for e in txs)[0]
        result = executor.handle(parse_request(
            {"verb": "reschedule", "network": "net-a",
             "victims": [list(link), list(reversed(link)), list(link)]}))
        assert result["victims"] == [list(link)]
        # Re-barring the same link is a noop.
        again = executor.handle(parse_request(
            {"verb": "reschedule", "network": "net-a",
             "victims": [list(link)]}))
        assert again["repair_mode"] == "noop"

    def test_reschedule_then_schedule_resets_session(self):
        executor = ServiceExecutor()
        first = executor.handle(schedule_request(config=REUSE_CONFIG))
        executor.handle(parse_request(
            {"verb": "reschedule", "network": "net-a"}))
        again = executor.handle(schedule_request(config=REUSE_CONFIG))
        assert again["schedule_hash"] == first["schedule_hash"]
        assert not executor.sessions["net-a"].barred


class TestExecutorExplainAndStatus:
    def test_explain_lines(self):
        executor = ServiceExecutor()
        executor.handle(schedule_request())
        entry = executor.sessions["net-a"].schedule.entries[0]
        result = executor.handle(parse_request(
            {"verb": "explain", "network": "net-a",
             "link": [entry.request.sender, entry.request.receiver],
             "slot": entry.slot}))
        assert any("slot" in line for line in result["lines"])

    def test_explain_bounds_checked(self):
        executor = ServiceExecutor()
        executor.handle(schedule_request())
        with pytest.raises(ServiceError, match="out of range"):
            executor.handle(parse_request(
                {"verb": "explain", "network": "net-a",
                 "link": [0, 10_000], "slot": 0}))
        with pytest.raises(ServiceError, match="out of range"):
            executor.handle(parse_request(
                {"verb": "explain", "network": "net-a",
                 "link": [0, 1], "slot": 10_000}))

    def test_status_shape(self):
        executor = ServiceExecutor(worker_index=3)
        executor.handle(schedule_request())
        status = executor.status()
        assert status["worker"] == 3
        assert status["networks"] == 1
        assert status["requests"] == {"schedule": 1}
        assert status["repair_fallbacks"] == 0
        assert status["cache"]["miss_total"] == 3
        assert "net-a" in status["sessions"]
        assert json.dumps(status)

    def test_errors_counted(self):
        executor = ServiceExecutor()
        with pytest.raises(ServiceError):
            executor.handle(parse_request(
                {"verb": "reschedule", "network": "ghost"}))
        assert executor.errors == 1


class TestLedgerListFilters:
    @pytest.fixture()
    def ledger(self, tmp_path):
        from repro.obs.ledger import RunLedger, new_record

        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        for index, (command, status) in enumerate(
                [("bench", "ok"), ("serve", "ok"), ("serve", "ok"),
                 ("fuzz", "error:ValueError"), ("serve", 2)]):
            record = new_record(command, [], {"i": index})
            ledger.commit(record, status=status)
        return path

    def run_list(self, capsys, ledger, *extra):
        code = main(["ledger", "list", "--ledger", str(ledger), *extra])
        assert code == 0
        out = capsys.readouterr().out
        return [line for line in out.splitlines()[1:] if line.strip()]

    def test_filter_by_command(self, capsys, ledger):
        rows = self.run_list(capsys, ledger, "--command", "serve")
        assert len(rows) == 3
        assert all(" serve " in row for row in rows)

    def test_filter_by_status_prefix(self, capsys, ledger):
        rows = self.run_list(capsys, ledger, "--status", "error")
        assert len(rows) == 1
        assert " fuzz " in rows[0]
        rows = self.run_list(capsys, ledger, "--status", "ok")
        assert len(rows) == 3

    def test_limit_keeps_most_recent(self, capsys, ledger):
        rows = self.run_list(capsys, ledger, "--limit", "2")
        assert len(rows) == 2

    def test_filters_compose(self, capsys, ledger):
        rows = self.run_list(capsys, ledger, "--command", "serve",
                             "--status", "ok", "--limit", "1")
        assert len(rows) == 1
        assert " serve " in rows[0]

    def test_no_match_message(self, capsys, ledger):
        code = main(["ledger", "list", "--ledger", str(ledger),
                     "--command", "nothing"])
        assert code == 0
        assert "no runs recorded" in capsys.readouterr().out


class TestServiceTimeseries:
    """Per-batch service.* series: worker sampling + the top panel."""

    SMALL = {"testbed": "indriya", "seed": 1, "channels": 5, "flows": 4}

    def test_worker_samples_and_exports_series(self, tmp_path):
        import multiprocessing

        from repro.obs.timeseries import TimeSeriesStore
        from repro.service.worker import WorkerOptions, worker_main

        ts_path = tmp_path / "serve-ts.jsonl"
        parent, child = multiprocessing.Pipe()
        for index in range(5):
            parent.send(("request", {
                "id": index, "verb": "schedule", "network": "net-ts",
                "config": dict(self.SMALL)}))
        parent.send(None)
        # Run the worker loop in-process: the pipe already holds the
        # whole conversation, so the loop drains it and returns.
        worker_main(0, child, WorkerOptions(
            batch_size=2, timeseries_path=str(ts_path)))
        responses = []
        try:
            # poll() stays True at EOF once the worker closed its end,
            # so the drain terminates via EOFError, not poll().
            while parent.poll():
                responses.append(parent.recv())
        except EOFError:
            pass
        assert responses[-1]["kind"] == "worker_exit"
        assert all(r["ok"] for r in responses[:-1])

        store = TimeSeriesStore.load_jsonl(str(ts_path.parent
                                               / "serve-ts.jsonl.w0"))
        requests = store.get("service.requests")
        # batch_size=2, 5 requests -> batches of 2, 2, 1 (shutdown
        # flush), sampled at t = 0, 1, 2.
        assert [t for t, _ in requests.points] == [0.0, 1.0, 2.0]
        assert [v for _, v in requests.points] == [2.0, 2.0, 1.0]
        assert store.get("service.errors").values() == [0.0, 0.0, 0.0]
        rates = store.get("service.cache_hit_rate").values()
        assert len(rates) == 3 and rates[-1] > rates[0]

    def test_top_renders_service_panel(self):
        from repro.obs.timeseries import TimeSeriesStore
        from repro.obs.top import render_top

        store = TimeSeriesStore()
        for t in range(4):
            store.record("service.requests", float(t), 100.0)
            store.record("service.cache_hit_rate", float(t), 0.2 * t)
        text = render_top(store, None, ascii_only=True)
        assert "service (per batch)" in text
        assert "cache_hit_rate" in text

    def test_top_without_service_series_has_no_panel(self):
        from repro.obs.timeseries import TimeSeriesStore
        from repro.obs.top import render_top

        store = TimeSeriesStore()
        store.record("manager.median_pdr", 0.0, 0.9)
        assert "service (per batch)" not in render_top(
            store, None, ascii_only=True)
