"""Tests for decision provenance, the run ledger, and the query CLIs.

Covers the Section V-A constraint classifier on hand-picked cells of a
hand-built schedule, the :class:`ProvenanceRecorder` lifecycle and its
kernel-mode bit-identity, the append-only run ledger, the ``explain`` /
``timeline`` / ``ledger`` commands end to end, and the benchmark
history + regression compare.
"""

import json
import math
import sys

import numpy as np
import pytest

from repro import obs
from repro.bench import append_history, compare_bench
from repro.cli import main
from repro.core import kernel as _kernel
from repro.core.nr import NoReusePolicy
from repro.core.ra import AggressiveReusePolicy
from repro.core.rc import ConservativeReusePolicy
from repro.core.schedule import Schedule
from repro.core.scheduler import FixedPriorityScheduler
from repro.core.transmissions import TransmissionRequest
from repro.flows.flow import Flow, FlowSet
from repro.io import append_jsonl, load_jsonl, save_jsonl, save_metrics
from repro.network.graphs import ChannelReuseGraph, CommunicationGraph
from repro.obs.explain import explain_cell, explain_from_provenance
from repro.obs.ledger import (RunLedger, config_hash, diff_records,
                              environment_fingerprint, new_record)
from repro.obs.provenance import (ACCEPT, REASON_CHANNEL_BUSY,
                                  REASON_NODE_BUSY, REASON_REUSE_DISTANCE,
                                  ProvenanceRecorder, offset_verdicts,
                                  window_rejection_chain)
from repro.obs.recorder import Recorder
from repro.obs.timeline import parse_slot_range, render_timeline
from repro.routing.traffic import TrafficType, assign_routes


def _request(flow_id, hop, sender, receiver, release=0, deadline=15,
             instance=0, attempt=0):
    return TransmissionRequest(
        flow_id=flow_id, instance=instance, hop_index=hop, attempt=attempt,
        sender=sender, receiver=receiver, release_slot=release,
        deadline_slot=deadline)


@pytest.fixture
def line_fixture(line_topology):
    """A hand-built schedule on the 6-node line (hop dist = index diff).

    Slot 3 holds (0 -> 1) at offset 0 and (4 -> 5) at offset 1; every
    other slot is empty.  Cells of interest:

    * (1 -> 2) @ slot 3: node-busy (node 1 active in (0 -> 1));
    * (2 -> 3) @ slot 3, rho = inf: both offsets channel-busy;
    * (2 -> 3) @ slot 3, rho = 2: both offsets reuse-distance (min
      distance 1 to each occupant);
    * (2 -> 3) @ slot 3, rho = 1: feasible at both offsets.
    """
    reuse = ChannelReuseGraph.from_topology(line_topology)
    schedule = Schedule(num_nodes=6, num_slots=16, num_offsets=2)
    schedule.add(_request(0, 0, 0, 1), slot=3, offset=0)
    schedule.add(_request(1, 0, 4, 5), slot=3, offset=1)
    return schedule, reuse


# ----------------------------------------------------------------------
# Constraint classifier on hand-picked cells
# ----------------------------------------------------------------------

class TestConstraintClassifier:
    def test_node_busy_cell(self, line_fixture):
        schedule, reuse = line_fixture
        lines = explain_cell(schedule, reuse, 1, 2, 3, rho=2)
        text = "\n".join(lines)
        assert f"REJECTED ({REASON_NODE_BUSY})" in text
        assert "node 1" in text
        assert "(0 -> 1)" in text  # the blocking occupant is named

    def test_channel_busy_cell_at_rho_inf(self, line_fixture):
        schedule, reuse = line_fixture
        lines = explain_cell(schedule, reuse, 2, 3, 3, rho=math.inf)
        text = "\n".join(lines)
        assert f"REJECTED ({REASON_CHANNEL_BUSY})" in text
        assert "(0 -> 1)" in text and "(4 -> 5)" in text

    def test_reuse_distance_cell_names_blocker(self, line_fixture):
        schedule, reuse = line_fixture
        lines = explain_cell(schedule, reuse, 2, 3, 3, rho=2)
        text = "\n".join(lines)
        assert f"REJECTED ({REASON_REUSE_DISTANCE})" in text
        # min(hops[2,1], hops[0,3]) = 1 for offset 0's occupant (0 -> 1).
        assert "occupant (0 -> 1) is 1 hop(s) away" in text
        assert "occupant (4 -> 5) is 1 hop(s) away" in text

    def test_feasible_cell_at_rho_one(self, line_fixture):
        schedule, reuse = line_fixture
        lines = explain_cell(schedule, reuse, 2, 3, 3, rho=1)
        text = "\n".join(lines)
        assert "FEASIBLE at offsets [0, 1]" in text

    def test_scheduled_cell_reports_placement(self, line_fixture):
        schedule, reuse = line_fixture
        lines = explain_cell(schedule, reuse, 0, 1, 3, rho=math.inf)
        assert any("SCHEDULED here at offset 0" in line for line in lines)

    def test_offset_verdicts_shape(self, line_fixture):
        schedule, reuse = line_fixture
        verdicts = offset_verdicts(schedule, reuse, 2, 3, 3, rho=2)
        assert [v["verdict"] for v in verdicts] == \
            [REASON_REUSE_DISTANCE, REASON_REUSE_DISTANCE]
        assert verdicts[0]["blocker"] == [0, 1]
        assert verdicts[0]["distance"] == 1
        assert verdicts[1]["blocker"] == [4, 5]
        # An empty slot accepts everywhere.
        free = offset_verdicts(schedule, reuse, 2, 3, 5, rho=2)
        assert all(v["verdict"] == ACCEPT and v["load"] == 0 for v in free)

    def test_window_chain_is_run_length_encoded(self, line_fixture):
        schedule, reuse = line_fixture
        chain = window_rejection_chain(schedule, reuse, 2, 3, 2, 0, 5)
        assert chain == [[ACCEPT, 3], [REASON_REUSE_DISTANCE, 1],
                         [ACCEPT, 2]]
        chain = window_rejection_chain(schedule, reuse, 1, 2, 2, 0, 3)
        assert chain == [[ACCEPT, 3], [REASON_NODE_BUSY, 1]]
        # rho = inf flavours the non-conflict rejection as channel-busy.
        chain = window_rejection_chain(schedule, reuse, 2, 3, math.inf, 3, 3)
        assert chain == [[REASON_CHANNEL_BUSY, 1]]
        assert window_rejection_chain(schedule, reuse, 2, 3, 2, 5, 4) == []


# ----------------------------------------------------------------------
# ProvenanceRecorder lifecycle + kernel bit-identity
# ----------------------------------------------------------------------

def _routed_flows(topology, num_flows=3, period=64, deadline=None):
    communication = CommunicationGraph.from_topology(topology, 0.9)
    flows = FlowSet([
        Flow(i, 0, 5, period, deadline or period) for i in range(num_flows)])
    return assign_routes(flows.deadline_monotonic(), communication,
                         TrafficType.PEER_TO_PEER, [])


def _run_with_provenance(topology, policy, num_offsets=2, flows=None):
    reuse = ChannelReuseGraph.from_topology(topology)
    scheduler = FixedPriorityScheduler(
        num_nodes=topology.num_nodes, num_offsets=num_offsets,
        reuse_graph=reuse, policy=policy)
    prov = ProvenanceRecorder()
    with obs.recording(Recorder(provenance=prov)):
        result = scheduler.run(flows if flows is not None
                               else _routed_flows(topology))
    return result, prov


class TestProvenanceRecorder:
    def test_one_decision_per_placement(self, line_topology):
        result, prov = _run_with_provenance(line_topology, NoReusePolicy())
        assert result.schedulable
        decisions = prov.decisions()
        assert len(decisions) == len(result.schedule.entries)
        by_id = [d["id"] for d in decisions]
        assert by_id == list(range(len(decisions)))
        for decision, entry in zip(decisions, result.schedule.entries):
            assert decision["placed"] == [entry.slot, entry.offset]
            assert decision["sender"] == entry.request.sender
            assert decision["probes"], "every placement ran >= 1 probe"
            final = decision["probes"][-1]
            assert final["result"] == [entry.slot, entry.offset]
            assert final["chain"][-1][0] == ACCEPT
            assert final["offsets"][entry.offset]["verdict"] == ACCEPT

    def test_records_trailer_accounts_for_evictions(self, line_topology):
        reuse = ChannelReuseGraph.from_topology(line_topology)
        scheduler = FixedPriorityScheduler(
            num_nodes=line_topology.num_nodes, num_offsets=2,
            reuse_graph=reuse, policy=NoReusePolicy())
        prov = ProvenanceRecorder(capacity=2)
        with obs.recording(Recorder(provenance=prov)):
            result = scheduler.run(_routed_flows(line_topology))
        total = len(result.schedule.entries)
        assert len(prov) == 2
        assert prov.dropped == total - 2
        trailer = prov.records()[-1]
        assert trailer == {"kind": "prov_meta", "dropped": total - 2,
                           "capacity": 2, "decisions": total}

    def test_rc_records_laxity_and_descent(self, line_topology):
        # One channel and tight deadlines force RC below inf (same
        # pressure as the rc_fallback obs test).
        flows = _routed_flows(line_topology, num_flows=3, period=32,
                              deadline=16)
        result, prov = _run_with_provenance(
            line_topology, ConservativeReusePolicy(), num_offsets=1,
            flows=flows)
        laxities = [entry for d in prov.decisions() for entry in d["laxity"]]
        descents = [step for d in prov.decisions() for step in d["descent"]]
        assert laxities and descents
        assert descents[0]["from"] is None  # first step leaves rho = inf
        flow_ids = {d["flow"] for d in prov.decisions()}
        timeline = prov.laxity_timeline(min(flow_ids))
        assert all(t["decision"] is not None for t in timeline)
        # Context captures the RC knobs for offline interpretation.
        context = prov.decisions()[0]["context"]
        assert context["rho_t"] == 2

    def test_scalar_and_vector_streams_bit_identical(self, grid_topology):
        flows = _routed_flows(grid_topology, num_flows=3)
        for policy_factory in (NoReusePolicy,
                               lambda: AggressiveReusePolicy(rho_t=2),
                               lambda: ConservativeReusePolicy(rho_t=2)):
            streams = {}
            for mode in (_kernel.KERNEL_SCALAR, _kernel.KERNEL_VECTOR):
                with _kernel.kernel_mode(mode):
                    _, prov = _run_with_provenance(
                        grid_topology, policy_factory(), num_offsets=2,
                        flows=flows)
                streams[mode] = prov.records()
            assert streams[_kernel.KERNEL_SCALAR] == \
                streams[_kernel.KERNEL_VECTOR]
            assert json.dumps(streams[_kernel.KERNEL_SCALAR])  # JSON-safe

    def test_recording_provenance_does_not_perturb_schedule(
            self, grid_topology):
        flows = _routed_flows(grid_topology, num_flows=3)
        baseline = FixedPriorityScheduler(
            num_nodes=grid_topology.num_nodes, num_offsets=2,
            reuse_graph=ChannelReuseGraph.from_topology(grid_topology),
            policy=ConservativeReusePolicy(rho_t=2)).run(flows)
        observed, _ = _run_with_provenance(
            grid_topology, ConservativeReusePolicy(rho_t=2), flows=flows)
        assert [(e.slot, e.offset) for e in observed.schedule.entries] == \
            [(e.slot, e.offset) for e in baseline.schedule.entries]

    def test_decisions_for_link_and_explain_bridge(self, line_topology):
        result, prov = _run_with_provenance(line_topology, NoReusePolicy())
        entry = result.schedule.entries[0]
        link = (entry.request.sender, entry.request.receiver)
        decisions = prov.decisions_for_link(*link)
        assert decisions
        lines = explain_from_provenance(prov.records(), *link,
                                        slot=entry.slot)
        text = "\n".join(lines)
        assert f"placed at slot {entry.slot} offset {entry.offset}" in text
        assert "probe rho=inf" in text

    def test_export_jsonl_roundtrip(self, line_topology, tmp_path):
        _, prov = _run_with_provenance(line_topology, NoReusePolicy())
        path = tmp_path / "prov.jsonl"
        assert prov.export_jsonl(path) == len(prov)
        records = load_jsonl(path)
        assert records == prov.records()
        assert records[-1]["kind"] == "prov_meta"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProvenanceRecorder(capacity=0)


# ----------------------------------------------------------------------
# Run ledger
# ----------------------------------------------------------------------

class TestRunLedger:
    def test_commit_appends_and_stamps(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        record = new_record("sweep", ["sweep", "--seed", "7"],
                            {"seed": 7, "flows": 30}, seeds=[7])
        committed = ledger.commit(record, status="ok",
                                  artifacts=["metrics.json"],
                                  metrics={"scheduler.placements": 12})
        assert committed["status"] == "ok"
        assert committed["wall_s"] >= 0
        assert "_started" not in committed
        (loaded,) = ledger.records()
        assert loaded == json.loads(json.dumps(committed))
        assert loaded["run_id"].endswith(str(__import__("os").getpid()))
        assert loaded["config_hash"] == config_hash(
            {"flows": 30, "seed": 7})
        assert loaded["env"]["python"] == \
            environment_fingerprint()["python"]

    def test_config_hash_is_order_insensitive(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == \
            config_hash({"b": [2, 3], "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_find_accepts_prefix_latest_wins(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        first = ledger.commit(new_record("bench", [], {"n": 1}))
        second = ledger.commit(new_record("bench", [], {"n": 2}))
        assert ledger.find(first["run_id"]) == \
            json.loads(json.dumps(first))
        # A bare timestamp-prefix matches both; the latest wins.
        prefix = first["run_id"][:4]
        assert ledger.find(prefix)["config"]["n"] == 2
        assert ledger.find(second["run_id"][:20])["config"]["n"] == 2
        assert ledger.find("zzz-no-such-run") is None

    def test_records_empty_when_no_file(self, tmp_path):
        assert RunLedger(tmp_path / "missing.jsonl").records() == []

    def test_diff_records_names_changed_keys(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        a = ledger.commit(new_record("sweep", [], {"seed": 1, "flows": 30}),
                          metrics={"placements": 10})
        b = ledger.commit(new_record("sweep", [], {"seed": 2, "flows": 30}),
                          metrics={"placements": 12})
        lines = diff_records(a, b)
        text = "\n".join(lines)
        assert "config.seed: 1 -> 2" in text
        assert "config.flows" not in text
        assert "metrics.placements: 10 -> 12" in text

    def test_append_jsonl_appends_not_truncates(self, tmp_path):
        path = tmp_path / "a.jsonl"
        assert append_jsonl([{"n": 1}], path) == 1
        assert append_jsonl([{"n": 2}, {"n": 3}], path) == 2
        assert [r["n"] for r in load_jsonl(path)] == [1, 2, 3]

    def test_records_skips_corrupt_lines_and_counts_them(self, tmp_path):
        """Regression: a truncated write (crash mid-append) or stray
        editor junk must not take the whole ledger down — good records
        still load, and the damage is tallied in ``skipped``."""
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        first = ledger.commit(new_record("sweep", [], {"n": 1}))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "truncat\n')    # crash mid-append
            handle.write("[1, 2, 3]\n")              # JSON but not a dict
            handle.write("\n")                       # blank line: ignored
        second = ledger.commit(new_record("sweep", [], {"n": 2}))

        records = ledger.records()
        assert [r["config"]["n"] for r in records] == [1, 2]
        assert ledger.skipped == 2  # blank line is not damage

        # find() still works across the damage, and a clean re-read
        # resets the tally.
        assert ledger.find(second["run_id"])["config"]["n"] == 2
        assert ledger.find(first["run_id"])["config"]["n"] == 1
        ledger.records()
        assert ledger.skipped == 2
        clean = RunLedger(tmp_path / "clean.jsonl")
        clean.commit(new_record("sweep", [], {"n": 3}))
        assert clean.records() and clean.skipped == 0


# ----------------------------------------------------------------------
# Timeline rendering
# ----------------------------------------------------------------------

class TestTimeline:
    def test_grid_marks_reuse_cells(self, line_fixture):
        schedule, _ = line_fixture
        # Add a reuse partner into slot 3 offset 0: (3 -> 4) shares with
        # (0 -> 1) (node-disjoint, so Schedule.add allows it).
        schedule.add(_request(2, 0, 3, 4, release=0), slot=5, offset=0)
        schedule.add(_request(3, 0, 2, 3), slot=3, offset=0)
        text = render_timeline(schedule, start=0, end=6)
        lines = text.splitlines()
        assert lines[1].startswith("offset 0")
        assert "|...2.#.|" in lines[1]
        assert "|...#...|" in lines[2]
        assert "reuse cells:" in text
        assert "slot 3 offset 0: (0 -> 1), (2 -> 3)" in text

    def test_flow_windows_rendered(self, line_topology):
        flows = _routed_flows(line_topology, num_flows=2)
        result, _ = _run_with_provenance(line_topology, NoReusePolicy(),
                                         flows=flows)
        text = render_timeline(result.schedule, flows, 0, 20)
        assert "flow windows (- window, # placement):" in text
        assert "flow 0" in text and "flow 1" in text

    def test_empty_range_rejected(self, line_fixture):
        schedule, _ = line_fixture
        with pytest.raises(ValueError):
            render_timeline(schedule, start=9, end=4)

    def test_parse_slot_range(self):
        assert parse_slot_range("3:9") == (3, 9)
        assert parse_slot_range("3:") == (3, None)
        assert parse_slot_range(":9") == (0, 9)
        assert parse_slot_range("7") == (7, 7)
        with pytest.raises(ValueError):
            parse_slot_range("a:b")


# ----------------------------------------------------------------------
# Bench history + compare
# ----------------------------------------------------------------------

def _bench_report(scalar_s, vector_s, num_flows=20, policy="RC"):
    return {
        "mode": "quick", "seed": 1, "repetitions": 1,
        "environment": {"cpu_count": 4},
        "schedulers": [{
            "num_flows": num_flows, "policy": policy,
            "scalar": {"wall_s": scalar_s},
            "vector": {"wall_s": vector_s},
            "speedup": scalar_s / vector_s,
        }],
        "headline": {"rc_max_speedup": scalar_s / vector_s},
    }


class TestBenchHistoryCompare:
    def test_append_history_compacts_cells(self, tmp_path):
        path = tmp_path / "history.jsonl"
        record = append_history(_bench_report(0.2, 0.1), str(path))
        assert record["kind"] == "bench"
        (loaded,) = load_jsonl(path)
        assert loaded["cells"] == [{
            "num_flows": 20, "policy": "RC", "scalar_s": 0.2,
            "vector_s": 0.1, "speedup": 2.0}]
        append_history(_bench_report(0.3, 0.1), str(path))
        assert len(load_jsonl(path)) == 2

    def test_compare_flags_regression_over_threshold(self):
        baseline = _bench_report(0.100, 0.050)
        ok = compare_bench(_bench_report(0.115, 0.055), baseline)
        assert ok == []
        bad = compare_bench(_bench_report(0.150, 0.050), baseline)
        assert len(bad) == 1
        assert "REGRESSION RC@20 [scalar]" in bad[0]
        assert "100.0ms -> 150.0ms" in bad[0]

    def test_compare_ignores_unshared_cells(self):
        baseline = _bench_report(0.1, 0.05, num_flows=70)
        baseline["schedulers"].append(
            _bench_report(0.1, 0.05, num_flows=20)["schedulers"][0])
        # Current report only has the 20-flow cell; 70-flow is ignored.
        assert compare_bench(_bench_report(0.105, 0.052), baseline) == []

    def test_compare_disjoint_cells_is_diagnosed(self):
        baseline = _bench_report(0.1, 0.05, num_flows=70)
        (line,) = compare_bench(_bench_report(0.1, 0.05, num_flows=20),
                                baseline)
        assert "no comparable" in line


# ----------------------------------------------------------------------
# CLI: schedule -> explain / timeline / ledger, report dropped total
# ----------------------------------------------------------------------

class TestProvenanceCli:
    @pytest.fixture
    def artifacts(self, tmp_path, capsys):
        """One saved schedule (+ flows, topology, provenance, ledger)."""
        paths = {
            "schedule": tmp_path / "schedule.json",
            "flows": tmp_path / "flows.json",
            "topology": tmp_path / "topology.npz",
            "provenance": tmp_path / "prov.jsonl",
            "ledger": tmp_path / "runs.jsonl",
        }
        assert main(["schedule", "--testbed", "wustl", "--flows", "8",
                     "--seed", "3",
                     "--schedule-out", str(paths["schedule"]),
                     "--flows-out", str(paths["flows"]),
                     "--topology-out", str(paths["topology"]),
                     "--provenance", str(paths["provenance"]),
                     "--ledger", str(paths["ledger"])]) == 0
        capsys.readouterr()
        return paths

    def test_explain_scheduled_cell_with_provenance(self, artifacts,
                                                    capsys):
        schedule = json.loads(artifacts["schedule"].read_text())
        entry = schedule["entries"][0]
        assert main(["explain",
                     "--schedule", str(artifacts["schedule"]),
                     "--topology", str(artifacts["topology"]),
                     "--link", str(entry["sender"]), str(entry["receiver"]),
                     "--slot", str(entry["slot"]),
                     "--provenance", str(artifacts["provenance"])]) == 0
        out = capsys.readouterr().out
        assert "SCHEDULED here" in out
        assert "verdict:" in out
        assert "recorded decisions for this link:" in out
        assert "probe rho=" in out

    def test_explain_rejects_bad_link_and_slot(self, artifacts, capsys):
        base = ["explain", "--schedule", str(artifacts["schedule"]),
                "--topology", str(artifacts["topology"])]
        assert main(base + ["--link", "0", "9999", "--slot", "0"]) == 2
        assert "out of range" in capsys.readouterr().err
        assert main(base + ["--link", "0", "1", "--slot", "99999"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_timeline_renders_grid(self, artifacts, capsys):
        assert main(["timeline", "--schedule", str(artifacts["schedule"]),
                     "--flows", str(artifacts["flows"]),
                     "--slots", "0:30"]) == 0
        out = capsys.readouterr().out
        assert "offset 0 |" in out
        assert "flow windows" in out
        assert main(["timeline", "--schedule", str(artifacts["schedule"]),
                     "--slots", "50:10"]) == 2

    def test_ledger_list_show_diff(self, artifacts, tmp_path, capsys):
        # A second run with a different seed gives diff something to say.
        assert main(["schedule", "--testbed", "wustl", "--flows", "8",
                     "--seed", "4",
                     "--ledger", str(artifacts["ledger"])]) == 0
        capsys.readouterr()

        assert main(["ledger", "list",
                     "--ledger", str(artifacts["ledger"])]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if "schedule" in line]
        assert len(rows) == 2

        records = load_jsonl(artifacts["ledger"])
        run_ids = [r["run_id"] for r in records]
        assert main(["ledger", "show", run_ids[0],
                     "--ledger", str(artifacts["ledger"])]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["command"] == "schedule"
        assert shown["status"] == 0
        assert str(artifacts["provenance"]) in shown["artifacts"]
        assert shown["seeds"] == [3]

        assert main(["ledger", "diff", run_ids[0], run_ids[1],
                     "--ledger", str(artifacts["ledger"])]) == 0
        out = capsys.readouterr().out
        assert "config.seed: 3 -> 4" in out

        assert main(["ledger", "show", "no-such-run",
                     "--ledger", str(artifacts["ledger"])]) == 2
        assert "no run matching" in capsys.readouterr().err

    def test_no_ledger_flag_skips_append(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        assert main(["topology", "--testbed", "wustl", "--channels", "4",
                     "--ledger", str(ledger), "--no-ledger"]) == 0
        assert not ledger.exists()

    def test_broken_pipe_exits_quietly(self, artifacts, monkeypatch):
        # `repro ledger show ... | head` closes stdout mid-print; the
        # CLI must exit without a traceback instead of crashing.
        class ClosedPipe:
            def write(self, text):
                raise BrokenPipeError

            def flush(self):
                raise BrokenPipeError

        monkeypatch.setattr(sys, "stdout", ClosedPipe())
        assert main(["ledger", "list",
                     "--ledger", str(artifacts["ledger"])]) == 120

    def test_ledger_records_failure_status(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        missing = tmp_path / "nope.json"
        assert main(["validate", "--schedule", str(missing),
                     "--topology", str(missing),
                     "--ledger", str(ledger)]) == 2
        capsys.readouterr()
        (record,) = load_jsonl(ledger)
        assert record["status"] == 2

    def test_report_prints_dropped_total(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.jsonl"
        save_metrics({"counters": {"scheduler.placements": 3},
                      "gauges": {}, "histograms": {}}, metrics)
        save_jsonl([{"kind": "placement", "seq": 0},
                    {"kind": "placement", "seq": 1},
                    {"kind": "trace_meta", "dropped": 5, "capacity": 2}],
                   trace)
        assert main(["report", str(metrics), "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "placement" in out
        assert "total retained" in out
        # The trailer is bookkeeping, not an event kind.
        assert "trace_meta" not in out
        lines = [line for line in out.splitlines()
                 if "dropped (ring evictions)" in line]
        assert len(lines) == 1 and lines[0].rstrip().endswith("5")
