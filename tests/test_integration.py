"""End-to-end integration tests: testbed → graphs → workload → routes →
schedule → simulation → detection, exercised as one pipeline."""

import numpy as np
import pytest

from repro.core.constraints import validate_schedule
from repro.detection import (
    DetectionConfig,
    Verdict,
    build_epoch_reports,
    diagnose_epoch,
)
from repro.experiments import (
    build_workload,
    prepare_network,
    schedule_workload,
)
from repro.flows import PeriodRange
from repro.routing import TrafficType
from repro.simulator import SimulationConfig, TschSimulator


@pytest.fixture(scope="module")
def wustl_network(wustl):
    topology, _ = wustl
    return prepare_network(topology, channels=(11, 12, 13, 14))


class TestEndToEndPipeline:
    @pytest.mark.parametrize("traffic", [TrafficType.PEER_TO_PEER,
                                         TrafficType.CENTRALIZED])
    def test_schedule_then_simulate(self, wustl, wustl_network, traffic):
        """The full pipeline runs for both traffic patterns and yields
        sane PDRs (including centralized routes with a wired hand-off)."""
        topology, environment = wustl
        network = wustl_network
        rng = np.random.default_rng(3)
        flows = build_workload(network, 12, PeriodRange(0, 2), traffic, rng)
        result = schedule_workload(network, flows, "RC")
        assert result.schedulable
        assert validate_schedule(result.schedule, network.reuse, 2) is None

        simulator = TschSimulator(
            result.schedule, flows, environment,
            network.topology.channel_map,
            config=SimulationConfig(seed=3))
        stats = simulator.run(20)
        pdrs = stats.pdr_per_flow()
        assert set(pdrs) == {f.flow_id for f in flows}
        # Light workload on good channels: high delivery throughout.
        assert min(pdrs.values()) > 0.5
        assert sorted(pdrs.values())[len(pdrs) // 2] > 0.9

    def test_centralized_wire_not_simulated(self, wustl, wustl_network):
        """No transmission in any schedule uses a wired AP→AP hop."""
        topology, _ = wustl
        network = wustl_network
        rng = np.random.default_rng(5)
        flows = build_workload(network, 15, PeriodRange(0, 2),
                               TrafficType.CENTRALIZED, rng)
        aps = set(network.access_points)
        result = schedule_workload(network, flows, "NR")
        assert result.schedulable
        for entry in result.schedule.entries:
            link = entry.request.link
            assert not (link[0] in aps and link[1] in aps), (
                f"wired hop {link} was scheduled over the air")

    def test_pipeline_determinism(self, wustl, wustl_network):
        """Same seeds, same everything: schedules and PDRs match."""
        topology, environment = wustl
        network = wustl_network

        def run_once():
            rng = np.random.default_rng(9)
            flows = build_workload(network, 10, PeriodRange(0, 2),
                                   TrafficType.PEER_TO_PEER, rng)
            result = schedule_workload(network, flows, "RC")
            simulator = TschSimulator(
                result.schedule, flows, environment,
                network.topology.channel_map,
                config=SimulationConfig(seed=9))
            stats = simulator.run(10)
            placements = [(e.request.flow_id, e.request.instance,
                           e.request.hop_index, e.request.attempt,
                           e.slot, e.offset)
                          for e in result.schedule.entries]
            return placements, stats.pdr_per_flow()

        first = run_once()
        second = run_once()
        assert first == second

    def test_detection_pipeline_from_raw_stats(self, wustl, wustl_network):
        """build_epoch_reports → diagnose_epoch runs on real simulator
        output and only ever diagnoses reuse-involved links."""
        topology, environment = wustl
        network = wustl_network
        rng = np.random.default_rng(13)
        flows = build_workload(network, 40, PeriodRange(-1, 1),
                               TrafficType.PEER_TO_PEER, rng)
        result = schedule_workload(network, flows, "RA")
        assert result.schedulable
        simulator = TschSimulator(
            result.schedule, flows, environment,
            network.topology.channel_map,
            config=SimulationConfig(seed=13))
        stats = simulator.run(12)
        reports = build_epoch_reports(stats, repetitions_per_epoch=6)
        assert len(reports) == 2
        reuse_links = set(result.schedule.reuse_links())
        for report in reports:
            for diagnosis in diagnose_epoch(report, DetectionConfig()):
                assert diagnosis.link in reuse_links
                assert diagnosis.verdict in (
                    Verdict.OK, Verdict.REJECT, Verdict.ACCEPT,
                    Verdict.INSUFFICIENT_DATA)

    def test_three_policies_share_workload(self, wustl, wustl_network):
        """All three policies accept the same flow set object (no hidden
        mutation of flows during scheduling)."""
        topology, _ = wustl
        network = wustl_network
        rng = np.random.default_rng(21)
        flows = build_workload(network, 10, PeriodRange(0, 2),
                               TrafficType.PEER_TO_PEER, rng)
        snapshot = [(f.flow_id, f.route) for f in flows]
        for policy in ("NR", "RA", "RC"):
            schedule_workload(network, flows, policy)
        assert [(f.flow_id, f.route) for f in flows] == snapshot


class TestCrossPolicyShapes:
    """The paper's qualitative orderings on a fixed heavy workload."""

    def test_heavy_load_ordering(self, wustl, wustl_network):
        topology, environment = wustl
        network = wustl_network
        rng = np.random.default_rng(31)
        flows = build_workload(network, 80, PeriodRange(-1, 3),
                               TrafficType.PEER_TO_PEER, rng)
        results = {policy: schedule_workload(network, flows, policy)
                   for policy in ("NR", "RA", "RC")}
        # Reuse-capable schedulers accept what NR accepts (or more).
        if results["NR"].schedulable:
            assert results["RA"].schedulable
            assert results["RC"].schedulable
        if results["RA"].schedulable and results["RC"].schedulable:
            assert (results["RC"].schedule.num_reused_cells()
                    <= results["RA"].schedule.num_reused_cells())
