"""Tests for find_slot and the NR / RA / RC placement policies."""

import math

import pytest

from repro.core.constraints import NO_REUSE, validate_schedule
from repro.core.nr import NoReusePolicy
from repro.core.ra import AggressiveReusePolicy
from repro.core.rc import ConservativeReusePolicy, RHO_RESET_FLOW
from repro.core.schedule import Schedule
from repro.core.scheduler import (
    FixedPriorityScheduler,
    OFFSET_FIRST,
    OFFSET_LEAST_LOADED,
    find_slot,
)
from repro.flows.flow import Flow, FlowSet
from repro.network.graphs import ChannelReuseGraph, CommunicationGraph
from repro.routing.traffic import TrafficType, assign_routes

from test_core_schedule import request


@pytest.fixture
def line_reuse_graph(line_topology):
    return ChannelReuseGraph.from_topology(line_topology)


class TestFindSlot:
    def test_earliest_free_slot(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        assert find_slot(schedule, line_reuse_graph, request(0, 1),
                         NO_REUSE, earliest=0) == (0, 0)

    def test_respects_earliest(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        assert find_slot(schedule, line_reuse_graph, request(0, 1),
                         NO_REUSE, earliest=4) == (4, 0)

    def test_skips_conflicting_slot(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        schedule.add(request(1, 2), 0, 0)
        found = find_slot(schedule, line_reuse_graph, request(0, 1),
                          NO_REUSE, earliest=0)
        assert found == (1, 0)

    def test_no_reuse_skips_full_slot(self, line_reuse_graph):
        schedule = Schedule(6, 10, 1)
        schedule.add(request(4, 5), 0, 0)
        found = find_slot(schedule, line_reuse_graph, request(0, 1),
                          NO_REUSE, earliest=0)
        assert found == (1, 0)

    def test_reuse_allows_sharing_full_slot(self, line_reuse_graph):
        schedule = Schedule(6, 10, 1)
        schedule.add(request(4, 5), 0, 0)
        found = find_slot(schedule, line_reuse_graph, request(0, 1),
                          rho=3, earliest=0)
        assert found == (0, 0)

    def test_reuse_still_respects_rho(self, line_reuse_graph):
        schedule = Schedule(6, 10, 1)
        schedule.add(request(2, 3), 0, 0)
        found = find_slot(schedule, line_reuse_graph, request(0, 1),
                          rho=2, earliest=0)
        assert found == (1, 0)  # hop(0,3)=3 ok but hop(2,1)=1 < 2

    def test_none_when_past_deadline(self, line_reuse_graph):
        schedule = Schedule(6, 10, 1)
        req = request(0, 1, deadline=3)
        for slot in range(4):
            schedule.add(request(1, 2, deadline=9), slot, 0)
        assert find_slot(schedule, line_reuse_graph, req, NO_REUSE, 0) is None

    def test_none_when_earliest_past_deadline(self, line_reuse_graph):
        schedule = Schedule(6, 10, 1)
        req = request(0, 1, deadline=3)
        assert find_slot(schedule, line_reuse_graph, req, NO_REUSE, 4) is None

    def test_first_offset_rule(self, line_reuse_graph):
        schedule = Schedule(6, 10, 3)
        schedule.add(request(4, 5), 0, 0)
        found = find_slot(schedule, line_reuse_graph, request(0, 1),
                          rho=3, earliest=0, offset_rule=OFFSET_FIRST)
        assert found == (0, 0)  # reuses offset 0 even though 1, 2 are free

    def test_least_loaded_offset_rule(self, line_reuse_graph):
        """RC prefers the emptiest feasible channel (paper Section V-C)."""
        schedule = Schedule(6, 10, 3)
        schedule.add(request(4, 5), 0, 0)
        found = find_slot(schedule, line_reuse_graph, request(0, 1),
                          rho=3, earliest=0, offset_rule=OFFSET_LEAST_LOADED)
        assert found == (0, 1)  # empty offset beats shared offset

    def test_unknown_offset_rule(self, line_reuse_graph):
        schedule = Schedule(6, 10, 2)
        schedule.add(request(4, 5), 0, 0)
        with pytest.raises(ValueError):
            find_slot(schedule, line_reuse_graph, request(0, 1), 2, 0,
                      offset_rule="bogus")


def make_flow_set(specs, graph):
    """specs: list of (src, dst, period, deadline)."""
    flows = [Flow(i, s, d, p, dl) for i, (s, d, p, dl) in enumerate(specs)]
    ordered = FlowSet(flows).deadline_monotonic()
    return assign_routes(ordered, graph, TrafficType.PEER_TO_PEER)


@pytest.fixture
def line_graphs(line_topology):
    return (CommunicationGraph.from_topology(line_topology, 0.9),
            ChannelReuseGraph.from_topology(line_topology))


class TestSchedulerEngine:
    def test_single_flow_scheduled_in_order(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 2, 100, 100)], comm)
        scheduler = FixedPriorityScheduler(6, 2, reuse, NoReusePolicy())
        result = scheduler.run(fs)
        assert result.schedulable
        slots = [e.slot for e in result.schedule.entries]
        assert slots == sorted(slots)
        assert slots == [0, 1, 2, 3]  # 2 hops x 2 attempts, strictly serial

    def test_precedence_strictly_increasing(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 5, 400, 400)], comm)
        scheduler = FixedPriorityScheduler(6, 2, reuse, NoReusePolicy())
        result = scheduler.run(fs)
        slots = [e.slot for e in result.schedule.entries]
        assert all(b > a for a, b in zip(slots, slots[1:]))

    def test_all_instances_scheduled(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 2, 50, 50), (3, 5, 100, 100)], comm)
        scheduler = FixedPriorityScheduler(6, 2, reuse, NoReusePolicy())
        result = scheduler.run(fs)
        assert result.schedulable
        # Hyperperiod 100: flow at P=50 has 2 instances of 4 attempts,
        # flow at P=100 has 1 instance of 4 attempts.
        assert len(result.schedule) == 12

    def test_releases_respected(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 2, 50, 50)], comm)
        scheduler = FixedPriorityScheduler(6, 2, reuse, NoReusePolicy())
        result = scheduler.run(fs)
        second_instance = [e for e in result.schedule.entries
                           if e.request.instance == 1]
        assert all(e.slot >= 50 for e in second_instance)

    def test_deadline_miss_returns_unschedulable(self, line_graphs):
        comm, reuse = line_graphs
        # 5 hops x 2 attempts = 10 slots needed, deadline 8.
        fs = make_flow_set([(0, 5, 100, 8)], comm)
        scheduler = FixedPriorityScheduler(6, 2, reuse, NoReusePolicy())
        result = scheduler.run(fs)
        assert not result.schedulable
        assert result.failed_flow == 0
        assert result.failed_instance == 0

    def test_unrouted_flow_set_rejected(self, line_graphs):
        _, reuse = line_graphs
        fs = FlowSet([Flow(0, 0, 5, 100, 100)])
        scheduler = FixedPriorityScheduler(6, 2, reuse, NoReusePolicy())
        with pytest.raises(ValueError):
            scheduler.run(fs)

    def test_elapsed_time_recorded(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 2, 100, 100)], comm)
        result = FixedPriorityScheduler(6, 2, reuse, NoReusePolicy()).run(fs)
        assert result.elapsed_s > 0.0


class TestNrPolicy:
    def test_never_reuses(self, line_graphs):
        comm, reuse = line_graphs
        # Two node-disjoint flows, one channel: NR must serialize.
        fs = make_flow_set([(0, 1, 100, 100), (4, 5, 100, 100)], comm)
        result = FixedPriorityScheduler(6, 1, reuse, NoReusePolicy()).run(fs)
        assert result.schedulable
        assert result.schedule.num_reused_cells() == 0
        assert result.schedule.makespan() == 4  # fully serialized


class TestRaPolicy:
    def test_reuses_whenever_possible(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 1, 100, 100), (4, 5, 100, 100)], comm)
        result = FixedPriorityScheduler(
            6, 1, reuse, AggressiveReusePolicy(rho_t=3)).run(fs)
        assert result.schedulable
        # hop(0,5)=5, hop(4,1)=3: flows can share every slot.
        assert result.schedule.num_reused_cells() == 2
        assert result.schedule.makespan() == 2

    def test_respects_rho_t(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 1, 100, 100), (3, 4, 100, 100)], comm)
        result = FixedPriorityScheduler(
            6, 1, reuse, AggressiveReusePolicy(rho_t=4)).run(fs)
        assert result.schedulable
        # hop(3,1)=2 < 4: no reuse possible.
        assert result.schedule.num_reused_cells() == 0
        assert validate_schedule(result.schedule, reuse, 4) is None

    def test_invalid_rho_t(self):
        with pytest.raises(ValueError):
            AggressiveReusePolicy(rho_t=0)


class TestRcPolicy:
    def test_no_reuse_when_deadlines_loose(self, line_graphs):
        """RC must not reuse when the workload fits without it."""
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 1, 100, 100), (4, 5, 100, 100)], comm)
        result = FixedPriorityScheduler(
            6, 1, reuse, ConservativeReusePolicy(rho_t=2)).run(fs)
        assert result.schedulable
        assert result.schedule.num_reused_cells() == 0

    def test_reuses_when_needed(self, line_graphs):
        """When both flows need the same two slots on one channel, the
        lower-priority flow can only make its deadline by sharing."""
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 1, 100, 2), (4, 5, 100, 2)], comm)
        result = FixedPriorityScheduler(
            6, 1, reuse, ConservativeReusePolicy(rho_t=2)).run(fs)
        assert result.schedulable
        assert result.schedule.num_reused_cells() >= 1

    def test_schedulable_where_nr_fails(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 1, 100, 2), (4, 5, 100, 2)], comm)
        nr = FixedPriorityScheduler(6, 1, reuse, NoReusePolicy()).run(fs)
        rc = FixedPriorityScheduler(
            6, 1, reuse, ConservativeReusePolicy(rho_t=2)).run(fs)
        assert not nr.schedulable
        assert rc.schedulable

    def test_prefers_larger_hop_distance(self, line_topology):
        """RC starts reuse at λ_R and only shrinks ρ as needed."""
        comm = CommunicationGraph.from_topology(line_topology, 0.9)
        reuse = ChannelReuseGraph.from_topology(line_topology)
        # Both flows need the same two slots on one channel; RC pairs
        # the two transmissions, which are far apart on the line.
        fs = make_flow_set([(0, 1, 100, 2), (4, 5, 100, 2)], comm)
        result = FixedPriorityScheduler(
            6, 1, reuse, ConservativeReusePolicy(rho_t=2)).run(fs)
        assert result.schedulable
        reused = result.schedule.reused_cells()
        assert reused
        # The shared cells pair 0->1 with 4->5: hop(0,5)=5, hop(4,1)=3.
        for _, _, txs in reused:
            links = {t.request.link for t in txs}
            assert links == {(0, 1), (4, 5)}

    def test_never_violates_rho_t(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set(
            [(0, 1, 100, 4), (2, 3, 100, 4), (4, 5, 100, 4)], comm)
        result = FixedPriorityScheduler(
            6, 1, reuse, ConservativeReusePolicy(rho_t=2)).run(fs)
        if result.schedulable:
            assert validate_schedule(result.schedule, reuse, 2) is None

    def test_flow_reset_mode(self, line_graphs):
        comm, reuse = line_graphs
        fs = make_flow_set([(0, 1, 100, 100), (4, 5, 100, 2)], comm)
        policy = ConservativeReusePolicy(rho_t=2, rho_reset=RHO_RESET_FLOW)
        result = FixedPriorityScheduler(6, 1, reuse, policy).run(fs)
        assert result.schedulable

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ConservativeReusePolicy(rho_t=0)
        with pytest.raises(ValueError):
            ConservativeReusePolicy(rho_reset="sometimes")

    def test_least_loaded_channel_choice(self, line_topology):
        """Among feasible offsets RC picks the one with fewest entries."""
        comm = CommunicationGraph.from_topology(line_topology, 0.9)
        reuse = ChannelReuseGraph.from_topology(line_topology)
        schedule = Schedule(6, 10, 2)
        schedule.add(request(0, 1), 0, 0)
        found = find_slot(schedule, reuse, request(4, 5, deadline=9),
                          rho=2, earliest=0,
                          offset_rule=OFFSET_LEAST_LOADED)
        assert found == (0, 1)
