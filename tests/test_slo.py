"""Tests for per-flow SLO burn-rate alerting (repro.obs.slo) and its
integration with the manager loop's early-warning channel."""

from __future__ import annotations

import pytest

from repro.detection.health import EpochReport, LinkEpochReport
from repro.manager.loop import ManagerConfig, NetworkManager
from repro.manager.policies import Observation, RescheduleVictims
from repro.obs import recorder as _obs
from repro.obs.recorder import Recorder
from repro.obs.slo import (
    STATE_ALERT,
    STATE_OK,
    STATE_WARN,
    FlowSloState,
    SloConfig,
    SloEngine,
    severity,
)
from repro.obs.timeseries import TimeSeriesStore
from repro.testbeds import WUSTL_PLAN


class TestSloConfig:
    def test_defaults_and_budget(self):
        config = SloConfig()
        assert config.target_pdr == 0.9
        assert config.error_budget == pytest.approx(0.1)
        assert config.to_dict() == {"target_pdr": 0.9, "fast_window": 5,
                                    "slow_window": 30, "burn_threshold": 2.0}

    def test_validation(self):
        with pytest.raises(ValueError, match="target_pdr"):
            SloConfig(target_pdr=1.0)
        with pytest.raises(ValueError, match="target_pdr"):
            SloConfig(target_pdr=0.0)
        with pytest.raises(ValueError, match="fast_window"):
            SloConfig(fast_window=0)
        with pytest.raises(ValueError, match="slow_window"):
            SloConfig(fast_window=5, slow_window=4)
        with pytest.raises(ValueError, match="burn_threshold"):
            SloConfig(burn_threshold=0.0)


# A tight config for hand-computable burn math: budget 0.1, fast window
# of 2 epochs, slow window of 4, hot at burn >= 2 (i.e. windowed miss
# ratio >= 0.2).
TIGHT = SloConfig(target_pdr=0.9, fast_window=2, slow_window=4,
                  burn_threshold=2.0)


def feed(engine, *epochs):
    """Feed single-flow (released, delivered) epochs; return last state."""
    state = None
    for epoch, (released, delivered) in enumerate(epochs):
        states = engine.observe_epoch(epoch, {7: released}, {7: delivered})
        state = states[0]
    return state


class TestBurnMath:
    def test_healthy_flow_stays_ok(self):
        state = feed(SloEngine(TIGHT), (100, 100), (100, 98), (100, 100))
        assert state.state == STATE_OK
        assert state.pdr == pytest.approx(1.0)
        assert state.burn_fast < 2.0 and state.burn_slow < 2.0
        assert state.epochs_observed == 3

    def test_spike_warns_then_sustained_alerts(self):
        engine = SloEngine(TIGHT)
        # Two clean epochs, then one bad: fast window (2 epochs) holds
        # 40 misses / 200 releases = 0.2 miss ratio -> burn 2.0 (hot);
        # slow window (3 epochs observed) holds 40/300 -> burn 1.33.
        state = feed(engine, (100, 100), (100, 100), (100, 60))
        assert state.state == STATE_WARN
        assert state.burn_fast == pytest.approx(2.0)
        assert state.burn_slow == pytest.approx(40 / 300 / 0.1)
        # A second bad epoch makes the slow window hot too: 80/400.
        states = engine.observe_epoch(3, {7: 100}, {7: 60})
        assert states[0].state == STATE_ALERT
        assert states[0].burn_slow == pytest.approx(2.0)

    def test_windows_are_packet_weighted(self):
        # A tiny all-miss epoch after a heavy clean one: the pooled miss
        # ratio is 1/1001, not the 0.5 an epoch-averaged ratio would say.
        state = feed(SloEngine(TIGHT), (1000, 1000), (1, 0))
        assert state.state == STATE_OK
        assert state.burn_fast == pytest.approx((1 / 1001) / 0.1)

    def test_idle_epoch_counts_as_clean(self):
        state = feed(SloEngine(TIGHT), (0, 0))
        assert state.pdr == 1.0
        assert state.burn_fast == 0.0
        assert state.state == STATE_OK

    def test_old_history_falls_out_of_the_slow_window(self):
        engine = SloEngine(TIGHT)
        state = feed(engine, (100, 0), (100, 100), (100, 100), (100, 100))
        # The all-miss epoch still burns the slow window here (100/400
        # misses -> burn 2.5), though the cooled fast window keeps the
        # state out of alert...
        assert state.burn_slow == pytest.approx(2.5)
        assert state.state == STATE_OK
        # ...and one more clean epoch evicts it (deque maxlen = 4).
        states = engine.observe_epoch(4, {7: 100}, {7: 100})
        assert states[0].burn_slow == 0.0
        assert states[0].state == STATE_OK

    def test_states_sorted_by_flow_id(self):
        engine = SloEngine(TIGHT)
        states = engine.observe_epoch(0, {9: 10, 2: 10}, {9: 10, 2: 10})
        assert [s.flow_id for s in states] == [2, 9]


class TestTransitions:
    def test_events_and_counters_only_on_change(self):
        with _obs.recording(Recorder()) as rec:
            engine = SloEngine(TIGHT)
            feed(engine,
                 (100, 100),   # ok (no transition: ok is the default)
                 (100, 0),     # -> alert
                 (100, 0),     # alert steady: no event
                 (100, 100), (100, 100), (100, 100), (100, 100))  # -> ok
        events = [e for e in rec.tracer.events() if e.kind == "slo_burn"]
        assert [(e.fields["previous"], e.fields["state"]) for e in events] \
            == [("ok", "alert"), ("alert", "ok")]
        assert events[0].fields["flow"] == 7
        assert events[0].fields["epoch"] == 1
        assert rec.registry.counter_value("slo.alerts") == 1
        assert rec.registry.counter_value("slo.warns") == 0

    def test_warn_transition_counts_warns(self):
        with _obs.recording(Recorder()) as rec:
            feed(SloEngine(TIGHT), (100, 100), (100, 100), (100, 60))
        assert rec.registry.counter_value("slo.warns") == 1
        assert rec.registry.counter_value("slo.alerts") == 0

    def test_disabled_recorder_stays_silent(self):
        engine = SloEngine(TIGHT)
        state = feed(engine, (100, 0))
        assert state.state == STATE_ALERT  # state still computed
        assert not _obs.ENABLED


class TestSeriesRecording:
    def test_records_per_flow_series_with_prefix(self):
        store = TimeSeriesStore()
        with _obs.recording(Recorder(timeseries=store)):
            engine = SloEngine(TIGHT, series_prefix="armA/")
            engine.observe_epoch(0, {3: 10}, {3: 9})
            engine.observe_epoch(1, {3: 10}, {3: 10})
        assert store.names() == ["armA/slo.flow.3.burn_fast",
                                 "armA/slo.flow.3.burn_slow",
                                 "armA/slo.flow.3.pdr"]
        assert store.get("armA/slo.flow.3.pdr").points == [(0.0, 0.9),
                                                           (1.0, 1.0)]

    def test_no_store_records_nothing(self):
        with _obs.recording(Recorder()):
            SloEngine(TIGHT).observe_epoch(0, {3: 10}, {3: 10})
        # No store attached: nothing to assert beyond "did not raise".


class TestQueries:
    def test_state_queries(self):
        engine = SloEngine(TIGHT)
        engine.observe_epoch(0, {1: 100, 2: 100, 3: 100},
                             {1: 100, 2: 0, 3: 100})
        assert engine.state_of(2) == STATE_ALERT
        assert engine.state_of(1) == STATE_OK
        assert engine.state_of(99) == STATE_OK  # never observed
        assert engine.alerting_flows() == [2]
        assert engine.warning_flows() == []
        assert engine.flows_in_state(STATE_OK) == [1, 3]
        assert engine.worst_state() == STATE_ALERT
        assert SloEngine(TIGHT).worst_state() == STATE_OK

    def test_severity_ordering(self):
        assert severity(STATE_OK) < severity(STATE_WARN) < severity(
            STATE_ALERT)

    def test_flow_state_to_dict(self):
        state = FlowSloState(flow_id=1, epoch=2, pdr=0.8, burn_fast=2.0,
                             burn_slow=1.0, state=STATE_WARN,
                             epochs_observed=3)
        assert state.to_dict()["state"] == STATE_WARN
        assert state.to_dict()["flow_id"] == 1


# ----------------------------------------------------------------------
# Policy early-warning input
# ----------------------------------------------------------------------

def slo_observation(victims=(), slo_candidates=(), slo_alerts=(),
                    barred=()):
    links = {link: LinkEpochReport(link=link, epoch=4,
                                   reuse_samples=(0.5,),
                                   contention_free_samples=(),
                                   reuse_prr=0.5,
                                   contention_free_prr=None)
             for link in victims}
    return Observation(
        epoch=4, report=EpochReport(epoch=4, links=links), diagnoses=[],
        confirmed_victims=list(victims), confirmed_external=[],
        confirmed_suspects=[], channel_prr={}, actionable=True,
        rho_t=2, num_channels=5, barred_links=tuple(barred),
        slo_alerts=tuple(slo_alerts),
        slo_victim_candidates=tuple(slo_candidates))


class TestRescheduleEarlyWarning:
    def test_default_ignores_slo_candidates(self):
        policy = RescheduleVictims()  # slo_early_warning=False
        obs = slo_observation(slo_candidates=[(1, 2)], slo_alerts=[3])
        assert policy.decide(obs) is None

    def test_early_warning_acts_on_slo_candidates_alone(self):
        policy = RescheduleVictims(slo_early_warning=True)
        obs = slo_observation(slo_candidates=[(1, 2), (3, 4)],
                              slo_alerts=[3, 5])
        action = policy.decide(obs)
        assert action is not None
        assert sorted(action.victims) == [(1, 2), (3, 4)]
        assert action.reason == ("0 confirmed reuse victims + 2 SLO "
                                 "early-warning candidates (2 flows "
                                 "alerting)")

    def test_confirmed_victims_keep_their_reason_when_no_extras(self):
        # With no SLO candidates the reason string is bit-identical to
        # the slo_early_warning=False wording.
        base = RescheduleVictims().decide(slo_observation(
            victims=[(1, 2)]))
        early = RescheduleVictims(slo_early_warning=True).decide(
            slo_observation(victims=[(1, 2)]))
        assert base.reason == early.reason == "1 confirmed reuse victims"
        assert base.victims == early.victims

    def test_candidates_deduplicate_against_confirmed_and_barred(self):
        policy = RescheduleVictims(slo_early_warning=True)
        obs = slo_observation(victims=[(1, 2)],
                              slo_candidates=[(1, 2), (3, 4), (5, 6)],
                              slo_alerts=[9], barred=[(5, 6)])
        action = policy.decide(obs)
        assert sorted(action.victims) == [(1, 2), (3, 4)]
        assert "1 confirmed reuse victims + 1 SLO" in action.reason


# ----------------------------------------------------------------------
# Manager integration: the early-warning acceptance experiment
# ----------------------------------------------------------------------

class TestManagerSloIntegration:
    def test_slo_alert_fires_before_ks_confirmation(self, wustl):
        """The ISSUE acceptance criterion: under the seeded reuse-storm
        fault, at least one flow enters ``slo_burn`` alert *before* the
        K-S detector's streak confirmation produces its first victim —
        burn windows are shorter than warm-up + confirm streaks."""
        topology, environment = wustl
        config = ManagerConfig(scenario="reuse-storm", policy="noop",
                               scheduler_policy="RA", num_flows=40,
                               repetitions_per_epoch=8, num_epochs=6,
                               seed=3, warmup_epochs=2, confirm_epochs=2,
                               cooldown_epochs=1)
        with _obs.recording(Recorder()) as rec:
            report = NetworkManager(topology, environment, WUSTL_PLAN,
                                    config).run()

        alert_epochs = [o.epoch for o in report.epochs if o.slo_alerts]
        confirm_epochs = [o.epoch for o in report.epochs
                          if o.confirmed_victims]
        assert alert_epochs, "the storm never drove a flow into alert"
        assert confirm_epochs, "the K-S monitor never confirmed a victim"
        assert min(alert_epochs) < min(confirm_epochs)

        # The transition is also visible in the trace stream, ahead of
        # the first confirmed victim.
        burn_alerts = [e for e in rec.tracer.events()
                       if e.kind == "slo_burn"
                       and e.fields["state"] == STATE_ALERT]
        assert burn_alerts
        assert min(e.fields["epoch"] for e in burn_alerts) \
            < min(confirm_epochs)
        assert rec.registry.counter_value("slo.alerts") >= 1

    def test_epoch_outcomes_and_series_carry_slo_state(self, wustl):
        topology, environment = wustl
        config = ManagerConfig(scenario="reuse-storm", policy="reschedule",
                               scheduler_policy="RA", num_flows=40,
                               repetitions_per_epoch=8, num_epochs=6,
                               seed=3, warmup_epochs=1, confirm_epochs=1,
                               cooldown_epochs=1, series_prefix="run1/")
        store = TimeSeriesStore()
        with _obs.recording(Recorder(timeseries=store)):
            report = NetworkManager(topology, environment, WUSTL_PLAN,
                                    config).run()

        # Outcomes serialize their SLO fields.
        as_dict = report.to_dict()
        assert all("slo_alerts" in e and "slo_warns" in e
                   for e in as_dict["epochs"])
        alerting = [o for o in report.epochs if o.slo_alerts]
        assert alerting, "storm should drive flows into alert"

        # The manager recorded prefixed network-level series, one point
        # per epoch, and the SLO engine its per-flow series.
        median = store.get("run1/manager.median_pdr")
        assert median is not None
        assert len(median.points) == config.num_epochs
        assert store.get("run1/manager.slo_alerting").values()[-1] == len(
            report.epochs[-1].slo_alerts)
        assert any(name.startswith("run1/slo.flow.")
                   for name in store.names())
        assert any(name.startswith("run1/channel.") for name in
                   store.names())
        assert any(name.startswith("run1/manager.health.")
                   for name in store.names())

    def test_slo_victim_candidates_are_reuse_links_on_alerting_routes(
            self, wustl):
        topology, environment = wustl
        config = ManagerConfig(scenario="reuse-storm", policy="noop",
                               scheduler_policy="RA", num_flows=40,
                               repetitions_per_epoch=8, num_epochs=1,
                               seed=3)
        manager = NetworkManager(topology, environment, WUSTL_PLAN, config)
        network, flow_set, schedule = manager._initial_state()
        reuse = set(schedule.reuse_links())
        flows = {f.flow_id: f for f in flow_set}
        alerting = sorted(flows)[:3]

        candidates = NetworkManager._slo_victim_candidates(
            alerting, flow_set, schedule, barred=set())
        expected = sorted({link for fid in alerting
                           for link in flows[fid].links if link in reuse})
        assert list(candidates) == expected

        # Barred links drop out; no alerts -> no candidates.
        if candidates:
            barred = {candidates[0]}
            fewer = NetworkManager._slo_victim_candidates(
                alerting, flow_set, schedule, barred=barred)
            assert candidates[0] not in fewer
        assert NetworkManager._slo_victim_candidates(
            [], flow_set, schedule, set()) == ()
