"""Tests for repro.network.node and repro.network.topology."""

import numpy as np
import pytest

from repro.mac.channels import ChannelMap
from repro.network.node import NeighborEntry, Node, NodeRole, Position
from repro.network.topology import Topology

from conftest import build_topology


class TestPosition:
    def test_distance(self):
        assert Position(0, 0, 0).distance_to(Position(3, 4, 0)) == 5.0

    def test_distance_3d(self):
        assert Position(0, 0, 0).distance_to(Position(2, 3, 6)) == 7.0

    def test_as_tuple(self):
        assert Position(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)


class TestNode:
    def test_roles(self):
        ap = Node(0, NodeRole.ACCESS_POINT)
        fd = Node(1)
        assert ap.is_access_point and not ap.is_field_device
        assert fd.is_field_device and not fd.is_access_point

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Node(-1)

    def test_str(self):
        assert "field_device" in str(Node(3))


class TestNeighborEntry:
    def test_prr_counts(self):
        entry = NeighborEntry(neighbor_id=5)
        for success in (True, True, False, True):
            entry.record(channel=11, success=success)
        assert entry.prr() == 0.75
        assert entry.prr_on_channel(11) == 0.75
        assert entry.prr_on_channel(12) == 0.0

    def test_empty_prr_is_zero(self):
        assert NeighborEntry(neighbor_id=1).prr() == 0.0

    def test_per_channel_split(self):
        entry = NeighborEntry(neighbor_id=2)
        entry.record(11, True)
        entry.record(12, False)
        assert entry.prr_on_channel(11) == 1.0
        assert entry.prr_on_channel(12) == 0.0
        assert entry.prr() == 0.5


class TestTopologyValidation:
    def test_shape_mismatch_rejected(self):
        nodes = [Node(0), Node(1)]
        with pytest.raises(ValueError):
            Topology(nodes, ChannelMap.first_n(2), np.zeros((2, 2, 3)))

    def test_non_dense_ids_rejected(self):
        nodes = [Node(0), Node(2)]
        with pytest.raises(ValueError):
            Topology(nodes, ChannelMap.first_n(1), np.zeros((2, 2, 1)))

    def test_out_of_range_prr_rejected(self):
        nodes = [Node(0), Node(1)]
        prr = np.zeros((2, 2, 1))
        prr[0, 1, 0] = 1.5
        with pytest.raises(ValueError):
            Topology(nodes, ChannelMap.first_n(1), prr)

    def test_nonzero_self_link_rejected(self):
        nodes = [Node(0), Node(1)]
        prr = np.zeros((2, 2, 1))
        prr[0, 0, 0] = 0.5
        with pytest.raises(ValueError):
            Topology(nodes, ChannelMap.first_n(1), prr)


class TestTopologyQueries:
    def test_link_prr_by_physical_channel(self, line_topology):
        assert line_topology.link_prr(0, 1, 11) == 0.99
        assert line_topology.link_prr(0, 3, 11) == 0.0

    def test_min_max_mean(self, line_with_weak_links):
        assert line_with_weak_links.min_prr(0, 2) == 0.3
        assert line_with_weak_links.max_prr(0, 2) == 0.3
        assert line_with_weak_links.mean_prr(0, 1) == pytest.approx(0.99)

    def test_degree_counts_bidirectional_strong_neighbors(self, line_topology):
        assert line_topology.degree(0, 0.9) == 1
        assert line_topology.degree(2, 0.9) == 2

    def test_weak_links_do_not_count_toward_degree(self, line_with_weak_links):
        assert line_with_weak_links.degree(0, 0.9) == 1

    def test_degrees_vector(self, line_topology):
        assert list(line_topology.degrees(0.9)) == [1, 2, 2, 2, 2, 1]

    def test_summary_keys(self, line_topology):
        summary = line_topology.summary()
        assert summary["num_nodes"] == 6
        assert summary["max_degree"] == 2


class TestRestrictChannels:
    def test_restrict_keeps_selected_channels(self, line_topology):
        restricted = line_topology.restrict_channels([12])
        assert restricted.num_channels == 1
        assert restricted.link_prr(0, 1, 12) == 0.99

    def test_restrict_unknown_channel_rejected(self, line_topology):
        with pytest.raises(ValueError):
            line_topology.restrict_channels([25])

    def test_restrict_reorders(self, line_topology):
        restricted = line_topology.restrict_channels([12, 11])
        assert list(restricted.channel_map) == [12, 11]


class TestAccessPoints:
    def test_with_access_points(self, line_topology):
        topo = line_topology.with_access_points([2, 3])
        assert topo.access_points() == [2, 3]
        assert set(topo.field_devices()) == {0, 1, 4, 5}

    def test_unknown_ap_rejected(self, line_topology):
        with pytest.raises(ValueError):
            line_topology.with_access_points([99])

    def test_reassignment_replaces(self, line_topology):
        topo = line_topology.with_access_points([0])
        topo = topo.with_access_points([5])
        assert topo.access_points() == [5]

    def test_positions_array(self, line_topology):
        positions = line_topology.positions()
        assert positions.shape == (6, 3)
        assert positions[3, 0] == 3.0
