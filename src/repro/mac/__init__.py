"""TSCH MAC-layer primitives: channels, hopping, slot timing."""

from repro.mac.channels import (
    Blacklist,
    ChannelMap,
    MAX_CHANNEL,
    MIN_CHANNEL,
    NUM_CHANNELS_24GHZ,
    channel_center_frequency_mhz,
    channels_overlapping_wifi,
    wifi_center_frequency_mhz,
)
from repro.mac.superframe import (
    DeviceSlot,
    DeviceTable,
    SlotAction,
    Superframe,
    build_superframe,
)
from repro.mac.tsch import (
    HoppingSequence,
    SLOT_DURATION_MS,
    SLOT_DURATION_S,
    SLOTS_PER_SECOND,
    SlotTiming,
    hop_channel,
    seconds_to_slots,
    slots_to_seconds,
)

__all__ = [
    "Blacklist",
    "ChannelMap",
    "DeviceSlot",
    "DeviceTable",
    "SlotAction",
    "Superframe",
    "build_superframe",
    "HoppingSequence",
    "MAX_CHANNEL",
    "MIN_CHANNEL",
    "NUM_CHANNELS_24GHZ",
    "SLOT_DURATION_MS",
    "SLOT_DURATION_S",
    "SLOTS_PER_SECOND",
    "SlotTiming",
    "channel_center_frequency_mhz",
    "channels_overlapping_wifi",
    "hop_channel",
    "seconds_to_slots",
    "slots_to_seconds",
    "wifi_center_frequency_mhz",
]
