"""IEEE 802.15.4 channel bookkeeping for TSCH networks.

The 2.4 GHz PHY of IEEE 802.15.4 defines 16 channels, numbered 11 through
26, spaced 5 MHz apart with center frequencies ``2405 + 5 * (ch - 11)`` MHz.
TSCH uses a subset of these (channels with extreme noise may be
blacklisted) and hops over the remaining ones.

This module owns the mapping between *physical channels* (11..26) and
*logical channels* (0..|M|-1), plus helpers to reason about spectral
overlap with 2.4 GHz WiFi, which the evaluation of the paper uses as an
external interference source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

#: Lowest and highest 802.15.4 channel numbers in the 2.4 GHz band.
MIN_CHANNEL = 11
MAX_CHANNEL = 26

#: Number of channels available in the 2.4 GHz band.
NUM_CHANNELS_24GHZ = MAX_CHANNEL - MIN_CHANNEL + 1

#: Channel spacing in MHz.
CHANNEL_SPACING_MHZ = 5.0


def channel_center_frequency_mhz(channel: int) -> float:
    """Return the center frequency of an 802.15.4 channel in MHz.

    Args:
        channel: Physical channel number (11..26).

    Raises:
        ValueError: If ``channel`` is outside the 2.4 GHz band.
    """
    _validate_channel(channel)
    return 2405.0 + CHANNEL_SPACING_MHZ * (channel - MIN_CHANNEL)


def wifi_center_frequency_mhz(wifi_channel: int) -> float:
    """Return the center frequency of a 2.4 GHz WiFi channel in MHz.

    WiFi channels 1..13 are centered at ``2412 + 5 * (ch - 1)`` MHz, each
    occupying roughly 22 MHz.
    """
    if not 1 <= wifi_channel <= 13:
        raise ValueError(f"WiFi channel must be in [1, 13], got {wifi_channel}")
    return 2412.0 + 5.0 * (wifi_channel - 1)


def channels_overlapping_wifi(wifi_channel: int,
                              wifi_bandwidth_mhz: float = 22.0) -> List[int]:
    """Return the 802.15.4 channels whose band overlaps a WiFi channel.

    An 802.15.4 channel occupies about 2 MHz around its center; a WiFi
    channel occupies ``wifi_bandwidth_mhz`` around its own.  WiFi channel 1
    overlaps 802.15.4 channels 11-14, matching the setup in the paper's
    Section VII-E.
    """
    wifi_center = wifi_center_frequency_mhz(wifi_channel)
    half_width = wifi_bandwidth_mhz / 2.0 + 1.0  # +1 MHz for the 802.15.4 half-band
    overlapping = []
    for channel in range(MIN_CHANNEL, MAX_CHANNEL + 1):
        if abs(channel_center_frequency_mhz(channel) - wifi_center) <= half_width:
            overlapping.append(channel)
    return overlapping


def _validate_channel(channel: int) -> None:
    if not MIN_CHANNEL <= channel <= MAX_CHANNEL:
        raise ValueError(
            f"802.15.4 channel must be in [{MIN_CHANNEL}, {MAX_CHANNEL}], got {channel}")


@dataclass(frozen=True)
class ChannelMap:
    """An ordered set of physical channels used by a TSCH network.

    The map translates between *logical channels* (indices ``0..|M|-1``
    produced by the TSCH hopping formula) and *physical channels*
    (802.15.4 channel numbers).  All devices in a network share the same
    map, as mandated by the WirelessHART specification.

    Attributes:
        channels: Physical channel numbers, in logical-channel order.
    """

    channels: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("ChannelMap requires at least one channel")
        for channel in self.channels:
            _validate_channel(channel)
        if len(set(self.channels)) != len(self.channels):
            raise ValueError(f"duplicate channels in map: {self.channels}")

    @classmethod
    def first_n(cls, n: int) -> "ChannelMap":
        """Build a map of the first ``n`` channels starting at channel 11."""
        if not 1 <= n <= NUM_CHANNELS_24GHZ:
            raise ValueError(f"n must be in [1, {NUM_CHANNELS_24GHZ}], got {n}")
        return cls(tuple(range(MIN_CHANNEL, MIN_CHANNEL + n)))

    @classmethod
    def all_channels(cls) -> "ChannelMap":
        """Build a map covering all 16 channels of the 2.4 GHz band."""
        return cls.first_n(NUM_CHANNELS_24GHZ)

    @classmethod
    def from_blacklist(cls, blacklisted: Iterable[int]) -> "ChannelMap":
        """Build a map of every 2.4 GHz channel except the blacklisted ones."""
        banned = set(blacklisted)
        remaining = tuple(ch for ch in range(MIN_CHANNEL, MAX_CHANNEL + 1)
                          if ch not in banned)
        if not remaining:
            raise ValueError("blacklist removes every channel")
        return cls(remaining)

    def __len__(self) -> int:
        return len(self.channels)

    def __iter__(self):
        return iter(self.channels)

    def __contains__(self, channel: int) -> bool:
        return channel in self.channels

    def physical(self, logical_channel: int) -> int:
        """Map a logical channel index to its physical channel number."""
        if not 0 <= logical_channel < len(self.channels):
            raise ValueError(
                f"logical channel must be in [0, {len(self.channels) - 1}], "
                f"got {logical_channel}")
        return self.channels[logical_channel]

    def logical(self, physical_channel: int) -> int:
        """Map a physical channel number back to its logical index."""
        try:
            return self.channels.index(physical_channel)
        except ValueError:
            raise ValueError(
                f"channel {physical_channel} is not in this map") from None

    def index_map(self) -> dict:
        """Return a dict from physical channel to logical index."""
        return {ch: i for i, ch in enumerate(self.channels)}


@dataclass
class Blacklist:
    """A mutable set of blacklisted channels with noise-threshold admission.

    WirelessHART allows the network manager to blacklist channels whose
    ambient noise makes them unusable.  This helper tracks per-channel noise
    observations and derives the blacklist from a threshold.
    """

    noise_threshold_dbm: float = -85.0
    _noise_dbm: dict = field(default_factory=dict)

    def observe(self, channel: int, noise_dbm: float) -> None:
        """Record a noise-floor observation for a channel (running max)."""
        _validate_channel(channel)
        current = self._noise_dbm.get(channel, float("-inf"))
        self._noise_dbm[channel] = max(current, noise_dbm)

    def blacklisted(self) -> List[int]:
        """Return channels whose observed noise exceeds the threshold."""
        return sorted(ch for ch, noise in self._noise_dbm.items()
                      if noise > self.noise_threshold_dbm)

    def usable_map(self) -> ChannelMap:
        """Return a :class:`ChannelMap` of all non-blacklisted channels."""
        return ChannelMap.from_blacklist(self.blacklisted())
