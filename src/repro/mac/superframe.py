"""Superframes and per-device slot tables.

The network manager does not ship the global schedule to the field: each
device receives only its own actions — for every slot of the superframe,
whether to transmit, receive, or sleep, on which channel offset, and
with which neighbor.  This module converts a global
:class:`~repro.core.schedule.Schedule` into those per-device tables,
which is also what the simulator-independent energy analysis consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    # Imported lazily: repro.core imports repro.mac at load time, so a
    # module-level import here would be circular.
    from repro.core.schedule import Schedule


class SlotAction(enum.Enum):
    """What a device does in one slot of its superframe."""

    TRANSMIT = "transmit"
    RECEIVE = "receive"
    SLEEP = "sleep"


@dataclass(frozen=True)
class DeviceSlot:
    """One entry of a device's slot table.

    Attributes:
        slot: Slot index within the superframe.
        action: Transmit / receive (sleep slots are omitted from tables).
        peer: The neighbor on the other end of the link.
        channel_offset: The cell's channel offset.
        flow_id: The flow whose packet uses this cell.
    """

    slot: int
    action: SlotAction
    peer: int
    channel_offset: int
    flow_id: int


@dataclass
class DeviceTable:
    """All scheduled actions of one device within a superframe."""

    node_id: int
    superframe_slots: int
    entries: List[DeviceSlot] = field(default_factory=list)

    def action_in_slot(self, slot: int) -> SlotAction:
        """The device's action in a slot (SLEEP when unscheduled)."""
        for entry in self.entries:
            if entry.slot == slot:
                return entry.action
        return SlotAction.SLEEP

    def transmit_slots(self) -> List[int]:
        """Slots in which the device transmits."""
        return sorted(e.slot for e in self.entries
                      if e.action is SlotAction.TRANSMIT)

    def receive_slots(self) -> List[int]:
        """Slots in which the device listens."""
        return sorted(e.slot for e in self.entries
                      if e.action is SlotAction.RECEIVE)

    def duty_cycle(self) -> float:
        """Fraction of superframe slots the radio is on."""
        if self.superframe_slots == 0:
            return 0.0
        return len(self.entries) / self.superframe_slots


@dataclass(frozen=True)
class Superframe:
    """A complete set of per-device tables for one hyperperiod.

    Attributes:
        num_slots: Superframe length (the flow set's hyperperiod).
        num_offsets: Channel offsets in use.
        tables: One table per device that has any scheduled action.
    """

    num_slots: int
    num_offsets: int
    tables: Dict[int, DeviceTable]

    def table(self, node_id: int) -> DeviceTable:
        """The slot table of one device (empty table if unscheduled)."""
        if node_id in self.tables:
            return self.tables[node_id]
        return DeviceTable(node_id=node_id, superframe_slots=self.num_slots)

    def active_devices(self) -> List[int]:
        """Devices with at least one scheduled slot."""
        return sorted(self.tables)

    def mean_duty_cycle(self) -> float:
        """Average radio duty cycle over active devices."""
        if not self.tables:
            return 0.0
        return (sum(t.duty_cycle() for t in self.tables.values())
                / len(self.tables))

    def busiest_device(self) -> Tuple[Optional[int], float]:
        """``(node_id, duty_cycle)`` of the most loaded device."""
        if not self.tables:
            return (None, 0.0)
        node_id = max(self.tables,
                      key=lambda n: self.tables[n].duty_cycle())
        return (node_id, self.tables[node_id].duty_cycle())


def build_superframe(schedule: "Schedule") -> Superframe:
    """Split a global schedule into per-device slot tables.

    Every scheduled transmission becomes a TRANSMIT entry at the sender
    and a RECEIVE entry at the receiver; devices not named by any
    transmission are simply absent (all-sleep).
    """
    tables: Dict[int, DeviceTable] = {}

    def table_for(node_id: int) -> DeviceTable:
        if node_id not in tables:
            tables[node_id] = DeviceTable(
                node_id=node_id, superframe_slots=schedule.num_slots)
        return tables[node_id]

    for entry in schedule.entries:
        request = entry.request
        table_for(request.sender).entries.append(DeviceSlot(
            slot=entry.slot, action=SlotAction.TRANSMIT,
            peer=request.receiver, channel_offset=entry.offset,
            flow_id=request.flow_id))
        table_for(request.receiver).entries.append(DeviceSlot(
            slot=entry.slot, action=SlotAction.RECEIVE,
            peer=request.sender, channel_offset=entry.offset,
            flow_id=request.flow_id))

    for table in tables.values():
        table.entries.sort(key=lambda e: e.slot)
    return Superframe(num_slots=schedule.num_slots,
                      num_offsets=schedule.num_offsets, tables=tables)
