"""Time Slotted Channel Hopping (TSCH) primitives.

TSCH (IEEE 802.15.4e) divides time into fixed-length slots — 10 ms in
WirelessHART — each wide enough for one data transmission and its
acknowledgement.  Every (slot, channel-offset) cell in the schedule maps to
a physical channel through the hopping formula

    logicalChannel = (ASN + channelOffset) mod |M|

where ASN is the Absolute Slot Number since network start and M the set of
channels in use.  Because ASN advances every slot, a given channel offset
cycles through every physical channel, which is why link-quality
requirements in the paper are stated over *all* channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mac.channels import ChannelMap

#: WirelessHART slot duration in milliseconds.
SLOT_DURATION_MS = 10.0

#: WirelessHART slot duration in seconds.
SLOT_DURATION_S = SLOT_DURATION_MS / 1000.0

#: Number of time slots per second.
SLOTS_PER_SECOND = int(round(1.0 / SLOT_DURATION_S))


def seconds_to_slots(seconds: float) -> int:
    """Convert a duration in seconds to a whole number of 10 ms slots.

    Raises:
        ValueError: If the duration is not a positive integral number of
            slots (WirelessHART periods are configured in slot multiples).
    """
    slots = seconds * SLOTS_PER_SECOND
    rounded = int(round(slots))
    if rounded <= 0 or abs(slots - rounded) > 1e-9:
        raise ValueError(
            f"{seconds} s is not a positive whole number of {SLOT_DURATION_MS} ms slots")
    return rounded


def slots_to_seconds(slots: int) -> float:
    """Convert a slot count to seconds."""
    return slots * SLOT_DURATION_S


def hop_channel(asn: int, channel_offset: int, num_channels: int) -> int:
    """Compute the logical channel for a cell via the TSCH hopping formula.

    Args:
        asn: Absolute Slot Number (slots elapsed since network start).
        channel_offset: The cell's channel offset, in ``[0, num_channels)``.
        num_channels: Size of the channel map ``|M|``.

    Returns:
        The logical channel index in ``[0, num_channels)``.
    """
    if num_channels <= 0:
        raise ValueError("num_channels must be positive")
    if asn < 0:
        raise ValueError("ASN must be non-negative")
    if not 0 <= channel_offset < num_channels:
        raise ValueError(
            f"channel offset must be in [0, {num_channels - 1}], got {channel_offset}")
    return (asn + channel_offset) % num_channels


@dataclass(frozen=True)
class HoppingSequence:
    """Resolves (ASN, channel offset) cells to physical channels.

    Combines the TSCH hopping formula with a shared
    :class:`~repro.mac.channels.ChannelMap`, exactly as each WirelessHART
    field device does at run time.
    """

    channel_map: ChannelMap

    @property
    def num_channels(self) -> int:
        """Number of channels the network hops over."""
        return len(self.channel_map)

    def logical_channel(self, asn: int, channel_offset: int) -> int:
        """Return the logical channel for a cell."""
        return hop_channel(asn, channel_offset, self.num_channels)

    def physical_channel(self, asn: int, channel_offset: int) -> int:
        """Return the physical 802.15.4 channel for a cell."""
        return self.channel_map.physical(self.logical_channel(asn, channel_offset))

    def channels_visited(self, channel_offset: int, num_slots: int,
                         start_asn: int = 0) -> List[int]:
        """List the physical channels a cell visits over ``num_slots`` slots.

        Useful for verifying that every offset cycles through the full
        channel map (the property that forces the paper's "reliable on all
        channels" link admission rule).
        """
        return [self.physical_channel(asn, channel_offset)
                for asn in range(start_asn, start_asn + num_slots)]


@dataclass(frozen=True)
class SlotTiming:
    """Intra-slot timing template (simplified WirelessHART timeslot).

    All durations are in microseconds and sum to at most the 10 ms slot.
    The defaults follow the IEEE 802.15.4e TSCH timeslot template closely
    enough for simulation purposes.
    """

    tx_offset_us: float = 2120.0      #: sender waits before transmitting
    max_packet_us: float = 4256.0     #: 133-byte frame at 250 kbps
    rx_ack_delay_us: float = 800.0    #: turnaround before the ACK
    ack_duration_us: float = 1000.0   #: ACK frame airtime

    def total_us(self) -> float:
        """Total busy time inside the slot."""
        return (self.tx_offset_us + self.max_packet_us
                + self.rx_ack_delay_us + self.ack_duration_us)

    def fits_slot(self) -> bool:
        """Whether the template fits within one 10 ms slot."""
        return self.total_us() <= SLOT_DURATION_MS * 1000.0
