"""Command-line interface: ``python -m repro <command>``.

Commands mirror the experiment runners so results are reproducible from
a shell without writing Python:

* ``topology`` — synthesize a testbed, print statistics, optionally save;
* ``sweep`` — schedulable-ratio sweep (Figures 1-3);
* ``reliability`` — scheduled-then-simulated PDR comparison (Figure 8);
* ``detection`` — K-S detection experiment (Figures 10-11);
* ``manage`` — closed-loop network manager under a fault scenario;
* ``adapt`` — remediation policies vs. NoOp under one fault timeline;
* ``bench`` — scheduler kernel benchmark (writes BENCH_schedulers.json);
* ``schedule`` — build one schedule and save it (+ flows) as artifacts;
* ``report`` — pretty-print a saved metrics snapshot;
* ``validate`` — audit a saved schedule against the reuse contract;
* ``fuzz`` — seeded differential fuzzing of scheduler + simulator paths;
* ``explain`` — constraint chain for one link × slot of a schedule;
* ``timeline`` — ASCII superframe Gantt of a saved schedule;
* ``ledger`` — list / show / diff the run ledger (``runs.jsonl``);
* ``metrics`` — export a snapshot (+ time series) as OpenMetrics text,
  or strictly validate an exposition file;
* ``top`` — live ASCII observatory over a run's time-series dump
  (``--once`` for CI/pipes);
* ``serve`` — long-lived scheduling service: NDJSON requests over a
  unix socket or TCP, sharded worker processes, compiled-artifact
  cache (see ``repro.service``);
* ``loadgen`` — seeded mixed workload + latency report against a
  running ``serve`` (``--verify`` proves responses bit-identical to
  direct library calls).

Experiment commands accept ``--workers N`` to fan independent trials
over N worker processes (0 = all CPUs) with results identical to a
serial run.

Every experiment command accepts ``--trace FILE`` (structured JSONL
event trace), ``--metrics-out FILE`` (metrics snapshot JSON),
``--provenance FILE`` (per-placement decision records, JSONL), and
``--timeseries FILE`` (windowed per-epoch series, JSONL); any of the
four turns the observability layer on for the run (see ``repro.obs``).
Every *producing* command appends one record — argv, config hash,
seeds, environment, wall time, exit status, artifact paths — to the
append-only run ledger (default ``runs.jsonl``; ``--ledger PATH``
moves it, ``--no-ledger`` skips it).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import obs
from repro.experiments.common import prepare_network
from repro.experiments.detection_exp import run_detection
from repro.experiments.reliability import run_reliability
from repro.experiments.schedulability import run_sweep
from repro.flows.generator import PeriodRange
from repro.routing.traffic import TrafficType


def _make_testbed(name: str, seed: Optional[int]):
    from repro.testbeds import make_indriya, make_wustl

    factories = {"indriya": make_indriya, "wustl": make_wustl}
    factory = factories.get(name)
    if factory is None:
        raise SystemExit(f"unknown testbed: {name!r} (indriya or wustl)")
    # The seed is passed positionally so both factories are driven
    # uniformly; None keeps each testbed's canonical default seed.
    return factory() if seed is None else factory(seed)


def _plan_for(name: str):
    from repro.testbeds import INDRIYA_PLAN, WUSTL_PLAN

    return INDRIYA_PLAN if name == "indriya" else WUSTL_PLAN


def cmd_topology(args: argparse.Namespace) -> int:
    topology, _ = _make_testbed(args.testbed, args.seed)
    network = prepare_network(topology, num_channels=args.channels)
    summary = topology.summary()
    print(f"testbed: {topology.name}  nodes: {topology.num_nodes}  "
          f"channels in use: {args.channels}")
    print(f"communication graph: {network.communication.num_edges()} edges, "
          f"connected: {network.communication.is_connected()}")
    print(f"reuse graph: {network.reuse.num_edges()} edges, "
          f"diameter {network.reuse.diameter()}")
    print(f"mean degree (PRR>=0.9 all channels): {summary['mean_degree']:.1f}")
    print(f"access points: {network.access_points}")
    if args.save:
        from repro.io import save_topology

        save_topology(network.topology, args.save)
        print(f"saved channel-restricted topology to {args.save}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    topology, _ = _make_testbed(args.testbed, args.seed)
    traffic = (TrafficType.CENTRALIZED if args.traffic == "centralized"
               else TrafficType.PEER_TO_PEER)
    result = run_sweep(
        topology, traffic, vary=args.vary, values=args.values,
        fixed_channels=args.channels, fixed_flows=args.flows,
        period_range=PeriodRange(args.period_min_exp, args.period_max_exp),
        num_flow_sets=args.flow_sets, seed=args.seed or 0,
        workers=args.workers)
    ratios = result.schedulable_ratios()
    print(f"schedulable ratio vs {args.vary} ({args.traffic}, "
          f"{args.flow_sets} flow sets/point):")
    print("  x:  " + "  ".join(f"{x:>6}" for x in result.values))
    for policy in result.policies:
        row = "  ".join(f"{ratios[policy][x]:6.2f}" for x in result.values)
        print(f"  {policy:>2}: {row}")
    return 0


def cmd_reliability(args: argparse.Namespace) -> int:
    topology, environment = _make_testbed(args.testbed, args.seed)
    outcomes = run_reliability(
        topology, environment, num_flow_sets=args.flow_sets,
        repetitions=args.repetitions, seed=args.seed or 0,
        workers=args.workers, engine=args.engine)
    print(f"{'set':>4} {'policy':>7} {'median':>7} {'worst':>7}")
    for outcome in outcomes:
        if not outcome.schedulable:
            print(f"{outcome.set_index:>4} {outcome.policy:>7} "
                  f"{'unschedulable':>15}")
            continue
        print(f"{outcome.set_index:>4} {outcome.policy:>7} "
              f"{outcome.median_pdr:7.3f} {outcome.worst_pdr:7.3f}")
    return 0


def cmd_detection(args: argparse.Namespace) -> int:
    topology, environment = _make_testbed(args.testbed, args.seed)
    outcomes = run_detection(
        topology, environment, _plan_for(args.testbed),
        num_flows=args.flows, num_epochs=args.epochs,
        seed=args.seed or 0, workers=args.workers, engine=args.engine)
    for outcome in outcomes:
        rejected = outcome.rejected_links()
        accepted = outcome.accepted_links()
        print(f"{outcome.policy}/{outcome.condition}: "
              f"reuse links {len(outcome.reuse_links)}, "
              f"rejected {len(rejected)}, accepted {len(accepted)}")
        for link in rejected:
            print(f"  reuse-degraded: {link}")
    return 0


def _manager_config(args: argparse.Namespace):
    """Build a ManagerConfig from manage/adapt CLI arguments."""
    from repro.manager import ManagerConfig, resolve_scenario
    from repro.manager.policies import RescheduleVictims
    from repro.obs.slo import SloConfig

    try:
        scenario = resolve_scenario(args.scenario)
        slo = SloConfig(target_pdr=args.slo_target_pdr,
                        fast_window=args.slo_fast_window,
                        slow_window=args.slo_slow_window,
                        burn_threshold=args.slo_burn_threshold)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    policy = getattr(args, "policy", "noop")
    if args.slo_early_warning and policy == "reschedule":
        policy = RescheduleVictims(slo_early_warning=True)
    flows = args.flows
    reps = args.reps
    warmup, confirm, cooldown = 2, 2, 1
    if args.quick:
        # CI smoke mode: lighter workload and hysteresis so a few
        # epochs already exercise detection and remediation.
        flows = min(flows, 40)
        reps = min(reps, 8)
        warmup, confirm = 1, 1
    return ManagerConfig(
        scenario=scenario, policy=policy,
        scheduler_policy=args.scheduler, rho_t=args.rho_t,
        num_epochs=args.epochs, repetitions_per_epoch=reps,
        num_flows=flows, channels=tuple(args.channels),
        seed=args.seed or 0, warmup_epochs=warmup,
        confirm_epochs=confirm, cooldown_epochs=cooldown,
        repair=not args.no_repair, slo=slo,
        engine=getattr(args, "engine", "auto"))


def _print_manager_report(report) -> None:
    """Epoch-by-epoch table for one ManagerReport."""
    print(f"policy {report.policy} / scenario '{report.scenario}' / "
          f"{report.scheduler_policy} schedules / seed {report.seed}")
    print(f"{'epoch':>5} {'conditions':<24} {'median':>7} {'worst':>7} "
          f"{'reuse':>6} {'rej':>4} {'acc':>4} {'susp':>5} {'slo':>4}  "
          f"action")
    for o in report.epochs:
        action = o.action or "-"
        if o.action and not o.action_applied:
            action += " (failed)"
        print(f"{o.epoch:>5} {o.conditions:<24} {o.median_pdr:7.3f} "
              f"{o.worst_pdr:7.3f} {o.num_reuse_links:>6} {o.num_reject:>4} "
              f"{o.num_accept:>4} {len(o.confirmed_suspects):>5} "
              f"{len(o.slo_alerts):>4}  {action}")
    print(f"  barred links: {len(report.barred_links)}  "
          f"final channels: {list(report.final_channels)}  "
          f"final rho_t: {report.final_rho_t}")


def _write_reports(reports, path: str) -> None:
    """Serialize ManagerReports to a JSON artifact."""
    import json

    payload = [report.to_dict() for report in reports]
    with open(path, "w") as handle:
        json.dump(payload if len(payload) != 1 else payload[0], handle,
                  indent=2)
    print(f"manager report -> {path}")


def cmd_manage(args: argparse.Namespace) -> int:
    from repro.manager import run_manager

    topology, environment = _make_testbed(args.testbed, args.seed)
    config = _manager_config(args)
    seeds = args.seeds if args.seeds is not None else [config.seed]
    reports = run_manager(topology, environment, _plan_for(args.testbed),
                          config, seeds=seeds, workers=args.workers)
    for report in reports:
        _print_manager_report(report)
    if args.report_out:
        _write_reports(reports, args.report_out)
    return 0


def cmd_adapt(args: argparse.Namespace) -> int:
    from repro.experiments.adaptation import format_adaptation, run_adaptation

    topology, environment = _make_testbed(args.testbed, args.seed)
    config = _manager_config(args)
    reports = run_adaptation(topology, environment, _plan_for(args.testbed),
                             scenario=config.scenario, policies=args.policies,
                             config=config, workers=args.workers)
    print(format_adaptation(reports, metric=args.metric))
    if args.report_out:
        _write_reports(reports, args.report_out)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (append_history, compare_bench, format_bench,
                             run_bench)

    baseline = None
    if args.compare:
        # Load before the (slow) bench run so a bad path fails fast.
        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot load baseline {args.compare}: {error}",
                  file=sys.stderr)
            return 2
    report = run_bench(args.out, quick=args.quick, seed=args.seed or 1,
                       repetitions=args.repetitions)
    print(format_bench(report))
    if args.out != "-":
        print(f"report -> {args.out}")
    if args.history != "-":
        append_history(report, args.history)
        print(f"history += {args.history}")
    if baseline is not None:
        regressions = compare_bench(report, baseline)
        if regressions:
            for line in regressions:
                print(line, file=sys.stderr)
            return 3
        print(f"no wall-time regression vs {args.compare} "
              f"(threshold 20%)")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.experiments.common import build_workload, schedule_workload
    from repro.io import save_flow_set, save_schedule, save_topology

    topology, _ = _make_testbed(args.testbed, args.seed)
    network = prepare_network(topology, num_channels=args.channels)
    traffic = (TrafficType.CENTRALIZED if args.traffic == "centralized"
               else TrafficType.PEER_TO_PEER)
    rng = np.random.default_rng(args.seed or 0)
    flow_set = build_workload(
        network, args.flows,
        PeriodRange(args.period_min_exp, args.period_max_exp),
        traffic, rng)
    result = schedule_workload(network, flow_set, args.policy,
                               rho_t=args.rho_t)
    schedule = result.schedule
    print(f"{args.policy} on {args.testbed} ({args.flows} flows, "
          f"{args.channels} channels): "
          f"{'schedulable' if result.schedulable else 'UNSCHEDULABLE'}, "
          f"{len(schedule)} placements, "
          f"{schedule.num_reused_cells()} reuse cells, "
          f"makespan {schedule.makespan()}")
    if args.schedule_out:
        save_schedule(schedule, args.schedule_out)
        print(f"schedule -> {args.schedule_out}")
    if args.flows_out:
        save_flow_set(flow_set, args.flows_out)
        print(f"flow set -> {args.flows_out}")
    if args.topology_out:
        save_topology(network.topology, args.topology_out)
        print(f"topology -> {args.topology_out}")
    return 0 if result.schedulable else 1


def cmd_explain(args: argparse.Namespace) -> int:
    import math

    from repro.io import load_jsonl, load_schedule, load_topology
    from repro.obs.explain import explain_cell, explain_from_provenance

    try:
        topology = load_topology(args.topology)
        schedule = load_schedule(args.schedule, strict=False)
        provenance = (load_jsonl(args.provenance_in)
                      if args.provenance_in else None)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load artifacts: {error}", file=sys.stderr)
        return 2
    sender, receiver = args.link
    if not (0 <= sender < schedule.num_nodes
            and 0 <= receiver < schedule.num_nodes):
        print(f"error: link ({sender}, {receiver}) out of range for "
              f"{schedule.num_nodes} nodes", file=sys.stderr)
        return 2
    if not 0 <= args.slot < schedule.num_slots:
        print(f"error: slot {args.slot} out of range for "
              f"{schedule.num_slots} slots", file=sys.stderr)
        return 2
    network = prepare_network(topology)
    rho = math.inf if args.policy == "NR" else args.rho_t
    for line in explain_cell(schedule, network.reuse, sender, receiver,
                             args.slot, rho):
        print(line)
    if provenance is not None:
        lines = explain_from_provenance(
            provenance, sender, receiver,
            None if args.all_decisions else args.slot)
        print()
        if lines:
            print("recorded decisions for this link:")
            for line in lines:
                print(line)
        else:
            print("no recorded decisions touch this link"
                  + ("" if args.all_decisions else " at this slot"))
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.io import load_flow_set, load_schedule
    from repro.obs.timeline import parse_slot_range, render_timeline

    try:
        schedule = load_schedule(args.schedule, strict=False)
        flow_set = load_flow_set(args.flows) if args.flows else None
        start, end = ((0, None) if args.slots is None
                      else parse_slot_range(args.slots))
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        print(render_timeline(schedule, flow_set, start, end))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_ledger(args: argparse.Namespace) -> int:
    import json

    from repro.obs.ledger import RunLedger, diff_records

    ledger = RunLedger(args.ledger)
    records = [r for r in ledger.records() if r.get("kind") == "run"]
    if ledger.skipped:
        # Corrupt/truncated lines must not hide the readable history,
        # but they must not pass silently either.
        print(f"warning: skipped {ledger.skipped} unparseable line(s) "
              f"in {ledger.path}", file=sys.stderr)
    if args.action == "list":
        if args.command_filter is not None:
            records = [r for r in records
                       if r.get("command") == args.command_filter]
        if args.status_filter is not None:
            records = [r for r in records
                       if str(r.get("status", ""))
                       .startswith(args.status_filter)]
        if args.limit is not None and args.limit >= 0:
            records = records[-args.limit:] if args.limit else []
        if not records:
            print(f"no runs recorded in {ledger.path}")
            return 0
        print(f"{'run_id':<34} {'command':<12} {'status':<12} "
              f"{'wall_s':>8}  artifacts")
        for record in records:
            wall = record.get("wall_s")
            wall_text = f"{wall:8.2f}" if wall is not None else f"{'-':>8}"
            print(f"{record.get('run_id', '?'):<34} "
                  f"{record.get('command', '?'):<12} "
                  f"{str(record.get('status', '?')):<12} "
                  f"{wall_text}  {len(record.get('artifacts', []))}")
        return 0
    if args.action == "show":
        if len(args.run_ids) != 1:
            print("error: ledger show takes exactly one run id",
                  file=sys.stderr)
            return 2
        record = ledger.find(args.run_ids[0])
        if record is None:
            print(f"error: no run matching {args.run_ids[0]!r} in "
                  f"{ledger.path}", file=sys.stderr)
            return 2
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    # diff
    if len(args.run_ids) != 2:
        print("error: ledger diff takes exactly two run ids",
              file=sys.stderr)
        return 2
    found = [ledger.find(run_id) for run_id in args.run_ids]
    for run_id, record in zip(args.run_ids, found):
        if record is None:
            print(f"error: no run matching {run_id!r} in {ledger.path}",
                  file=sys.stderr)
            return 2
    lines = diff_records(found[0], found[1])
    if not lines:
        print("runs are equivalent (same command, config, environment)")
        return 0
    print(f"{found[0]['run_id']} -> {found[1]['run_id']}:")
    for line in lines:
        print(f"  {line}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.openmetrics import parse_openmetrics, render_openmetrics

    if args.action == "check":
        # The strict-validation step CI runs against an exported
        # exposition: exit 0 only when every line parses.
        try:
            if args.exposition == "-":
                text = sys.stdin.read()
            else:
                with open(args.exposition, "r", encoding="utf-8") as handle:
                    text = handle.read()
            families = parse_openmetrics(text)
        except OSError as error:
            print(f"error: cannot read {args.exposition}: {error}",
                  file=sys.stderr)
            return 2
        except ValueError as error:
            print(f"invalid exposition: {error}", file=sys.stderr)
            return 1
        samples = sum(len(f["samples"]) for f in families.values())
        print(f"ok: {len(families)} families, {samples} samples")
        return 0

    # export: snapshot-file mode — no server, just text a Prometheus
    # textfile collector (or a test) can pick up.
    from repro.io import load_metrics
    from repro.obs.timeseries import TimeSeriesStore

    if not args.metrics and not args.timeseries_in:
        print("error: metrics export needs --metrics and/or --timeseries",
              file=sys.stderr)
        return 2
    try:
        snapshot = load_metrics(args.metrics) if args.metrics else {}
        timeseries = (TimeSeriesStore.load_jsonl(args.timeseries_in)
                      if args.timeseries_in else None)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load inputs: {error}", file=sys.stderr)
        return 2
    if not args.openmetrics:
        print("error: metrics export currently requires --openmetrics",
              file=sys.stderr)
        return 2
    text = render_openmetrics(snapshot, timeseries)
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"openmetrics exposition -> {args.out}")
    if args.check:
        parse_openmetrics(text)  # raises ValueError on a render bug
        print("exposition validated (strict parse)")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.io import load_metrics
    from repro.obs.slo import SloConfig
    from repro.obs.timeseries import TimeSeriesStore
    from repro.obs.top import render_top

    try:
        slo_config = SloConfig(target_pdr=args.slo_target_pdr,
                               burn_threshold=args.slo_burn_threshold)
    except ValueError as error:
        raise SystemExit(f"error: {error}")

    def render_once() -> str:
        timeseries = TimeSeriesStore.load_jsonl(args.timeseries_in)
        snapshot = load_metrics(args.metrics) if args.metrics else None
        return render_top(timeseries, snapshot, slo_config=slo_config,
                          max_flows=args.max_flows,
                          ascii_only=args.ascii,
                          source=str(args.timeseries_in))

    try:
        if args.once:
            print(render_once(), end="")
            return 0
        # Live mode: re-read the dump and repaint until interrupted.
        # \x1b[H\x1b[2J = cursor home + clear screen; plain ANSI, no
        # curses dependency.
        while True:
            frame = render_once()
            sys.stdout.write("\x1b[H\x1b[2J" + frame)
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot read {args.timeseries_in}: {error}",
              file=sys.stderr)
        return 2


#: Trailer kinds every JSONL exporter appends (export bookkeeping, not
#: observed events).
_TRAILER_KINDS = ("trace_meta", "prov_meta", "span_meta", "ts_meta")


def cmd_report(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.io import load_jsonl, load_metrics
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.report import format_report
    from repro.obs.spans import expand_span_paths

    # A missing or corrupt snapshot is an operator mistake, not a bug:
    # one line to stderr and a distinct exit code, never a traceback.
    # A service run leaves one front-end file plus per-worker ``.w<i>``
    # siblings; the report folds every sibling it finds into one view.
    try:
        metric_paths = expand_span_paths(args.metrics)
        if not metric_paths:
            raise OSError(f"no such file: {args.metrics}")
        snapshot = MetricsRegistry.merge_snapshots(
            load_metrics(path) for path in metric_paths)
        kind_counts = None
        dropped = None
        if args.trace_in:
            records = []
            for path in expand_span_paths(args.trace_in) or [args.trace_in]:
                records.extend(load_jsonl(path))
            meta = [r for r in records
                    if r.get("kind") in _TRAILER_KINDS]
            if meta:
                dropped = sum(int(r.get("dropped", 0)) for r in meta)
            kind_counts = dict(Counter(
                record.get("kind", "?") for record in records
                if record.get("kind") not in _TRAILER_KINDS))
        if len(metric_paths) > 1:
            print(f"merged {len(metric_paths)} snapshot(s): "
                  + ", ".join(metric_paths))
        print(format_report(snapshot, kind_counts, dropped))
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot read metrics from {args.metrics}: {error}",
              file=sys.stderr)
        return 2
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.spans import expand_span_paths, format_trace_show

    # Only one action today; argparse enforces the choice so a future
    # `repro trace diff` slots in without breaking invocations.
    try:
        paths = expand_span_paths(args.spans_in)
        if not paths:
            raise OSError(f"no such file: {args.spans_in}")
        print(format_trace_show(paths, limit=args.limit,
                                trace_prefix=args.trace_id,
                                width=args.width))
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"error: cannot read spans from {args.spans_in}: {error}",
              file=sys.stderr)
        return 2
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    import math

    from repro.io import (load_flow_set, load_schedule, load_topology,
                          save_audit_report)
    from repro.validate import audit_schedule

    # Artifact problems (missing file, wrong format, mismatched sizes)
    # are operator mistakes: one line to stderr, exit code 2.  A schedule
    # that loads but fails its audit is the command's actual verdict and
    # exits 1.  The non-strict loader reproduces the dump verbatim —
    # sanitizing on load would hide exactly the corruption we audit for.
    try:
        topology = load_topology(args.topology)
        schedule = load_schedule(args.schedule, strict=False)
        flow_set = load_flow_set(args.flows) if args.flows else None
    except (OSError, ValueError, KeyError) as error:
        print(f"error: cannot load artifacts: {error}", file=sys.stderr)
        return 2
    network = prepare_network(topology)
    rho_floor = math.inf if args.policy == "NR" else args.rho_t
    try:
        report = audit_schedule(schedule, network.reuse, rho_floor,
                                flow_set=flow_set,
                                expect_complete=args.flows is not None)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.report_out:
        save_audit_report(report, args.report_out)
        print(f"audit report -> {args.report_out}")
    return 0 if report.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.io import save_fuzz_report
    from repro.validate import run_fuzz

    if args.cases <= 0:
        print("error: --cases must be positive", file=sys.stderr)
        return 2
    artifacts = Path(args.artifacts) if args.artifacts else None

    def on_case(case) -> None:
        if case.ok:
            if not case.skipped and (case.index + 1) % 25 == 0:
                print(f"  ... {case.index + 1}/{args.cases} cases clean")
            return
        checks = ", ".join(sorted({f["check"] for f in case.failures}))
        print(f"FAIL case {case.index} ({checks}): "
              f"{case.failures[0]['detail']}")
        if artifacts is not None:
            artifacts.mkdir(parents=True, exist_ok=True)
            path = artifacts / f"case_{case.index:04d}.json"
            path.write_text(json.dumps(case.to_dict(), indent=2))
            print(f"  failure artifact -> {path}")

    report = run_fuzz(args.cases, seed=args.seed or 0, on_case=on_case)
    print(report.summary())
    if artifacts is not None and not report.ok:
        report_path = artifacts / "report.json"
        save_fuzz_report(report, report_path)
        print(f"fuzz report -> {report_path}")
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ServiceOptions, run_service

    if args.socket is None and args.port is None:
        print("error: serve needs --socket PATH or --port N",
              file=sys.stderr)
        return 2
    workers = args.service_workers or (os.cpu_count() or 2)
    options = ServiceOptions(
        socket_path=args.socket,
        host=args.host,
        port=args.port or 0,
        num_workers=workers,
        cache_capacity=args.cache_capacity,
        batch_size=args.batch_size,
        ledger_path=None if args.no_ledger else args.ledger,
        trace_path=args.trace,
        metrics_path=args.metrics_out,
        provenance_path=args.provenance,
        timeseries_path=args.timeseries,
        spans_path=args.spans,
        span_threshold_ms=args.span_threshold_ms,
        kernel=args.kernel)
    return run_service(options)


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.service.loadgen import (
        LoadgenOptions,
        format_report,
        run_loadgen,
    )

    options = LoadgenOptions(
        socket_path=args.socket,
        host=args.host,
        port=args.port or 0,
        requests=args.requests,
        networks=args.networks,
        rate=args.rate,
        mix=args.mix,
        seed=args.seed if args.seed is not None else 0,
        testbed=args.testbed,
        channels=args.channels,
        flows=args.flows,
        policy=args.policy,
        rho_t=args.rho_t,
        traffic=args.traffic,
        verify=args.verify,
        report_out=args.report_out,
        trace_out=args.trace_out,
        trace_threshold_ms=args.trace_threshold_ms)
    report = run_loadgen(options)
    print(format_report(report))
    if args.report_out:
        Path(args.report_out).write_text(
            json.dumps(report, indent=2, sort_keys=True))
        print(f"report: -> {args.report_out}")
    failed = report["errors"] or \
        report.get("verify", {}).get("mismatches", 0)
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conservative channel reuse for industrial WSANs "
                    "(ICDCS 2018 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def ledger_opts(p):
        p.add_argument("--ledger", default="runs.jsonl", metavar="FILE",
                       help="append-only run ledger (JSONL)")
        p.add_argument("--no-ledger", action="store_true",
                       help="skip the run-ledger append for this run")

    def common(p):
        p.add_argument("--testbed", default="indriya",
                       choices=("indriya", "wustl"))
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="record a structured event trace (JSONL)")
        p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write a metrics snapshot (JSON)")
        p.add_argument("--provenance", default=None, metavar="FILE",
                       help="record per-placement decision provenance "
                            "(JSONL)")
        p.add_argument("--timeseries", default=None, metavar="FILE",
                       help="record windowed per-epoch time series "
                            "(JSONL; drives 'repro top' and the "
                            "OpenMetrics export)")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for trial fan-out "
                            "(0 = all CPUs)")
        ledger_opts(p)

    p = sub.add_parser("topology", help="synthesize and inspect a testbed")
    common(p)
    p.add_argument("--channels", type=int, default=5)
    p.add_argument("--save", default=None, help="save topology to .npz")
    p.set_defaults(func=cmd_topology)

    p = sub.add_parser("sweep", help="schedulable-ratio sweep (Figs 1-3)")
    common(p)
    p.add_argument("--traffic", default="p2p",
                   choices=("p2p", "centralized"))
    p.add_argument("--vary", default="channels",
                   choices=("channels", "flows"))
    p.add_argument("--values", type=int, nargs="+",
                   default=[3, 4, 5, 8])
    p.add_argument("--channels", type=int, default=5,
                   help="fixed channel count when varying flows")
    p.add_argument("--flows", type=int, default=30,
                   help="fixed flow count when varying channels")
    p.add_argument("--period-min-exp", type=int, default=-1)
    p.add_argument("--period-max-exp", type=int, default=3)
    p.add_argument("--flow-sets", type=int, default=8)
    p.set_defaults(func=cmd_sweep)

    def engine_opt(p):
        p.add_argument("--engine", default="auto",
                       choices=("slot", "event", "auto"),
                       help="simulator engine (bit-identical results; "
                            "'auto' picks by repetition count)")

    p = sub.add_parser("reliability", help="simulated PDR (Fig 8)")
    common(p)
    p.set_defaults(testbed="wustl")
    p.add_argument("--flow-sets", type=int, default=3)
    p.add_argument("--repetitions", type=int, default=50)
    engine_opt(p)
    p.set_defaults(func=cmd_reliability)

    p = sub.add_parser("detection", help="K-S detection (Figs 10-11)")
    common(p)
    p.set_defaults(testbed="wustl")
    p.add_argument("--flows", type=int, default=80)
    p.add_argument("--epochs", type=int, default=3)
    engine_opt(p)
    p.set_defaults(func=cmd_detection)

    def manage_common(p):
        p.set_defaults(testbed="wustl")
        p.add_argument("--scenario", default="reuse-storm",
                       help="fault scenario: preset name or JSON file "
                            "(presets: quiet, reuse-storm, wifi-burst, "
                            "wifi-transient, storm-and-churn)")
        p.add_argument("--scheduler", default="RA",
                       choices=("NR", "RA", "RC"),
                       help="placement policy building the schedules")
        p.add_argument("--rho-t", type=int, default=2,
                       help="initial reuse hop floor for RA / RC")
        p.add_argument("--epochs", type=int, default=10,
                       help="health-report epochs to run")
        p.add_argument("--flows", type=int, default=80,
                       help="peer-to-peer 1 s flows in the workload")
        p.add_argument("--reps", type=int, default=18,
                       help="hyperperiods per epoch (paper: 18)")
        p.add_argument("--channels", type=int, nargs="+",
                       default=[11, 12, 13, 14, 15],
                       help="physical channels the network hops over")
        p.add_argument("--quick", action="store_true",
                       help="CI smoke mode: lighter workload, "
                            "faster-acting hysteresis")
        p.add_argument("--report-out", default=None, metavar="FILE",
                       help="write the ManagerReport(s) as JSON")
        p.add_argument("--slo-target-pdr", type=float, default=0.9,
                       help="per-flow PDR objective (error budget is "
                            "1 - target)")
        p.add_argument("--slo-fast-window", type=int, default=5,
                       help="fast burn-rate window (epochs)")
        p.add_argument("--slo-slow-window", type=int, default=30,
                       help="slow burn-rate window (epochs)")
        p.add_argument("--slo-burn-threshold", type=float, default=2.0,
                       help="burn rate at/above which a window is hot")
        p.add_argument("--slo-early-warning", action="store_true",
                       help="let the reschedule policy act on SLO "
                            "burn alerts before K-S confirmation")
        p.add_argument("--no-repair", action="store_true",
                       help="disable incremental repair: remediate by "
                            "full rebuild only")
        engine_opt(p)

    p = sub.add_parser("manage",
                       help="closed-loop manager under a fault scenario")
    common(p)
    manage_common(p)
    p.add_argument("--policy", default="reschedule",
                   choices=("noop", "reschedule", "blacklist", "escalate"),
                   help="remediation policy")
    p.add_argument("--seeds", type=int, nargs="+", default=None,
                   help="run one trial per seed (fanned over --workers)")
    p.set_defaults(func=cmd_manage)

    p = sub.add_parser("adapt",
                       help="remediation policies vs NoOp (Fig 8-style)")
    common(p)
    manage_common(p)
    p.add_argument("--policies", nargs="+",
                   default=["noop", "reschedule", "blacklist", "escalate"],
                   help="remediation policies to compare")
    p.add_argument("--metric", default="median", choices=("median", "worst"),
                   help="per-flow PDR statistic to tabulate")
    p.set_defaults(func=cmd_adapt)

    p = sub.add_parser("bench", help="scheduler kernel benchmark")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: one small workload, one repetition")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--repetitions", type=int, default=None,
                   help="timed repetitions per configuration (best-of)")
    p.add_argument("--out", default="BENCH_schedulers.json",
                   help="report path ('-' to skip writing)")
    p.add_argument("--history", default="benchmarks/history.jsonl",
                   metavar="FILE",
                   help="append-only bench history ('-' to skip)")
    p.add_argument("--compare", default=None, metavar="BASELINE",
                   help="compare against a baseline report; exit 3 on "
                        ">20%% wall-time regression in any shared cell")
    ledger_opts(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("schedule",
                       help="build one schedule and save its artifacts")
    common(p)
    p.add_argument("--policy", default="RC", choices=("NR", "RA", "RC"))
    p.add_argument("--rho-t", type=int, default=2)
    p.add_argument("--flows", type=int, default=10)
    p.add_argument("--channels", type=int, default=5)
    p.add_argument("--traffic", default="p2p",
                   choices=("p2p", "centralized"))
    p.add_argument("--period-min-exp", type=int, default=0)
    p.add_argument("--period-max-exp", type=int, default=3)
    p.add_argument("--schedule-out", default=None, metavar="FILE",
                   help="write the schedule as JSON")
    p.add_argument("--flows-out", default=None, metavar="FILE",
                   help="write the flow set as JSON")
    p.add_argument("--topology-out", default=None, metavar="FILE",
                   help="write the channel-restricted topology (.npz)")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("validate",
                       help="audit a saved schedule against the reuse "
                            "contract")
    p.add_argument("--schedule", required=True, metavar="FILE",
                   help="schedule JSON (loaded verbatim, not sanitized)")
    p.add_argument("--topology", required=True, metavar="FILE",
                   help="channel-restricted .npz from 'repro topology "
                        "--save'")
    p.add_argument("--flows", default=None, metavar="FILE",
                   help="flow set JSON; enables the completeness audit")
    p.add_argument("--policy", default="RC", choices=("NR", "RA", "RC"),
                   help="policy the schedule claims to satisfy")
    p.add_argument("--rho-t", type=int, default=2,
                   help="reuse hop floor audited for RA / RC")
    p.add_argument("--report-out", default=None, metavar="FILE",
                   help="write the audit report as JSON")
    ledger_opts(p)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("fuzz",
                       help="seeded differential fuzzing of scheduler and "
                            "simulator paths")
    p.add_argument("--cases", type=int, default=25,
                   help="number of random cases to run")
    p.add_argument("--seed", type=int, default=0,
                   help="run seed; case i draws from rng([seed, i])")
    p.add_argument("--artifacts", default=None, metavar="DIR",
                   help="write failing-case JSON artifacts to this "
                        "directory")
    ledger_opts(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("report", help="pretty-print a metrics snapshot")
    p.add_argument("metrics", help="metrics JSON written by --metrics-out")
    p.add_argument("--trace", dest="trace_in", default=None, metavar="FILE",
                   help="also summarize a JSONL trace by event kind "
                        "(.w<N> worker siblings are folded in)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("trace",
                       help="inspect request-span dumps (--spans / "
                            "--trace-out)")
    tsub = p.add_subparsers(dest="action", required=True)
    # dest is spans_in, NOT spans: _run_command treats a "spans"
    # attribute as a recording *output* path and would overwrite the
    # dump being viewed.
    ps = tsub.add_parser("show",
                         help="ASCII waterfalls of the slowest captured "
                              "traces")
    ps.add_argument("spans_in", metavar="SPANS",
                    help="span JSONL written by serve --spans or "
                         "loadgen --trace-out; .w<N> worker siblings "
                         "are merged automatically")
    ps.add_argument("--limit", type=int, default=5, metavar="N",
                    help="traces to render, slowest first")
    ps.add_argument("--trace-id", default=None, metavar="PREFIX",
                    help="only traces whose id starts with this prefix")
    ps.add_argument("--width", type=int, default=48,
                    help="waterfall bar width in characters")
    ps.set_defaults(func=cmd_trace)

    p = sub.add_parser("explain",
                       help="constraint chain for one link x slot of a "
                            "saved schedule")
    p.add_argument("--schedule", required=True, metavar="FILE",
                   help="schedule JSON from 'repro schedule "
                        "--schedule-out'")
    p.add_argument("--topology", required=True, metavar="FILE",
                   help=".npz from 'repro schedule --topology-out' or "
                        "'repro topology --save'")
    p.add_argument("--link", required=True, type=int, nargs=2,
                   metavar=("SENDER", "RECEIVER"),
                   help="the transmission link to explain")
    p.add_argument("--slot", required=True, type=int,
                   help="the time slot to explain")
    p.add_argument("--policy", default="RC", choices=("NR", "RA", "RC"),
                   help="policy whose channel constraint to apply")
    p.add_argument("--rho-t", type=int, default=2,
                   help="reuse hop count for RA / RC verdicts")
    p.add_argument("--provenance", dest="provenance_in", default=None,
                   metavar="FILE",
                   help="also show recorded decisions from a provenance "
                        "dump")
    p.add_argument("--all-decisions", action="store_true",
                   help="with --provenance: show every decision for the "
                        "link, not just those touching --slot")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("timeline",
                       help="ASCII superframe Gantt of a saved schedule")
    p.add_argument("--schedule", required=True, metavar="FILE",
                   help="schedule JSON")
    p.add_argument("--flows", default=None, metavar="FILE",
                   help="flow set JSON; adds release->deadline window "
                        "rows")
    p.add_argument("--slots", default=None, metavar="A:B",
                   help="slot range to render (default: 0:makespan)")
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("ledger",
                       help="query the run ledger (runs.jsonl)")
    p.add_argument("action", choices=("list", "show", "diff"))
    p.add_argument("run_ids", nargs="*",
                   help="run id(s); unambiguous prefixes accepted")
    p.add_argument("--ledger", default="runs.jsonl", metavar="FILE",
                   help="ledger file to query")
    p.add_argument("--status", dest="status_filter", default=None,
                   metavar="PREFIX",
                   help="list: only runs whose status starts with this "
                        "(e.g. 'ok', 'error', 'error:ValueError')")
    p.add_argument("--command", dest="command_filter", default=None,
                   metavar="NAME",
                   help="list: only runs of this command")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="list: only the N most recent matching runs")
    p.set_defaults(func=cmd_ledger)

    p = sub.add_parser("metrics",
                       help="export metrics as OpenMetrics text, or "
                            "validate an exposition")
    msub = p.add_subparsers(dest="action", required=True)
    pe = msub.add_parser("export",
                         help="render a snapshot (+ series) as "
                              "OpenMetrics text")
    pe.add_argument("--metrics", default=None, metavar="FILE",
                    help="metrics snapshot JSON from --metrics-out")
    pe.add_argument("--timeseries", dest="timeseries_in", default=None,
                    metavar="FILE",
                    help="time-series JSONL from --timeseries; latest "
                         "samples become labeled gauges")
    pe.add_argument("--openmetrics", action="store_true",
                    help="emit OpenMetrics text exposition (required; "
                         "reserved for future formats)")
    pe.add_argument("--out", default="-", metavar="FILE",
                    help="output file ('-' = stdout)")
    pe.add_argument("--check", action="store_true",
                    help="strict-parse the rendered exposition before "
                         "exiting")
    pe.set_defaults(func=cmd_metrics)
    pc = msub.add_parser("check",
                         help="strictly validate an OpenMetrics "
                              "exposition file")
    pc.add_argument("exposition", help="exposition file ('-' = stdin)")
    pc.set_defaults(func=cmd_metrics)

    p = sub.add_parser("top",
                       help="live ASCII observatory over a run's "
                            "time-series dump")
    # dest is timeseries_in, NOT timeseries: _run_command treats a
    # "timeseries" attribute as a recording *output* path and would
    # overwrite the dump being viewed.
    p.add_argument("timeseries_in", metavar="TIMESERIES",
                   help="time-series JSONL written by --timeseries")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="metrics snapshot JSON for the health panel")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit (CI/pipes)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh interval in live mode (seconds)")
    p.add_argument("--max-flows", type=int, default=12,
                   help="rows in the per-flow SLO table")
    p.add_argument("--ascii", action="store_true",
                   help="pure-ASCII sparklines and bars")
    p.add_argument("--slo-target-pdr", type=float, default=0.9,
                   help="PDR objective used to label flow states")
    p.add_argument("--slo-burn-threshold", type=float, default=2.0,
                   help="burn rate at/above which a window is hot")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("serve",
                       help="long-lived scheduling service (NDJSON over "
                            "a unix socket or TCP)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="listen on a unix socket (overrides --host/"
                        "--port)")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind address")
    p.add_argument("--port", type=int, default=7013,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--service-workers", type=int, default=2,
                   metavar="N",
                   help="worker processes sharding the fleet "
                        "(0 = all CPUs)")
    p.add_argument("--cache-capacity", type=int, default=256,
                   metavar="N",
                   help="compiled-artifact cache entries per worker")
    p.add_argument("--batch-size", type=int, default=100, metavar="N",
                   help="requests per run-ledger batch record")
    p.add_argument("--kernel", default=None,
                   choices=("scalar", "vector", "auto"),
                   help="pin the placement kernel in every worker")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="front-end event trace (JSONL); each worker "
                        "exports FILE.w<N> at shutdown")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="front-end metrics snapshot (JSON); each "
                        "worker exports FILE.w<N> at shutdown")
    p.add_argument("--provenance", default=None, metavar="FILE",
                   help="per-placement decision provenance; each "
                        "worker exports FILE.w<N> at shutdown")
    p.add_argument("--timeseries", default=None, metavar="FILE",
                   help="per-batch service.* time series for "
                        "'repro top'; each worker exports FILE.w<N> "
                        "at shutdown")
    p.add_argument("--spans", default=None, metavar="FILE",
                   help="request-span dump with tail-based exemplar "
                        "capture; each worker exports FILE.w<N> at "
                        "shutdown (view with 'repro trace show')")
    p.add_argument("--span-threshold-ms", type=float, default=50.0,
                   metavar="MS",
                   help="keep a trace's spans when its root takes at "
                        "least this long (errors always kept)")
    ledger_opts(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("loadgen",
                       help="seeded load generator + latency report "
                            "against a running 'repro serve'")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="connect to a unix socket (overrides --host/"
                        "--port)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7013)
    p.add_argument("--requests", type=int, default=100,
                   help="total requests to send")
    p.add_argument("--networks", type=int, default=8,
                   help="distinct networks in the fleet")
    p.add_argument("--rate", type=float, default=0.0, metavar="R",
                   help="open-loop arrival rate in req/s "
                        "(0 = closed loop, one in flight per network)")
    p.add_argument("--mix", type=float, default=0.3,
                   help="fraction of follow-up requests that are "
                        "reschedules (rest re-request the schedule)")
    p.add_argument("--seed", type=int, default=0,
                   help="plan seed (same seed = same request stream)")
    p.add_argument("--testbed", default="indriya",
                   choices=("indriya", "wustl"))
    p.add_argument("--channels", type=int, default=5)
    p.add_argument("--flows", type=int, default=10)
    p.add_argument("--policy", default="RC", choices=("NR", "RA", "RC"))
    p.add_argument("--rho-t", type=int, default=2)
    p.add_argument("--traffic", default="p2p",
                   choices=("p2p", "centralized"))
    p.add_argument("--verify", action="store_true",
                   help="shadow-execute every request in-process and "
                        "compare schedule hashes (bit-identity check; "
                        "distorts latency numbers)")
    p.add_argument("--report-out", default=None, metavar="FILE",
                   help="write the load report as JSON")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record client-side request spans (propagating "
                        "trace context to the server) and dump the "
                        "slowest here")
    p.add_argument("--trace-threshold-ms", type=float, default=50.0,
                   metavar="MS",
                   help="keep a request's trace when it takes at least "
                        "this long (errors always kept)")
    ledger_opts(p)
    p.set_defaults(func=cmd_loadgen)

    return parser


#: ``args`` attributes whose values are files the run writes; collected
#: into the ledger record so every artifact names the run that made it.
_ARTIFACT_ARGS = ("trace", "metrics_out", "provenance", "timeseries",
                  "spans", "trace_out", "save", "report_out", "out",
                  "artifacts", "schedule_out", "flows_out",
                  "topology_out", "history")


def _artifact_paths(args: argparse.Namespace) -> List[str]:
    paths = []
    for name in _ARTIFACT_ARGS:
        value = getattr(args, name, None)
        if value and value != "-":
            paths.append(str(value))
    return paths


def _run_command(args: argparse.Namespace):
    """Run the selected command, with observability when requested.

    Returns:
        ``(status, recorder_or_None)``.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    prov_path = getattr(args, "provenance", None)
    series_path = getattr(args, "timeseries", None)
    spans_path = getattr(args, "spans", None)
    if not (trace_path or metrics_path or prov_path or series_path
            or spans_path):
        return args.func(args), None

    from repro.io import save_metrics

    prov = None
    if prov_path:
        from repro.obs.provenance import ProvenanceRecorder

        prov = ProvenanceRecorder()
    timeseries = obs.TimeSeriesStore() if series_path else None
    spans = None
    if spans_path:
        from repro.obs.spans import SpanRecorder

        spans = SpanRecorder(
            threshold_ms=getattr(args, "span_threshold_ms", 50.0),
            process="front")
    with obs.recording(obs.Recorder(provenance=prov,
                                    timeseries=timeseries,
                                    spans=spans)) as recorder:
        status = args.func(args)
        if trace_path:
            written = recorder.tracer.export_jsonl(trace_path)
            dropped = recorder.tracer.dropped
            suffix = f" ({dropped} older events dropped)" if dropped else ""
            print(f"trace: {written} events -> {trace_path}{suffix}")
        if metrics_path:
            save_metrics(recorder.snapshot(), metrics_path)
            print(f"metrics: snapshot -> {metrics_path}")
        if prov_path:
            written = prov.export_jsonl(prov_path)
            suffix = (f" ({prov.dropped} older decisions dropped)"
                      if prov.dropped else "")
            print(f"provenance: {written} decisions -> "
                  f"{prov_path}{suffix}")
        if series_path:
            written = timeseries.export_jsonl(series_path)
            print(f"timeseries: {written} series -> {series_path}")
        if spans_path:
            written = spans.export_jsonl(spans_path)
            print(f"spans: {written} span(s) across "
                  f"{spans.kept_traces} trace(s) -> {spans_path}")
    return status, recorder


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    # Producing commands (those carrying ledger_opts) append one record
    # per invocation; query commands (report / explain / timeline /
    # ledger itself) never write to the ledger they read.
    ledger = record = None
    if getattr(args, "no_ledger", None) is False:
        from repro.obs.ledger import RunLedger, new_record

        raw_argv = list(argv) if argv is not None else sys.argv[1:]
        skip = {"func", "command", "ledger", "no_ledger"}
        config = {key: value for key, value in vars(args).items()
                  if key not in skip}
        seeds = []
        if getattr(args, "seed", None) is not None:
            seeds.append(args.seed)
        seeds.extend(getattr(args, "seeds", None) or [])
        ledger = RunLedger(args.ledger)
        record = new_record(args.command, raw_argv, config, seeds)

    try:
        status, recorder = _run_command(args)
    except BrokenPipeError:
        # Downstream closed stdout mid-print (`repro ledger show |
        # head`).  Swap stdout for /dev/null so interpreter shutdown
        # does not raise a second time, and exit quietly.
        if ledger is not None:
            ledger.commit(record, status="error:BrokenPipeError",
                          artifacts=_artifact_paths(args))
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except Exception:
            pass
        return 120
    except BaseException as error:
        if ledger is not None:
            if isinstance(error, SystemExit) and isinstance(error.code, int):
                outcome = error.code
            else:
                outcome = f"error:{type(error).__name__}"
            ledger.commit(record, status=outcome,
                          artifacts=_artifact_paths(args))
        raise
    if ledger is not None:
        metrics = (recorder.snapshot().get("counters") or None
                   if recorder is not None else None)
        ledger.commit(record, status=status,
                      artifacts=_artifact_paths(args), metrics=metrics)
    return status


if __name__ == "__main__":
    sys.exit(main())
