"""Flow model and workload generation."""

from repro.flows.flow import Flow, FlowInstance, FlowSet
from repro.flows.generator import (
    PeriodRange,
    generate_fixed_period_flow_set,
    generate_flow_set,
    pick_access_points,
)

__all__ = [
    "Flow",
    "FlowInstance",
    "FlowSet",
    "PeriodRange",
    "generate_fixed_period_flow_set",
    "generate_flow_set",
    "pick_access_points",
]
