"""Random workload generation following the paper's methodology.

Section VII of the paper: flows have randomly chosen, distinct sources and
destinations; each flow set designates two access points — nodes with a
high neighbor count; periods are harmonic, drawn uniformly from
``{2^x, ..., 2^y}`` seconds; a flow with period ``2^j`` gets a deadline
drawn uniformly from ``[2^(j-1), 2^j]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.flows.flow import Flow, FlowSet
from repro.mac.tsch import seconds_to_slots
from repro.network.graphs import CommunicationGraph
from repro.network.topology import Topology


@dataclass(frozen=True)
class PeriodRange:
    """Harmonic period range ``[2^min_exp, 2^max_exp]`` seconds.

    ``min_exp`` may be negative: the paper uses ranges such as
    ``[2^-1, 2^3]`` (0.5 s to 8 s).
    """

    min_exp: int
    max_exp: int

    def __post_init__(self) -> None:
        if self.min_exp > self.max_exp:
            raise ValueError("min_exp must be ≤ max_exp")
        # Periods must be whole numbers of 10 ms slots: 2^-3 s = 12.5 slots
        # would not be.  2^-2 s (25 slots) is the finest representable.
        if self.min_exp < -2:
            raise ValueError("periods below 2^-2 s are not slot-aligned")

    def periods_slots(self) -> List[int]:
        """All candidate periods in slots, ascending."""
        return [seconds_to_slots(2.0 ** e)
                for e in range(self.min_exp, self.max_exp + 1)]


def pick_access_points(topology: Topology, prr_threshold: float = 0.9,
                       count: int = 2) -> List[int]:
    """Choose access points: the nodes with the highest neighbor counts.

    Mirrors the paper's flow-set construction ("two access points, which
    are nodes with a high number of neighbors").  Ties break by node id.
    """
    degrees = topology.degrees(prr_threshold)
    order = sorted(range(topology.num_nodes),
                   key=lambda i: (-degrees[i], i))
    return order[:count]


def generate_flow_set(topology: Topology, graph: CommunicationGraph,
                      num_flows: int, period_range: PeriodRange,
                      rng: np.random.Generator,
                      access_points: Optional[Sequence[int]] = None,
                      ) -> Tuple[FlowSet, List[int]]:
    """Generate one random flow set per the paper's methodology.

    Sources and destinations are drawn (distinct per flow) from the nodes
    of the communication graph's largest connected component, excluding
    the access points.  Routes are *not* assigned here — run
    :func:`repro.routing.assign_routes` afterwards, choosing centralized
    or peer-to-peer traffic.

    Args:
        topology: The testbed topology.
        graph: Communication graph built from the topology.
        num_flows: Number of flows to generate.
        period_range: Harmonic period range.
        rng: Seeded random generator.
        access_points: Node ids to use as access points; defaults to the
            two highest-degree nodes.

    Returns:
        ``(flow_set, access_points)``.  The flow set is in flow-id order;
        apply :meth:`~repro.flows.flow.FlowSet.deadline_monotonic` before
        scheduling.
    """
    if num_flows <= 0:
        raise ValueError("num_flows must be positive")
    if access_points is None:
        access_points = pick_access_points(topology, graph.prr_threshold)
    component = graph.largest_component()
    candidates = [n for n in component if n not in set(access_points)]
    if len(candidates) < 2:
        raise ValueError("not enough connected nodes to place flows")

    periods = period_range.periods_slots()
    flows = []
    for flow_id in range(num_flows):
        source, destination = rng.choice(len(candidates), size=2,
                                         replace=False)
        period = int(periods[rng.integers(0, len(periods))])
        # D_i uniform in [P_i / 2, P_i] (paper: [2^(j-1), 2^j] seconds).
        deadline = int(rng.integers(period // 2, period + 1))
        flows.append(Flow(
            flow_id=flow_id,
            source=int(candidates[source]),
            destination=int(candidates[destination]),
            period_slots=period,
            deadline_slots=deadline,
        ))
    return FlowSet(flows), list(access_points)


def generate_fixed_period_flow_set(topology: Topology,
                                   graph: CommunicationGraph,
                                   counts_per_period: Sequence[Tuple[float, int]],
                                   rng: np.random.Generator,
                                   access_points: Optional[Sequence[int]] = None,
                                   deadline_equals_period: bool = True,
                                   ) -> Tuple[FlowSet, List[int]]:
    """Generate a flow set with an exact period composition.

    Used by the reliability experiments (Fig. 8): "50 flows where 50% of
    flows release their packets every 2^-1 s, and the rest every 2^0 s".

    Args:
        topology: The testbed topology.
        graph: Communication graph.
        counts_per_period: Sequence of ``(period_seconds, count)`` pairs.
        rng: Seeded random generator.
        access_points: Optional fixed access points.
        deadline_equals_period: If True, ``D_i = P_i`` (implicit-deadline);
            otherwise deadlines are drawn from ``[P/2, P]``.

    Returns:
        ``(flow_set, access_points)``.
    """
    if access_points is None:
        access_points = pick_access_points(topology, graph.prr_threshold)
    component = graph.largest_component()
    candidates = [n for n in component if n not in set(access_points)]
    if len(candidates) < 2:
        raise ValueError("not enough connected nodes to place flows")

    flows = []
    flow_id = 0
    for period_seconds, count in counts_per_period:
        period = seconds_to_slots(period_seconds)
        for _ in range(count):
            source, destination = rng.choice(len(candidates), size=2,
                                             replace=False)
            if deadline_equals_period:
                deadline = period
            else:
                deadline = int(rng.integers(period // 2, period + 1))
            flows.append(Flow(
                flow_id=flow_id,
                source=int(candidates[source]),
                destination=int(candidates[destination]),
                period_slots=period,
                deadline_slots=deadline,
            ))
            flow_id += 1
    return FlowSet(flows), list(access_points)
