"""End-to-end flow model (paper Section IV-A).

A WSAN is shared by periodic end-to-end flows.  Flow ``F_i`` releases a
packet at its source every ``P_i`` slots; the packet must reach the
destination along the flow's route within the relative deadline
``D_i ≤ P_i``.  Time is measured in 10 ms TSCH slots throughout.

Priorities follow Deadline Monotonic (DM) by default: the flow with the
shortest relative deadline has the highest priority.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Flow:
    """One periodic end-to-end flow.

    Attributes:
        flow_id: Unique identifier within a flow set.
        source: Source node id (sensor).
        destination: Destination node id (actuator or access point).
        period_slots: Release period ``P_i`` in slots.
        deadline_slots: Relative deadline ``D_i`` in slots (≤ period).
        route: Node sequence the packet follows, beginning with ``source``
            and ending with ``destination``.  Empty until routing runs.
            For centralized traffic the sequence passes through access
            points.
        wire_after: Index ``i`` marking the hop from ``route[i]`` to
            ``route[i+1]`` as the wired gateway segment between two
            access points (it consumes no time slots).  None when the
            route is purely wireless or when the uplink and downlink use
            the same access point (that hand-off appears as a repeated
            node and is collapsed automatically).
    """

    flow_id: int
    source: int
    destination: int
    period_slots: int
    deadline_slots: int
    route: Tuple[int, ...] = ()
    wire_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.period_slots <= 0:
            raise ValueError("period must be positive")
        if not 0 < self.deadline_slots <= self.period_slots:
            raise ValueError(
                f"deadline must be in (0, period]; got D={self.deadline_slots} "
                f"P={self.period_slots}")
        if self.source == self.destination:
            raise ValueError("source and destination must differ")
        if self.route:
            if self.route[0] != self.source:
                raise ValueError("route must start at the source")
            if self.route[-1] != self.destination:
                raise ValueError("route must end at the destination")
            if len(self.route) < 2:
                raise ValueError("route must contain at least one link")
        if self.wire_after is not None:
            if not self.route:
                raise ValueError("wire_after requires a route")
            if not 0 <= self.wire_after < len(self.route) - 1:
                raise ValueError("wire_after out of range")

    @property
    def has_route(self) -> bool:
        """Whether routing has been performed for this flow."""
        return bool(self.route)

    @property
    def links(self) -> Tuple[Tuple[int, int], ...]:
        """The route as a sequence of directed links ``(sender, receiver)``.

        The wired gateway segment is excluded: either the hop flagged by
        ``wire_after`` (different up/downlink access points), or a
        consecutive duplicate node (same access point on both segments).
        """
        pairs = []
        for index, (u, v) in enumerate(zip(self.route, self.route[1:])):
            if index == self.wire_after:
                continue
            if u != v:
                pairs.append((u, v))
        return tuple(pairs)

    @property
    def num_hops(self) -> int:
        """Number of wireless links on the route."""
        return len(self.links)

    def with_route(self, route: Sequence[int],
                   wire_after: Optional[int] = None) -> "Flow":
        """Return a copy of the flow with the given route.

        Args:
            route: Node sequence from source to destination.
            wire_after: Optional index of the wired hop (see class docs).
        """
        return replace(self, route=tuple(route), wire_after=wire_after)

    def instances(self, hyperperiod: int) -> Iterator["FlowInstance"]:
        """Yield every release instance within one hyperperiod."""
        if hyperperiod % self.period_slots != 0:
            raise ValueError("hyperperiod must be a multiple of the period")
        for index in range(hyperperiod // self.period_slots):
            release = index * self.period_slots
            yield FlowInstance(
                flow=self,
                instance=index,
                release_slot=release,
                deadline_slot=release + self.deadline_slots - 1,
            )


@dataclass(frozen=True)
class FlowInstance:
    """One release of a flow.

    Attributes:
        flow: The owning flow.
        instance: Release index within the hyperperiod (0-based).
        release_slot: First slot in which the packet may be transmitted.
        deadline_slot: Last slot in which a transmission may occur
            (inclusive) — ``d_i`` in the paper's laxity formula.
    """

    flow: Flow
    instance: int
    release_slot: int
    deadline_slot: int

    @property
    def window(self) -> Tuple[int, int]:
        """The inclusive slot window ``[release, deadline]``."""
        return (self.release_slot, self.deadline_slot)


class FlowSet:
    """An ordered collection of flows sharing the network.

    Order encodes priority: ``flows[0]`` has the highest priority.  Use
    :meth:`deadline_monotonic` to apply the DM priority assignment used
    throughout the paper's evaluation.
    """

    def __init__(self, flows: Sequence[Flow]):
        flows = list(flows)
        ids = [f.flow_id for f in flows]
        if len(set(ids)) != len(ids):
            raise ValueError("flow ids must be unique")
        self._flows: List[Flow] = flows

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows)

    def __getitem__(self, index: int) -> Flow:
        return self._flows[index]

    @property
    def flows(self) -> List[Flow]:
        """The flows, in priority order."""
        return list(self._flows)

    def hyperperiod(self) -> int:
        """Least common multiple of all flow periods, in slots."""
        if not self._flows:
            return 0
        result = 1
        for flow in self._flows:
            result = math.lcm(result, flow.period_slots)
        return result

    def deadline_monotonic(self) -> "FlowSet":
        """Return a copy ordered by Deadline Monotonic priority.

        Shorter relative deadline → higher priority; ties broken by flow
        id for determinism.
        """
        ordered = sorted(self._flows,
                         key=lambda f: (f.deadline_slots, f.flow_id))
        return FlowSet(ordered)

    def rate_monotonic(self) -> "FlowSet":
        """Return a copy ordered by Rate Monotonic priority (shorter period first)."""
        ordered = sorted(self._flows,
                         key=lambda f: (f.period_slots, f.flow_id))
        return FlowSet(ordered)

    def total_instances(self) -> int:
        """Total number of packet releases in one hyperperiod."""
        hp = self.hyperperiod()
        return sum(hp // f.period_slots for f in self._flows)

    def all_routed(self) -> bool:
        """Whether every flow has a route assigned."""
        return all(f.has_route for f in self._flows)

    def utilization(self, attempts_per_link: int = 2) -> float:
        """Aggregate transmission demand per slot.

        Sum over flows of (slots needed per release / period).  Values
        above the channel count are a strong sign of unschedulability.
        """
        total = 0.0
        for flow in self._flows:
            if not flow.has_route:
                raise ValueError(f"flow {flow.flow_id} has no route")
            total += (flow.num_hops * attempts_per_link) / flow.period_slots
        return total
