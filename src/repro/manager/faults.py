"""Seeded, schedulable fault timelines for the manager runtime.

A :class:`ConditionSchedule` is a declarative list of
:class:`FaultEvent` s — condition mutations active over an epoch window —
that the manager resolves into per-epoch
:class:`~repro.simulator.conditions.Conditions` overlays for the
simulator.  Everything is deterministic: the same (scenario, seed,
environment) triple always yields bit-identical overlays, which is what
makes manager runs reproducible across worker counts.

Fault kinds (the ``kind`` field of an event):

``reuse_interference``
    Adds ``boost_db`` to every intra-network interference contribution.
    Models fading drift that couples channel-reuse partners more
    strongly than the topology survey measured; the damage appears
    *only* in shared cells, so the K-S policy attributes it to reuse —
    the case :class:`~repro.manager.policies.RescheduleVictims` fixes.

``wifi_burst``
    External WiFi interferers (one per floor, at the floor centre, as in
    the paper's Section VII-E setup) on ``wifi_channel`` with the given
    duty cycle.  Pollutes the overlapped 802.15.4 channels in reuse and
    contention-free slots alike — reuse-independent degradation, the
    case :class:`~repro.manager.policies.BlacklistChannel` handles.

``link_degradation``
    Extra path loss on the listed node pairs (both directions), e.g. a
    door closing or a machine moving into the Fresnel zone.

``node_churn``
    The listed nodes power off for the window: their transmissions never
    radiate and they contribute no interference.

Scenario JSON format (see also ``EXPERIMENTS.md``)::

    {
      "name": "my-scenario",
      "events": [
        {"kind": "reuse_interference", "start_epoch": 3, "boost_db": 15.0},
        {"kind": "wifi_burst", "start_epoch": 2, "end_epoch": 6,
         "wifi_channel": 1, "duty_cycle": 0.6, "tx_power_dbm": 18.0},
        {"kind": "link_degradation", "start_epoch": 4,
         "links": [[3, 7]], "attenuation_db": 12.0},
        {"kind": "node_churn", "start_epoch": 5, "end_epoch": 8,
         "nodes": [12]}
      ]
    }

``end_epoch`` is exclusive; ``null`` / omitted means "until the run
ends".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.propagation.pathloss import LogDistancePathLoss
from repro.simulator.conditions import Conditions
from repro.simulator.interference import (
    interferer_rssi_matrix,
    place_interferer_pairs,
)
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import RadioEnvironment

#: Recognised fault kinds.
FAULT_KINDS = ("reuse_interference", "wifi_burst", "link_degradation",
               "node_churn")


@dataclass(frozen=True)
class FaultEvent:
    """One condition mutation active over ``[start_epoch, end_epoch)``.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        start_epoch: First epoch the fault is active in.
        end_epoch: First epoch the fault is *no longer* active in
            (exclusive); ``None`` keeps it active until the run ends.
        boost_db: ``reuse_interference`` — dB added to intra-network
            interference contributions.
        wifi_channel / duty_cycle / tx_power_dbm: ``wifi_burst``
            interferer parameters.
        links: ``link_degradation`` — node pairs to attenuate (applied
            in both directions).
        attenuation_db: ``link_degradation`` — extra path loss in dB.
        nodes: ``node_churn`` — nodes powered off for the window.
    """

    kind: str
    start_epoch: int = 0
    end_epoch: Optional[int] = None
    boost_db: float = 15.0
    wifi_channel: int = 1
    duty_cycle: float = 0.5
    tx_power_dbm: float = 15.0
    links: Tuple[Tuple[int, int], ...] = ()
    attenuation_db: float = 12.0
    nodes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        if self.start_epoch < 0:
            raise ValueError("start_epoch must be non-negative")
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise ValueError("end_epoch must be greater than start_epoch")
        if self.kind == "link_degradation" and not self.links:
            raise ValueError("link_degradation requires links")
        if self.kind == "node_churn" and not self.nodes:
            raise ValueError("node_churn requires nodes")
        # Normalize JSON-born lists to hashable tuples.
        object.__setattr__(self, "links",
                           tuple((int(u), int(v)) for u, v in self.links))
        object.__setattr__(self, "nodes",
                           tuple(int(n) for n in self.nodes))

    def active_in(self, epoch: int) -> bool:
        """Whether the fault is active during ``epoch``."""
        if epoch < self.start_epoch:
            return False
        return self.end_epoch is None or epoch < self.end_epoch

    def to_dict(self) -> Dict:
        """JSON-serializable form (only the fields the kind uses)."""
        payload: Dict = {"kind": self.kind, "start_epoch": self.start_epoch,
                         "end_epoch": self.end_epoch}
        if self.kind == "reuse_interference":
            payload["boost_db"] = self.boost_db
        elif self.kind == "wifi_burst":
            payload.update(wifi_channel=self.wifi_channel,
                           duty_cycle=self.duty_cycle,
                           tx_power_dbm=self.tx_power_dbm)
        elif self.kind == "link_degradation":
            payload.update(links=[list(pair) for pair in self.links],
                           attenuation_db=self.attenuation_db)
        elif self.kind == "node_churn":
            payload["nodes"] = list(self.nodes)
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        known = {"kind", "start_epoch", "end_epoch", "boost_db",
                 "wifi_channel", "duty_cycle", "tx_power_dbm", "links",
                 "attenuation_db", "nodes"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault event fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "links" in kwargs:
            kwargs["links"] = tuple(tuple(pair) for pair in kwargs["links"])
        if "nodes" in kwargs:
            kwargs["nodes"] = tuple(kwargs["nodes"])
        return cls(**kwargs)


@dataclass(frozen=True)
class ConditionSchedule:
    """A named, seeded timeline of fault events.

    Attributes:
        name: Scenario label (appears in reports).
        events: The fault events, in declaration order.
    """

    name: str
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def events_for(self, epoch: int) -> List[FaultEvent]:
        """The events active during ``epoch``, in declaration order."""
        return [event for event in self.events if event.active_in(epoch)]

    def horizon(self) -> int:
        """First epoch index after which no event starts or changes."""
        horizon = 0
        for event in self.events:
            horizon = max(horizon, event.start_epoch,
                          event.end_epoch or event.start_epoch + 1)
        return horizon

    def to_dict(self) -> Dict:
        """JSON-serializable form."""
        return {"name": self.name,
                "events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: Dict) -> "ConditionSchedule":
        """Parse a scenario dict (the JSON format above)."""
        if "events" not in data:
            raise ValueError("scenario requires an 'events' list")
        events = tuple(FaultEvent.from_dict(item) for item in data["events"])
        return cls(name=str(data.get("name", "custom")), events=events)


def load_scenario(path: Union[str, Path]) -> ConditionSchedule:
    """Load a fault-scenario JSON file.

    Raises:
        ValueError: On malformed JSON or unknown event fields/kinds.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed scenario JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ValueError("scenario JSON must be an object")
    return ConditionSchedule.from_dict(payload)


def save_scenario(scenario: ConditionSchedule, path: Union[str, Path]) -> None:
    """Write a scenario as JSON (inverse of :func:`load_scenario`)."""
    Path(path).write_text(json.dumps(scenario.to_dict(), indent=2))


class ScenarioResolver:
    """Resolves a scenario's per-epoch :class:`Conditions` overlays.

    Resolution is deterministic: interferer RSSI rows are drawn from a
    generator seeded by ``(seed, event index)``, and each event's
    expensive artifacts are computed once and reused for every epoch in
    its window.
    """

    def __init__(self, scenario: ConditionSchedule,
                 environment: RadioEnvironment, plan: FloorPlan,
                 seed: int = 0,
                 pathloss: Optional[LogDistancePathLoss] = None):
        self.scenario = scenario
        self.environment = environment
        self.plan = plan
        self.seed = seed
        self.pathloss = pathloss or LogDistancePathLoss()
        self._interferer_cache: Dict[int, Tuple[tuple, np.ndarray]] = {}
        self._condition_cache: Dict[Tuple[FaultEvent, ...], Conditions] = {}

    def _wifi_artifacts(self, index: int, event: FaultEvent):
        """(interferers, rssi) for a wifi_burst event, cached per event."""
        cached = self._interferer_cache.get(index)
        if cached is None:
            interferers = tuple(place_interferer_pairs(
                self.plan, wifi_channel=event.wifi_channel,
                tx_power_dbm=event.tx_power_dbm,
                duty_cycle=event.duty_cycle))
            rssi = interferer_rssi_matrix(
                interferers, self.environment.positions, self.plan,
                self.pathloss,
                np.random.default_rng(self.seed + 7919 * (index + 1)))
            cached = self._interferer_cache[index] = (interferers, rssi)
        return cached

    def conditions_for(self, epoch: int) -> Conditions:
        """The merged overlay for one epoch (cached per active-event set)."""
        active = [(index, event)
                  for index, event in enumerate(self.scenario.events)
                  if event.active_in(epoch)]
        key = tuple(event for _, event in active)
        cached = self._condition_cache.get(key)
        if cached is not None:
            return cached

        attenuation: Dict[Tuple[int, int], float] = {}
        boost = 0.0
        dark: set = set()
        interferers: list = []
        rssi_rows: list = []
        for index, event in active:
            if event.kind == "reuse_interference":
                boost += event.boost_db
            elif event.kind == "link_degradation":
                for u, v in event.links:
                    attenuation[(u, v)] = (attenuation.get((u, v), 0.0)
                                           + event.attenuation_db)
                    attenuation[(v, u)] = (attenuation.get((v, u), 0.0)
                                           + event.attenuation_db)
            elif event.kind == "node_churn":
                dark.update(event.nodes)
            elif event.kind == "wifi_burst":
                event_interferers, event_rssi = self._wifi_artifacts(
                    index, event)
                interferers.extend(event_interferers)
                rssi_rows.append(event_rssi)

        conditions = Conditions(
            pair_attenuation_db=attenuation,
            interference_boost_db=boost,
            dark_nodes=frozenset(dark),
            extra_interferers=tuple(interferers),
            extra_interferer_rssi_dbm=(np.vstack(rssi_rows)
                                       if rssi_rows else None))
        self._condition_cache[key] = conditions
        return conditions


def _preset(name: str, *events: FaultEvent) -> ConditionSchedule:
    return ConditionSchedule(name=name, events=events)


#: Named fault scenarios usable from the CLI (``--scenario NAME``).
#: Epoch indices assume the default manage horizon (8-12 epochs with a
#: 2-epoch warm-up): faults land after warm-up so detection sees a
#: healthy baseline first.
SCENARIO_PRESETS: Dict[str, ConditionSchedule] = {
    # Nothing ever goes wrong: the NoOp baseline of baselines.
    "quiet": _preset("quiet"),
    # Reuse partners couple 15 dB harder than surveyed, forever: the
    # canonical reuse-attributed fault RescheduleVictims repairs.
    "reuse-storm": _preset(
        "reuse-storm",
        FaultEvent(kind="reuse_interference", start_epoch=3, boost_db=15.0)),
    # The paper's Section VII-E WiFi setup, switched on mid-run:
    # channel-selective external interference (BlacklistChannel's case).
    "wifi-burst": _preset(
        "wifi-burst",
        FaultEvent(kind="wifi_burst", start_epoch=3, wifi_channel=1,
                   duty_cycle=0.6, tx_power_dbm=18.0)),
    # A transient WiFi burst that clears on its own: policies should not
    # leave permanent damage behind.
    "wifi-transient": _preset(
        "wifi-transient",
        FaultEvent(kind="wifi_burst", start_epoch=3, end_epoch=6,
                   wifi_channel=1, duty_cycle=0.6, tx_power_dbm=18.0)),
    # Reuse storm with a late churn event layered on top.
    "storm-and-churn": _preset(
        "storm-and-churn",
        FaultEvent(kind="reuse_interference", start_epoch=3, boost_db=15.0),
        FaultEvent(kind="node_churn", start_epoch=6, end_epoch=8,
                   nodes=(7,))),
}


def resolve_scenario(scenario: Union[str, ConditionSchedule, Path],
                     ) -> ConditionSchedule:
    """Turn a preset name, JSON path, or schedule into a schedule.

    Strings naming a preset resolve from :data:`SCENARIO_PRESETS`; other
    strings (and Paths) are treated as scenario-file paths.
    """
    if isinstance(scenario, ConditionSchedule):
        return scenario
    if isinstance(scenario, str) and scenario in SCENARIO_PRESETS:
        return SCENARIO_PRESETS[scenario]
    path = Path(scenario)
    if not path.exists():
        raise ValueError(
            f"unknown scenario {str(scenario)!r}: not a preset "
            f"({', '.join(sorted(SCENARIO_PRESETS))}) and no such file")
    return load_scenario(path)
