"""Closed-loop network manager runtime.

The paper's Section VI detection policy exists to drive remediation —
"links can be reassigned to different channels or time slots" once the
K-S test attributes degradation to channel reuse.  This package closes
that loop: a :class:`~repro.manager.loop.NetworkManager` advances the
simulator in health-report epochs under a seeded fault timeline
(:mod:`repro.manager.faults`), feeds each epoch's PRR distributions into
the streaming K-S monitor, and applies a pluggable remediation policy
(:mod:`repro.manager.policies`) — reschedule the victims, blacklist a
polluted channel, escalate the reuse hop floor, or do nothing.

Entry points: ``python -m repro manage`` (one policy, epoch-by-epoch
report) and ``python -m repro adapt`` (the Fig 8-style NoOp-vs-policies
PDR comparison in :mod:`repro.experiments.adaptation`).
"""

from repro.manager.faults import (
    ConditionSchedule,
    FAULT_KINDS,
    FaultEvent,
    SCENARIO_PRESETS,
    load_scenario,
    resolve_scenario,
)
from repro.manager.loop import (
    EpochOutcome,
    ManagerConfig,
    ManagerReport,
    NetworkManager,
    run_manager,
)
from repro.manager.policies import (
    Action,
    BlacklistChannel,
    EscalateRho,
    MANAGER_POLICIES,
    NoOp,
    Observation,
    RescheduleVictims,
    make_manager_policy,
)

__all__ = [
    "Action",
    "BlacklistChannel",
    "ConditionSchedule",
    "EpochOutcome",
    "EscalateRho",
    "FAULT_KINDS",
    "FaultEvent",
    "MANAGER_POLICIES",
    "ManagerConfig",
    "ManagerReport",
    "NetworkManager",
    "NoOp",
    "Observation",
    "RescheduleVictims",
    "SCENARIO_PRESETS",
    "load_scenario",
    "make_manager_policy",
    "resolve_scenario",
    "run_manager",
]
