"""The closed-loop network-manager runtime.

:class:`NetworkManager` advances a simulated WirelessHART network in
health-report epochs.  Each epoch it (1) resolves the fault scenario
into a :class:`~repro.simulator.conditions.Conditions` overlay, (2)
executes the current schedule for one epoch's worth of hyperperiods with
the ASN continuing where the previous epoch stopped, (3) feeds the
epoch's PRR distributions through the K-S detection policy and the
:class:`~repro.detection.health.StreamingHealthMonitor`, and (4) lets a
remediation policy decide whether to rebuild the schedule — barring
victims from reuse, blacklisting a channel, or raising ρ_t.

Everything is deterministic: given the same (topology, scenario, policy,
seed) the epoch-by-epoch :class:`ManagerReport` is bit-identical, for
any ``--workers`` fan-out (seeds derive from the trial key alone).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.ra import DEFAULT_RHO_T
from repro.core.repair import ChangeSet, ChannelChange, repair_schedule
from repro.core.reschedule import reschedule_without_reuse_on
from repro.core.schedule import Schedule
from repro.detection.classifier import (
    DetectionConfig,
    Verdict,
    diagnose_epoch,
)
from repro.detection.health import (
    SAMPLES_PER_EPOCH,
    StreamingHealthMonitor,
    build_epoch_report,
)
from repro.experiments.common import (
    PreparedNetwork,
    make_policy,
    prepare_network,
    schedule_workload,
)
from repro.experiments.detection_exp import build_detection_flow_set
from repro.experiments.parallel import parallel_map
from repro.flows.flow import FlowSet
from repro.mac.channels import ChannelMap
from repro.manager.faults import (
    ConditionSchedule,
    ScenarioResolver,
    resolve_scenario,
)
from repro.manager.policies import Action, Observation, make_manager_policy
from repro.network.topology import Topology
from repro.obs import recorder as _obs
from repro.obs.slo import STATE_ALERT, STATE_WARN, SloConfig, SloEngine
from repro.simulator.engine import SimulationConfig, TschSimulator
from repro.simulator.stats import Link
from repro.testbeds.layout import FloorPlan
from repro.testbeds.synth import RadioEnvironment
from repro.validate.audit import audit_schedule

#: Default hopping set for manager runs: the paper's reliability channels
#: (11-14, all overlapped by WiFi channel 1) plus channel 15, which WiFi
#: channel 1 leaves clean — giving the blacklist policy somewhere to go.
MANAGE_CHANNELS = (11, 12, 13, 14, 15)


@dataclass(frozen=True)
class ManagerConfig:
    """Parameters of one manager run.

    Attributes:
        scenario: Fault timeline — a preset name, a scenario-JSON path,
            or a :class:`ConditionSchedule`.
        policy: Remediation policy — a name from
            :data:`~repro.manager.policies.MANAGER_POLICIES` or an
            instance.
        scheduler_policy: Placement policy building the schedules
            ("NR" / "RA" / "RC").
        rho_t: Initial reuse hop floor for RA / RC.
        num_epochs: Health-report epochs to run.
        repetitions_per_epoch: Hyperperiods per epoch (18 matches the
            paper's 15-minute reports at a 1 s top period).
        num_flows: Peer-to-peer 1 s flows in the workload.
        channels: Physical channels the network hops over.
        seed: Base seed (workload, simulation, and fault resolution all
            derive from it deterministically).
        detection: K-S detection parameters.
        warmup_epochs / confirm_epochs / cooldown_epochs: Streaming
            monitor hysteresis (see
            :class:`~repro.detection.health.StreamingHealthMonitor`).
        repair: Remediate by incremental repair
            (:mod:`repro.core.repair`) — evicting only the change's
            blast radius and re-placing it against the surviving
            schedule — with automatic fallback to the full rebuild when
            repair fails placement or its result fails the audit.
            ``False`` always rebuilds from scratch.
        slo: Per-flow objective and burn-rate windows
            (:class:`~repro.obs.slo.SloConfig`); every epoch the
            manager feeds the simulator's per-flow tallies to an
            :class:`~repro.obs.slo.SloEngine` and exposes the alert
            state to the remediation policy as an early-warning input
            alongside the K-S verdicts.
        series_prefix: Prepended to every time-series name this run
            records (so concurrent managers — e.g. the adaptation
            study's per-policy arms — don't collide in one store).
        engine: Simulator engine for the per-epoch runs (``slot`` /
            ``event`` / ``auto``).  Engines are bit-identical and epoch
            substreams are keyed on the global repetition index, so the
            choice never changes an epoch's outcome — only wall time.
    """

    scenario: Union[str, ConditionSchedule] = "reuse-storm"
    policy: Any = "noop"
    scheduler_policy: str = "RC"
    rho_t: int = DEFAULT_RHO_T
    num_epochs: int = 8
    repetitions_per_epoch: int = SAMPLES_PER_EPOCH
    num_flows: int = 80
    channels: Tuple[int, ...] = MANAGE_CHANNELS
    seed: int = 0
    detection: DetectionConfig = DetectionConfig()
    warmup_epochs: int = 2
    confirm_epochs: int = 2
    cooldown_epochs: int = 1
    suspect_prr: float = 0.7
    repair: bool = True
    slo: SloConfig = SloConfig()
    series_prefix: str = ""
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be positive")
        if self.repetitions_per_epoch < 1:
            raise ValueError("repetitions_per_epoch must be positive")
        object.__setattr__(self, "channels", tuple(self.channels))


@dataclass(frozen=True)
class EpochOutcome:
    """Everything the manager recorded about one epoch.

    Attributes:
        epoch: Epoch index.
        conditions: Human-readable overlay summary
            (:meth:`repro.simulator.conditions.Conditions.describe`).
        median_pdr / worst_pdr: Per-flow PDR statistics for this epoch's
            repetitions only.
        num_reuse_links: Links sharing cells in the schedule this epoch
            ran under.
        num_reject / num_accept: This epoch's raw K-S verdict counts.
        confirmed_victims: Streak-confirmed reuse-degraded links.
        confirmed_external: Streak-confirmed other-cause links.
        confirmed_suspects: Streak-confirmed degraded reuse-only links
            the K-S test could not attribute.
        action: Short action label (``None`` when the policy held still).
        action_reason: The policy's trigger summary.
        action_applied: Whether the rebuild succeeded (a failed rebuild
            keeps the previous schedule running).
        num_channels / rho_t: Network state *after* the epoch's action.
        audit_ok: Whether this epoch's rebuild (if any) passed the
            independent schedule audit (:mod:`repro.validate.audit`).
            True when no rebuild was attempted; False means the policy
            produced a schedule that violated the paper's correctness
            contract and the manager rolled it back.
        repair_mode: How this epoch's accepted schedule was produced —
            ``"repair"`` (incremental, :mod:`repro.core.repair`),
            ``"rebuild"`` (full re-schedule, including the fallback
            path), or ``None`` when no action was applied.
        evicted_cells: Cells the incremental repair evicted and
            re-placed (0 outside ``repair_mode == "repair"``).
        slo_alerts / slo_warns: Flow ids whose SLO burn-rate state is
            ``alert`` / ``warn`` after this epoch.
    """

    epoch: int
    conditions: str
    median_pdr: float
    worst_pdr: float
    num_reuse_links: int
    num_reject: int
    num_accept: int
    confirmed_victims: Tuple[Link, ...]
    confirmed_external: Tuple[Link, ...]
    confirmed_suspects: Tuple[Link, ...]
    action: Optional[str]
    action_reason: str
    action_applied: bool
    num_channels: int
    rho_t: int
    audit_ok: bool = True
    repair_mode: Optional[str] = None
    evicted_cells: int = 0
    slo_alerts: Tuple[int, ...] = ()
    slo_warns: Tuple[int, ...] = ()

    def to_dict(self) -> Dict:
        """JSON-serializable form (links become 2-lists)."""
        return {
            "epoch": self.epoch,
            "conditions": self.conditions,
            "median_pdr": self.median_pdr,
            "worst_pdr": self.worst_pdr,
            "num_reuse_links": self.num_reuse_links,
            "num_reject": self.num_reject,
            "num_accept": self.num_accept,
            "confirmed_victims": [list(l) for l in self.confirmed_victims],
            "confirmed_external": [list(l) for l in self.confirmed_external],
            "confirmed_suspects": [list(l) for l in self.confirmed_suspects],
            "action": self.action,
            "action_reason": self.action_reason,
            "action_applied": self.action_applied,
            "num_channels": self.num_channels,
            "rho_t": self.rho_t,
            "audit_ok": self.audit_ok,
            "repair_mode": self.repair_mode,
            "evicted_cells": self.evicted_cells,
            "slo_alerts": list(self.slo_alerts),
            "slo_warns": list(self.slo_warns),
        }


@dataclass
class ManagerReport:
    """Epoch-by-epoch record of one manager run.

    The :meth:`to_dict` form is the determinism artifact: two runs with
    the same (topology, scenario, policy, seed) must produce identical
    dicts, regardless of worker counts elsewhere in the sweep.
    """

    scenario: str
    policy: str
    scheduler_policy: str
    seed: int
    epochs: List[EpochOutcome] = field(default_factory=list)
    barred_links: Tuple[Link, ...] = ()
    final_channels: Tuple[int, ...] = ()
    final_rho_t: int = DEFAULT_RHO_T

    def median_pdr_series(self) -> List[float]:
        """Median per-flow PDR, per epoch (the Fig 8-style y-axis)."""
        return [outcome.median_pdr for outcome in self.epochs]

    def worst_pdr_series(self) -> List[float]:
        """Worst-case per-flow PDR, per epoch."""
        return [outcome.worst_pdr for outcome in self.epochs]

    def actions_taken(self) -> List[Tuple[int, str]]:
        """(epoch, action label) for every applied action."""
        return [(o.epoch, o.action) for o in self.epochs
                if o.action is not None and o.action_applied]

    def to_dict(self) -> Dict:
        """JSON-serializable form."""
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "scheduler_policy": self.scheduler_policy,
            "seed": self.seed,
            "epochs": [outcome.to_dict() for outcome in self.epochs],
            "barred_links": [list(l) for l in self.barred_links],
            "final_channels": list(self.final_channels),
            "final_rho_t": self.final_rho_t,
        }


class NetworkManager:
    """Runs one closed manage loop over a prepared testbed.

    Args:
        topology: Full testbed topology (all synthesized channels — the
            manager restricts it itself, and blacklisting re-restricts).
        environment: Ground-truth RF environment.
        plan: Building geometry (fault interferer placement).
        config: Run parameters.
    """

    def __init__(self, topology: Topology, environment: RadioEnvironment,
                 plan: FloorPlan, config: ManagerConfig = ManagerConfig()):
        self.topology = topology
        self.environment = environment
        self.plan = plan
        self.config = config
        self.scenario = resolve_scenario(config.scenario)
        self.policy = make_manager_policy(config.policy)

    # ------------------------------------------------------------------
    # Schedule (re)construction
    # ------------------------------------------------------------------

    def _initial_state(self) -> Tuple[PreparedNetwork, FlowSet, Schedule]:
        """Prepare the network, draw the workload, build the schedule."""
        network = prepare_network(self.topology,
                                  channels=self.config.channels)
        rng = np.random.default_rng(self.config.seed)
        flow_set = build_detection_flow_set(network, rng,
                                            self.config.num_flows)
        result = schedule_workload(network, flow_set,
                                   self.config.scheduler_policy,
                                   self.config.rho_t)
        if not result.schedulable:
            raise RuntimeError(
                f"initial workload unschedulable "
                f"({self.config.num_flows} flows, "
                f"{len(self.config.channels)} channels, "
                f"{self.config.scheduler_policy}, "
                f"rho_t={self.config.rho_t}) — reduce --flows or add "
                f"channels")
        return network, flow_set, result.schedule

    def _rebuild(self, network: PreparedNetwork, flow_set: FlowSet,
                 rho_t: int, barred: Set[Link]) -> Optional[Schedule]:
        """Rebuild the schedule under the current remediation state.

        Returns ``None`` when the rebuild is unschedulable (the caller
        keeps the old schedule running — a live network cannot stop).
        """
        result = reschedule_without_reuse_on(
            flow_set, network.topology.num_nodes, network.num_channels,
            network.reuse, make_policy(self.config.scheduler_policy, rho_t),
            barred)
        return result.schedule if result.schedulable else None

    def _audited_rebuild(self, network: PreparedNetwork, flow_set: FlowSet,
                         rho_t: int, barred: Set[Link],
                         ) -> Tuple[Optional[Schedule], bool]:
        """Rebuild, then audit before accepting (SlotSwapper-style
        feasibility re-verification after schedule mutation).

        A remediation policy's rebuilt schedule goes live on the network;
        the independent auditor (:func:`repro.validate.audit
        .audit_schedule`) re-derives conflict-freedom, precedence,
        deadlines, the ρ-hop channel constraint, and the barred-link
        exclusions before the manager swaps it in.

        Returns:
            ``(schedule, audit_ok)``: the schedule is None when the
            rebuild was unschedulable (``audit_ok`` stays True — nothing
            to audit) *or* when it failed the audit (``audit_ok``
            False); either way the caller rolls back.
        """
        rebuilt = self._rebuild(network, flow_set, rho_t, barred)
        if rebuilt is None:
            return None, True
        audit = audit_schedule(rebuilt, network.reuse,
                               self._rho_floor(rho_t),
                               flow_set=flow_set, barred_links=barred)
        if not audit.ok:
            if _obs.ENABLED:
                _obs.RECORDER.count("manager.audit_failures")
                _obs.RECORDER.event(
                    "manager_audit_failed",
                    violations=[v.to_dict() for v in audit.violations[:20]])
            return None, False
        return rebuilt, True

    def _rho_floor(self, rho_t: int) -> float:
        """The audit floor: NR never shares, RA / RC promise ρ_t."""
        return (math.inf if self.config.scheduler_policy == "NR"
                else rho_t)

    def _audited_repair(self, network: PreparedNetwork, flow_set: FlowSet,
                        schedule: Schedule, rho_t: int, barred: Set[Link],
                        change: ChangeSet,
                        ) -> Tuple[Optional[Schedule], int]:
        """Incremental repair plus the same independent audit a rebuild
        gets; ``(None, evicted)`` when repair failed placement or the
        auditor rejected it (the caller falls back to the full rebuild).
        """
        outcome = repair_schedule(
            schedule, flow_set, network.reuse, change, rho_t=rho_t,
            barred=barred, policy_name=self.config.scheduler_policy)
        if not outcome.schedulable:
            if _obs.ENABLED:
                _obs.RECORDER.count("manager.repair_fallbacks")
                _obs.RECORDER.event(
                    "manager_repair_fallback", reason="placement",
                    failed=outcome.failed_request, evicted=outcome.evicted)
            return None, outcome.evicted
        graph = (change.channel.reuse_graph if change.channel is not None
                 else network.reuse)
        audit = audit_schedule(outcome.schedule, graph,
                               self._rho_floor(rho_t), flow_set=flow_set,
                               barred_links=barred)
        if not audit.ok:
            if _obs.ENABLED:
                _obs.RECORDER.count("manager.repair_fallbacks")
                _obs.RECORDER.event(
                    "manager_repair_fallback", reason="audit",
                    violations=[v.to_dict()
                                for v in audit.violations[:20]])
            return None, outcome.evicted
        return outcome.schedule, outcome.evicted

    def _audited_remediate(self, network: PreparedNetwork,
                           flow_set: FlowSet, schedule: Schedule,
                           rho_t: int, barred: Set[Link], change: ChangeSet,
                           ) -> Tuple[Optional[Schedule], bool,
                                      Optional[str], int]:
        """Repair first (when enabled), audited rebuild as the fallback.

        Returns ``(schedule, audit_ok, repair_mode, evicted_cells)``;
        the schedule is ``None`` when neither path produced an
        acceptable schedule (the caller rolls back).
        """
        if self.config.repair:
            repaired, evicted = self._audited_repair(
                network, flow_set, schedule, rho_t, barred, change)
            if repaired is not None:
                return repaired, True, "repair", evicted
        rebuilt, audit_ok = self._audited_rebuild(network, flow_set,
                                                  rho_t, barred)
        mode = "rebuild" if rebuilt is not None else None
        return rebuilt, audit_ok, mode, 0

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def run(self) -> ManagerReport:
        """Execute the manage loop and return its epoch-by-epoch report."""
        config = self.config
        network, flow_set, schedule = self._initial_state()
        resolver = ScenarioResolver(self.scenario, self.environment,
                                    self.plan, seed=config.seed)
        monitor = StreamingHealthMonitor(
            warmup_epochs=config.warmup_epochs,
            confirm_epochs=config.confirm_epochs,
            cooldown_epochs=config.cooldown_epochs,
            suspect_prr=config.suspect_prr)
        slo_engine = SloEngine(config.slo,
                               series_prefix=config.series_prefix)
        report = ManagerReport(
            scenario=self.scenario.name, policy=self.policy.name,
            scheduler_policy=config.scheduler_policy, seed=config.seed)

        rho_t = config.rho_t
        barred: Set[Link] = set()
        for epoch in range(config.num_epochs):
            conditions = resolver.conditions_for(epoch)
            simulator = TschSimulator(
                schedule=schedule, flow_set=flow_set,
                environment=self.environment,
                channel_map=network.topology.channel_map,
                config=SimulationConfig(
                    seed=(config.seed + 1) * 1_000_003 + epoch,
                    engine=config.engine),
                conditions=conditions)
            stats = simulator.run(
                config.repetitions_per_epoch,
                start_repetition=epoch * config.repetitions_per_epoch)

            epoch_report = build_epoch_report(stats, epoch)
            diagnoses = diagnose_epoch(epoch_report, config.detection)
            monitor.observe(diagnoses)

            # SLO burn-rate evaluation over this epoch's per-flow
            # tallies — the detector-independent early-warning signal.
            slo_states = slo_engine.observe_epoch(
                epoch, dict(stats.flow_released),
                dict(stats.flow_delivered))
            slo_alerts = tuple(s.flow_id for s in slo_states
                               if s.state == STATE_ALERT)
            slo_warns = tuple(s.flow_id for s in slo_states
                              if s.state == STATE_WARN)
            slo_candidates = self._slo_victim_candidates(
                slo_alerts, flow_set, schedule, barred)

            observation = Observation(
                epoch=epoch, report=epoch_report, diagnoses=diagnoses,
                confirmed_victims=monitor.confirmed_reuse_victims(),
                confirmed_external=monitor.confirmed_external(),
                confirmed_suspects=monitor.confirmed_suspects(),
                channel_prr=stats.channel_prr(),
                actionable=monitor.actionable(epoch),
                rho_t=rho_t, num_channels=network.num_channels,
                barred_links=tuple(sorted(barred)),
                slo_alerts=slo_alerts, slo_warns=slo_warns,
                slo_victim_candidates=slo_candidates)

            action = self.policy.decide(observation)
            applied = False
            audit_ok = True
            repair_mode: Optional[str] = None
            evicted_cells = 0
            prov = _obs.RECORDER.provenance if _obs.ENABLED else None
            prov_range = None
            if action is not None:
                # Bracket the remediation's rebuild with the provenance
                # recorder's decision counter: [first, last) cites the
                # exact placement decisions this epoch's action produced.
                first_decision = prov.next_id() if prov is not None else 0
                (applied, network, schedule, rho_t, audit_ok, repair_mode,
                 evicted_cells) = self._apply(
                    action, network, flow_set, schedule, rho_t, barred)
                if prov is not None and prov.next_id() > first_decision:
                    prov_range = [first_decision, prov.next_id()]
                # Cooldown regardless of success: pre-action streaks are
                # stale either way, and retry spacing prevents thrash.
                monitor.note_action(epoch)

            outcome = EpochOutcome(
                epoch=epoch, conditions=conditions.describe(),
                median_pdr=stats.median_pdr(), worst_pdr=stats.worst_pdr(),
                num_reuse_links=len(schedule.reuse_links()),
                num_reject=sum(d.verdict is Verdict.REJECT
                               for d in diagnoses),
                num_accept=sum(d.verdict is Verdict.ACCEPT
                               for d in diagnoses),
                confirmed_victims=tuple(observation.confirmed_victims),
                confirmed_external=tuple(observation.confirmed_external),
                confirmed_suspects=tuple(observation.confirmed_suspects),
                action=action.describe() if action else None,
                action_reason=action.reason if action else "",
                action_applied=applied,
                num_channels=network.num_channels, rho_t=rho_t,
                audit_ok=audit_ok,
                repair_mode=repair_mode, evicted_cells=evicted_cells,
                slo_alerts=slo_alerts, slo_warns=slo_warns)
            report.epochs.append(outcome)

            if _obs.ENABLED:
                _obs.RECORDER.count("manager.epochs")
                if action is not None:
                    _obs.RECORDER.count(f"manager.action.{action.kind}")
                    if applied:
                        _obs.RECORDER.count("manager.actions_applied")
                _obs.RECORDER.event(
                    "manager_epoch", epoch=epoch, policy=self.policy.name,
                    conditions=conditions.describe(),
                    median_pdr=outcome.median_pdr,
                    worst_pdr=outcome.worst_pdr,
                    num_reject=outcome.num_reject,
                    num_accept=outcome.num_accept,
                    action=outcome.action, action_applied=applied,
                    action_reason=outcome.action_reason,
                    audit_ok=audit_ok,
                    repair_mode=repair_mode, evicted_cells=evicted_cells,
                    slo_alerts=len(slo_alerts), slo_warns=len(slo_warns))
                self._record_epoch_series(epoch, outcome, stats, monitor,
                                          applied)

        report.barred_links = tuple(sorted(barred))
        report.final_channels = tuple(network.topology.channel_map)
        report.final_rho_t = rho_t
        return report

    @staticmethod
    def _slo_victim_candidates(slo_alerts: Sequence[int],
                               flow_set: FlowSet, schedule: Schedule,
                               barred: Set[Link]) -> Tuple[Link, ...]:
        """Reuse links carried by SLO-alerting flows, as victim hints.

        Burn rates indict *flows*; remediation bars *links*.  The
        bridge is route membership: a link is a candidate when it is on
        an alerting flow's route *and* currently shares a cell (reuse
        is the only cause the manager can remediate by rescheduling).
        Already-barred links are excluded — re-barring them is a no-op.
        """
        if not slo_alerts:
            return ()
        alerting = set(slo_alerts)
        reuse_links = set(schedule.reuse_links())
        candidates: Set[Link] = set()
        for flow in flow_set:
            if flow.flow_id not in alerting:
                continue
            for link in flow.links:
                if link in reuse_links and link not in barred:
                    candidates.add(link)
        return tuple(sorted(candidates))

    def _record_epoch_series(self, epoch: int, outcome: EpochOutcome,
                             stats, monitor: StreamingHealthMonitor,
                             applied: bool) -> None:
        """Feed this epoch's network-level samples to the time-series
        store (the SLO engine already recorded the per-flow series).

        No-op unless the active recorder has a store attached.
        """
        recorder = _obs.RECORDER
        if recorder.timeseries is None:
            return
        prefix = self.config.series_prefix
        recorder.sample(prefix + "manager.median_pdr", epoch,
                        outcome.median_pdr)
        recorder.sample(prefix + "manager.worst_pdr", epoch,
                        outcome.worst_pdr)
        recorder.sample(prefix + "manager.reuse_links", epoch,
                        outcome.num_reuse_links)
        recorder.sample(prefix + "manager.actions", epoch,
                        1.0 if applied else 0.0)
        recorder.sample(prefix + "manager.slo_alerting", epoch,
                        len(outcome.slo_alerts))
        for kind, count in monitor.streak_counts().items():
            recorder.sample(prefix + f"manager.health.{kind}_streaks",
                            epoch, count)
        for channel, prr in sorted(stats.channel_prr().items()):
            recorder.sample(prefix + f"channel.{channel}.prr", epoch, prr)

    def _apply(self, action: Action, network: PreparedNetwork,
               flow_set: FlowSet, schedule: Schedule, rho_t: int,
               barred: Set[Link],
               ) -> Tuple[bool, PreparedNetwork, Schedule, int, bool,
                          Optional[str], int]:
        """Apply one action; on failure every state change is rolled back.

        ``barred`` is mutated in place (the accumulated no-reuse set);
        network / schedule / rho_t are returned, plus whether the
        remediated schedule (if one was produced) passed the schedule
        audit, how it was produced (``"repair"`` / ``"rebuild"`` /
        ``None``), and how many cells the repair evicted.
        """
        if action.kind == "reschedule":
            added = set(action.victims) - barred
            barred |= added
            change = ChangeSet(victims=tuple(sorted(added)))
            new, audit_ok, mode, evicted = self._audited_remediate(
                network, flow_set, schedule, rho_t, barred, change)
            if new is None:
                barred -= added
                return False, network, schedule, rho_t, audit_ok, None, 0
            return True, network, new, rho_t, audit_ok, mode, evicted

        if action.kind == "blacklist":
            remaining = tuple(ch for ch in network.topology.channel_map
                              if ch != action.channel)
            if not remaining:
                return False, network, schedule, rho_t, True, None, 0
            # Keep the original routes (the flow set is already routed)
            # and remediate on the reduced hopping set.  The reuse graph
            # is re-derived from the restricted topology; route quality
            # is re-assessed only at the next full (re)provisioning —
            # the standard WirelessHART split between the fast blacklist
            # path and slow route maintenance.
            new_network = prepare_network(self.topology, channels=remaining)
            new_map = tuple(new_network.topology.channel_map)
            change = ChangeSet(channel=ChannelChange(
                reuse_graph=new_network.reuse,
                num_offsets=new_network.num_channels,
                offset_map=tuple(
                    new_map.index(ch) if ch in new_map else None
                    for ch in network.topology.channel_map)))
            new, audit_ok, mode, evicted = self._audited_remediate(
                new_network, flow_set, schedule, rho_t, barred, change)
            if new is None:
                return False, network, schedule, rho_t, audit_ok, None, 0
            return True, new_network, new, rho_t, audit_ok, mode, evicted

        if action.kind == "escalate_rho":
            new_rho = action.rho_t if action.rho_t is not None else rho_t
            change = ChangeSet(rho_t=new_rho)
            new, audit_ok, mode, evicted = self._audited_remediate(
                network, flow_set, schedule, new_rho, barred, change)
            if new is None:
                return False, network, schedule, rho_t, audit_ok, None, 0
            return True, network, new, new_rho, audit_ok, mode, evicted

        raise ValueError(f"unknown action kind: {action.kind!r}")


def _manager_trial(context: Dict[str, Any], seed: int) -> ManagerReport:
    """One manager run for one seed (the :func:`parallel_map` trial)."""
    config: ManagerConfig = replace(context["config"], seed=seed)
    manager = NetworkManager(context["topology"], context["environment"],
                             context["plan"], config)
    return manager.run()


def run_manager(topology: Topology, environment: RadioEnvironment,
                plan: FloorPlan, config: ManagerConfig = ManagerConfig(),
                *, seeds: Optional[Sequence[int]] = None,
                workers: int = 1) -> List[ManagerReport]:
    """Run the manage loop for one or more seeds.

    Args:
        topology: Full testbed topology.
        environment: Its RF environment.
        plan: Building geometry.
        config: Run parameters (``config.seed`` is overridden per trial).
        seeds: Seeds to fan out over; ``None`` runs just ``config.seed``.
        workers: Worker processes (``0`` = all CPUs).  Reports are
            bit-identical for any worker count.

    Returns:
        One :class:`ManagerReport` per seed, in ``seeds`` order.
    """
    trial_seeds = list(seeds) if seeds is not None else [config.seed]
    context = {"topology": topology, "environment": environment,
               "plan": plan, "config": config}
    return parallel_map(_manager_trial, trial_seeds, workers=workers,
                        context=context)
