"""Pluggable remediation strategies for the network manager.

Each policy looks at one epoch's :class:`Observation` — the streaming
monitor's confirmed findings plus the epoch's health data — and returns
an :class:`Action` (or ``None``).  The manager loop owns *applying* the
action (rebuilding schedules, swapping channel maps), so policies stay
pure decision functions and are trivially testable with hand-built
observations.

The four strategies mirror the remediation levers a WirelessHART
network manager actually has:

* :class:`RescheduleVictims` — "links can be reassigned to different
  channels or time slots" (paper Section VI): rebuild the schedule with
  confirmed reuse-degraded links barred from shared cells, via
  :func:`repro.core.reschedule.reschedule_without_reuse_on`.
* :class:`BlacklistChannel` — when degradation is reuse-independent
  (K-S *accepts*) and concentrated on specific physical channels, drop
  the worst channel from the hopping map (the MAC blacklist of
  :class:`repro.mac.channels.Blacklist`) and rebuild.
* :class:`EscalateRho` — raise the conservative reuse hop floor ρ_t and
  rebuild: trades schedulability margin for interference margin when
  reuse keeps hurting links faster than spot-rescheduling fixes them.
* :class:`NoOp` — the do-nothing baseline every adaptation experiment
  compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.detection.classifier import LinkDiagnosis
from repro.detection.health import EpochReport
from repro.simulator.stats import Link


@dataclass(frozen=True)
class Observation:
    """What a policy sees at the end of one epoch.

    Attributes:
        epoch: Epoch index.
        report: The epoch's health report.
        diagnoses: This epoch's raw K-S diagnoses.
        confirmed_victims: Reuse-degraded links that survived the
            streaming monitor's confirmation streak.
        confirmed_external: Links confirmed degraded by something other
            than reuse (K-S accept streak).
        confirmed_suspects: Deeply degraded reuse-only links the K-S
            test could not attribute (no contention-free baseline).
        channel_prr: Pooled PRR per physical channel this epoch.
        actionable: False during warm-up/cooldown; policies must not
            act.
        rho_t: The reuse hop floor the current schedule was built with.
        num_channels: Channels currently in the hopping map.
        barred_links: Links already barred from reuse by earlier
            reschedule actions.
        slo_alerts / slo_warns: Flow ids whose SLO burn-rate state is
            ``alert`` / ``warn`` this epoch
            (:class:`repro.obs.slo.SloEngine`) — the early-warning
            channel that fires on budget exhaustion before the K-S
            streaks confirm a cause.
        slo_victim_candidates: Reuse links on alerting flows' routes,
            not yet barred — the loop's translation of flow-level SLO
            alarms into link-level remediation hints.
    """

    epoch: int
    report: EpochReport
    diagnoses: List[LinkDiagnosis]
    confirmed_victims: List[Link]
    confirmed_external: List[Link]
    confirmed_suspects: List[Link]
    channel_prr: Dict[int, float]
    actionable: bool
    rho_t: int
    num_channels: int
    barred_links: Tuple[Link, ...] = ()
    slo_alerts: Tuple[int, ...] = ()
    slo_warns: Tuple[int, ...] = ()
    slo_victim_candidates: Tuple[Link, ...] = ()


@dataclass(frozen=True)
class Action:
    """A remediation decision the manager loop should apply.

    Attributes:
        kind: ``"reschedule"``, ``"blacklist"``, or ``"escalate_rho"``.
        victims: Links to bar from shared cells (``reschedule``).
        channel: Physical channel to drop (``blacklist``).
        rho_t: New reuse hop floor (``escalate_rho``).
        reason: Human-readable trigger summary (traced and reported).
    """

    kind: str
    victims: Tuple[Link, ...] = ()
    channel: Optional[int] = None
    rho_t: Optional[int] = None
    reason: str = ""

    def describe(self) -> str:
        """Short label for epoch reports."""
        if self.kind == "reschedule":
            return f"reschedule({len(self.victims)} links)"
        if self.kind == "blacklist":
            return f"blacklist(ch{self.channel})"
        if self.kind == "escalate_rho":
            return f"escalate_rho({self.rho_t})"
        return self.kind


class NoOp:
    """Never intervenes: the baseline the paper's static pipeline is."""

    name = "NoOp"

    def decide(self, observation: Observation) -> Optional[Action]:
        """Do nothing, always."""
        return None


@dataclass
class RescheduleVictims:
    """Bar confirmed reuse-degraded links from shared cells and rebuild.

    Wraps :func:`repro.core.reschedule.reschedule_without_reuse_on`
    (applied by the loop).  Victims accumulate across actions: once a
    link has been shown reuse-fragile it stays barred, because the
    conditions that degraded it (under-surveyed coupling) do not heal
    when the schedule changes.

    Attributes:
        max_victims_per_action: Cap on newly barred links per action —
            the manager moves the worst offenders first and re-tests,
            instead of tearing up the whole schedule on one epoch's
            evidence.
        include_suspects: Also bar confirmed *suspects* — reuse-only
            links too degraded to ignore but lacking the contention-free
            baseline the K-S test needs.  Moving them to exclusive cells
            is the remedy if reuse was the cause and produces the
            missing baseline if it was not.
        slo_early_warning: Also consider ``slo_victim_candidates`` —
            reuse links on flows whose SLO burn rate is in sustained
            ``alert``.  This acts *ahead* of K-S confirmation (burn
            windows are shorter than warm-up + confirm streaks), at the
            cost of occasionally barring a link whose flow was hurt by
            something reuse removal cannot fix.  Off by default to keep
            the PR 5 policy behavior bit-identical.
    """

    name: str = field(default="RescheduleVictims", init=False)
    max_victims_per_action: int = 20
    include_suspects: bool = True
    slo_early_warning: bool = False

    def decide(self, observation: Observation) -> Optional[Action]:
        """Reschedule confirmed victims (and suspects) not already barred."""
        if not observation.actionable:
            return None
        candidates = list(observation.confirmed_victims)
        if self.include_suspects:
            candidates += [link for link in observation.confirmed_suspects
                           if link not in set(candidates)]
        barred = set(observation.barred_links)
        fresh = [link for link in candidates if link not in barred]
        num_confirmed = len(fresh)
        if self.slo_early_warning:
            seen = set(candidates) | barred
            fresh += [link for link in observation.slo_victim_candidates
                      if link not in seen]
        if not fresh:
            return None
        worst = sorted(
            fresh,
            key=lambda link: (
                observation.report.links[link].reuse_prr
                if link in observation.report.links
                and observation.report.links[link].reuse_prr is not None
                else 0.0))
        chosen = tuple(worst[:self.max_victims_per_action])
        reason = f"{num_confirmed} confirmed reuse victims"
        if len(fresh) > num_confirmed:
            reason += (f" + {len(fresh) - num_confirmed} SLO "
                       f"early-warning candidates "
                       f"({len(observation.slo_alerts)} flows alerting)")
        return Action(kind="reschedule", victims=chosen, reason=reason)


@dataclass
class BlacklistChannel:
    """Drop the worst physical channel when degradation is reuse-blind.

    Triggers when the monitor confirms *externally* degraded links (K-S
    accept streak — reuse removal would not help) and one channel's
    pooled PRR sits both below ``prr_threshold`` and clearly below the
    best channel's.  The loop then rebuilds the schedule on the reduced
    hopping map (one fewer offset).

    Attributes:
        prr_threshold: A channel must pool below this to be dropped.
        margin: Required PRR gap to the best channel (avoids
            blacklisting when *everything* is equally bad — dropping a
            channel then only cuts capacity).
        min_channels: Never shrink the map below this (TSCH needs
            hopping diversity; the schedule needs offsets).
    """

    name: str = field(default="BlacklistChannel", init=False)
    prr_threshold: float = 0.85
    margin: float = 0.05
    min_channels: int = 2

    def decide(self, observation: Observation) -> Optional[Action]:
        """Blacklist the worst channel if it is singularly bad."""
        if not observation.actionable:
            return None
        if not observation.confirmed_external:
            return None
        if observation.num_channels <= self.min_channels:
            return None
        if not observation.channel_prr:
            return None
        worst_channel = min(observation.channel_prr,
                            key=observation.channel_prr.get)
        worst = observation.channel_prr[worst_channel]
        best = max(observation.channel_prr.values())
        if worst >= self.prr_threshold or best - worst < self.margin:
            return None
        return Action(
            kind="blacklist", channel=worst_channel,
            reason=(f"{len(observation.confirmed_external)} external-cause "
                    f"links; ch{worst_channel} PRR {worst:.2f} vs best "
                    f"{best:.2f}"))


@dataclass
class EscalateRho:
    """Raise the reuse hop floor ρ_t and rebuild the whole schedule.

    The blunt instrument: instead of barring individual links, make
    *every* reuse placement more conservative.  Useful when confirmed
    victims keep appearing — the reuse graph's hop distances are
    underestimating interference globally, which is exactly the failure
    mode the paper's conservative policy guards against.

    Attributes:
        step: How much to raise ρ_t per action.
        max_rho: Upper bound (beyond the reuse graph's diameter, RC
            degenerates into NR).
    """

    name: str = field(default="EscalateRho", init=False)
    step: int = 1
    max_rho: int = 6

    def decide(self, observation: Observation) -> Optional[Action]:
        """Escalate while confirmed victims exist and headroom remains."""
        if not observation.actionable:
            return None
        degraded = (len(observation.confirmed_victims)
                    + len(observation.confirmed_suspects))
        if not degraded:
            return None
        if observation.rho_t >= self.max_rho:
            return None
        new_rho = min(observation.rho_t + self.step, self.max_rho)
        return Action(
            kind="escalate_rho", rho_t=new_rho,
            reason=(f"{degraded} confirmed victims/suspects at "
                    f"rho_t={observation.rho_t}"))


#: CLI name -> policy factory.
MANAGER_POLICIES = {
    "noop": NoOp,
    "reschedule": RescheduleVictims,
    "blacklist": BlacklistChannel,
    "escalate": EscalateRho,
}


def make_manager_policy(name: Union[str, NoOp, RescheduleVictims,
                                    BlacklistChannel, EscalateRho]):
    """Instantiate a remediation policy from its CLI name.

    Accepts an already-built policy object (returned unchanged) or one
    of ``noop`` / ``reschedule`` / ``blacklist`` / ``escalate`` (also
    accepted: the class names, case-insensitively).
    """
    if not isinstance(name, str):
        return name
    key = name.lower()
    aliases = {cls.__name__.lower(): cls
               for cls in (NoOp, RescheduleVictims, BlacklistChannel,
                           EscalateRho)}
    factory = MANAGER_POLICIES.get(key) or aliases.get(key)
    if factory is None:
        raise ValueError(
            f"unknown manager policy: {name!r} "
            f"(expected one of {', '.join(sorted(MANAGER_POLICIES))})")
    return factory()
