"""Persistence: save and load topologies, flow sets, and schedules.

Real deployments separate topology collection, scheduling, and
execution in time; experiments need the same artifacts pinned to disk
for reproducibility.  Topologies (dense numeric matrices) use ``.npz``;
flow sets and schedules (small and structural) use JSON.  Observability
artifacts — metrics snapshots and trace event streams — use JSON and
JSON Lines respectively.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

import numpy as np

from repro.core.schedule import Schedule
from repro.core.scheduler import SchedulingResult
from repro.core.transmissions import TransmissionRequest
from repro.flows.flow import Flow, FlowSet
from repro.mac.channels import ChannelMap
from repro.network.node import Node, NodeRole, Position
from repro.network.topology import Topology

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Generic JSON / JSON Lines (metrics snapshots, trace events)
# ----------------------------------------------------------------------

def save_jsonl(records: Iterable[Dict], path: PathLike) -> int:
    """Write dict records as JSON Lines (one compact object per line).

    Returns:
        The number of records written.
    """
    count = 0
    with Path(path).open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def append_jsonl(records: Iterable[Dict], path: PathLike) -> int:
    """Append dict records to a JSON Lines file (created if missing).

    The run ledger (:mod:`repro.obs.ledger`) and the benchmark history
    are append-only by contract: re-running an experiment must never
    erase the account of earlier runs.  Parent directories are created.

    Returns:
        The number of records appended.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def load_jsonl(path: PathLike) -> List[Dict]:
    """Read records written by :func:`save_jsonl` (blank lines skipped)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def save_metrics(snapshot: Dict, path: PathLike) -> None:
    """Save a :meth:`repro.obs.MetricsRegistry.snapshot` as JSON."""
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=True))


def load_metrics(path: PathLike) -> Dict:
    """Load a metrics snapshot saved by :func:`save_metrics`."""
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------

def save_topology(topology: Topology, path: PathLike) -> None:
    """Save a topology (PRR matrix, channels, nodes) to an ``.npz`` file."""
    roles = np.array([node.role.value for node in topology.nodes])
    positions = topology.positions()
    if positions is None:
        positions = np.full((topology.num_nodes, 3), np.nan)
    np.savez_compressed(
        Path(path),
        prr=topology.prr,
        channels=np.array(list(topology.channel_map), dtype=np.int64),
        roles=roles,
        positions=positions,
        name=np.array(topology.name),
    )


def load_topology(path: PathLike) -> Topology:
    """Load a topology saved by :func:`save_topology`."""
    with np.load(Path(path), allow_pickle=False) as data:
        prr = data["prr"]
        channels = tuple(int(c) for c in data["channels"])
        roles = [NodeRole(str(r)) for r in data["roles"]]
        positions = data["positions"]
        name = str(data["name"])
    nodes = []
    for index, role in enumerate(roles):
        coords = positions[index]
        position = None if np.isnan(coords).any() else Position(
            float(coords[0]), float(coords[1]), float(coords[2]))
        nodes.append(Node(index, role, position))
    return Topology(nodes=nodes, channel_map=ChannelMap(channels),
                    prr=prr, name=name)


# ----------------------------------------------------------------------
# Flow sets
# ----------------------------------------------------------------------

def flow_to_dict(flow: Flow) -> Dict:
    """JSON-serializable form of a flow."""
    return {
        "flow_id": flow.flow_id,
        "source": flow.source,
        "destination": flow.destination,
        "period_slots": flow.period_slots,
        "deadline_slots": flow.deadline_slots,
        "route": list(flow.route),
        "wire_after": flow.wire_after,
    }


def flow_from_dict(data: Dict) -> Flow:
    """Inverse of :func:`flow_to_dict`."""
    return Flow(
        flow_id=int(data["flow_id"]),
        source=int(data["source"]),
        destination=int(data["destination"]),
        period_slots=int(data["period_slots"]),
        deadline_slots=int(data["deadline_slots"]),
        route=tuple(data.get("route", ())),
        wire_after=data.get("wire_after"),
    )


def save_flow_set(flow_set: FlowSet, path: PathLike) -> None:
    """Save a flow set (priority order preserved) as JSON."""
    payload = {"flows": [flow_to_dict(f) for f in flow_set]}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_flow_set(path: PathLike) -> FlowSet:
    """Load a flow set saved by :func:`save_flow_set`."""
    payload = json.loads(Path(path).read_text())
    return FlowSet([flow_from_dict(d) for d in payload["flows"]])


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------

def schedule_to_dict(schedule: Schedule, include_state: bool = False) -> Dict:
    """JSON-serializable form of a schedule.

    Args:
        schedule: The schedule to serialize.
        include_state: Also embed the internal bookkeeping arrays (busy
            matrix, used-offset masks, occupancy planes) verbatim.  Audit
            dumps need this: the whole point of re-auditing a schedule is
            that its bookkeeping may disagree with its entry list, and an
            entries-only round trip would silently rebuild consistent
            state.  Loaded back with ``strict=False``, the arrays are
            restored bit for bit.
    """
    entries: List[Dict] = []
    for entry in schedule.entries:
        request = entry.request
        entries.append({
            "flow_id": request.flow_id,
            "instance": request.instance,
            "hop_index": request.hop_index,
            "attempt": request.attempt,
            "sender": request.sender,
            "receiver": request.receiver,
            "release_slot": request.release_slot,
            "deadline_slot": request.deadline_slot,
            "slot": entry.slot,
            "offset": entry.offset,
        })
    payload = {
        "num_nodes": schedule.num_nodes,
        "num_slots": schedule.num_slots,
        "num_offsets": schedule.num_offsets,
        "entries": entries,
    }
    if include_state:
        counts, senders, receivers = schedule.occupancy()
        payload["state"] = {
            "busy": schedule.busy_matrix().astype(int).tolist(),
            "used_mask": [int(schedule._used_mask[s])
                          for s in range(schedule.num_slots)],
            "occ_count": counts.tolist(),
            "occ_senders": senders.tolist(),
            "occ_receivers": receivers.tolist(),
        }
    return payload


def schedule_from_dict(data: Dict, strict: bool = True) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    Args:
        data: The serialized schedule.
        strict: When True (default), entries are re-added through the
            normal mutation path, so structural invariants
            (conflict-freedom, bounds) are re-checked on load and any
            embedded ``state`` blob is ignored as redundant.  When
            False, entries are force-added without the node-conflict
            check and an embedded ``state`` blob overwrites the
            bookkeeping arrays verbatim — the loader reproduces the
            dump exactly and leaves validity judgments to
            :func:`repro.validate.audit.audit_schedule`.
    """
    schedule = Schedule(int(data["num_nodes"]), int(data["num_slots"]),
                        int(data["num_offsets"]))
    place = schedule.add if strict else schedule.force_add
    for item in data["entries"]:
        request = TransmissionRequest(
            flow_id=int(item["flow_id"]),
            instance=int(item["instance"]),
            hop_index=int(item["hop_index"]),
            attempt=int(item["attempt"]),
            sender=int(item["sender"]),
            receiver=int(item["receiver"]),
            release_slot=int(item["release_slot"]),
            deadline_slot=int(item["deadline_slot"]),
        )
        place(request, int(item["slot"]), int(item["offset"]))
    state = data.get("state")
    if state is not None and not strict:
        lanes = (len(state["occ_senders"][0][0])
                 if state["occ_senders"] and state["occ_senders"][0] else 0)
        shape = (schedule.num_slots, schedule.num_offsets, lanes)
        schedule._busy = np.asarray(state["busy"], dtype=bool)
        schedule._used_mask = np.asarray(state["used_mask"], dtype=np.int32)
        schedule._occ_count = np.asarray(state["occ_count"], dtype=np.int32)
        schedule._occ_senders = np.asarray(
            state["occ_senders"], dtype=np.int32).reshape(shape)
        schedule._occ_receivers = np.asarray(
            state["occ_receivers"], dtype=np.int32).reshape(shape)
    return schedule


def save_schedule(schedule: Schedule, path: PathLike,
                  include_state: bool = False) -> None:
    """Save a schedule as JSON (see :func:`schedule_to_dict`)."""
    Path(path).write_text(json.dumps(
        schedule_to_dict(schedule, include_state=include_state), indent=2))


def load_schedule(path: PathLike, strict: bool = True) -> Schedule:
    """Load a schedule saved by :func:`save_schedule`.

    ``strict=False`` reproduces the dump verbatim — including invalid
    placements and corrupt bookkeeping — for auditing
    (see :func:`schedule_from_dict`).
    """
    return schedule_from_dict(json.loads(Path(path).read_text()),
                              strict=strict)


# ----------------------------------------------------------------------
# Scheduling results
# ----------------------------------------------------------------------

def scheduling_result_to_dict(result: SchedulingResult,
                              include_schedule: bool = True) -> Dict:
    """JSON-serializable form of a :class:`SchedulingResult`.

    Args:
        result: The scheduler outcome.
        include_schedule: Also embed the (potentially large) schedule and
            flow set; set False for compact per-run summaries.
    """
    payload: Dict = {
        "schedulable": result.schedulable,
        "policy": result.policy_name,
        "failed_flow": result.failed_flow,
        "failed_instance": result.failed_instance,
        "elapsed_s": result.elapsed_s,
        "counters": {name: value
                     for name, value in sorted(result.counters.items())},
    }
    if include_schedule:
        payload["schedule"] = schedule_to_dict(result.schedule)
        payload["flows"] = [flow_to_dict(f) for f in result.flow_set]
    return payload


def save_scheduling_result(result: SchedulingResult, path: PathLike,
                           include_schedule: bool = True) -> None:
    """Save a scheduling result (with its counters) as JSON."""
    Path(path).write_text(json.dumps(
        scheduling_result_to_dict(result, include_schedule), indent=2))


# ----------------------------------------------------------------------
# Validation artifacts (audit reports, fuzz reports / failure cases)
# ----------------------------------------------------------------------

def save_audit_report(report, path: PathLike) -> None:
    """Save a :class:`repro.validate.AuditReport` as JSON."""
    Path(path).write_text(json.dumps(report.to_dict(), indent=2,
                                     sort_keys=True))


def save_fuzz_report(report, path: PathLike) -> None:
    """Save a :class:`repro.validate.FuzzReport` (failing cases in full,
    each with its ``reproduce`` command line) as JSON."""
    Path(path).write_text(json.dumps(report.to_dict(), indent=2))
