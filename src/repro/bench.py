"""Tracked benchmark harness: ``python -m repro bench``.

Times the NR / RA / RC schedulers on fixed, seeded Figure-1-style
workloads (Indriya testbed, 5 channels, centralized traffic) under both
placement kernels, times single-victim remediation both ways —
warm-start repair (:mod:`repro.core.repair`) vs full barrier rebuild —
times the Monte-Carlo simulator's slot oracle against the batched
event engine on reliability-style WUSTL workloads, and times a small
schedulability sweep at one and several worker processes.  Results
land in ``BENCH_schedulers.json`` so kernel, repair, simulator, and
parallelism changes leave an auditable performance trail in the
repository.

Methodology:

* Wall times are best-of-``repetitions`` with observability *disabled*
  (the vector kernel's fused RC path only engages with obs off, and the
  scalar path should not pay tracing costs either).
* Work counters (placements, slots scanned) come from one separate
  instrumented pass per configuration — identical work, so the counters
  pair exactly with the timed runs.
* The scalar and vector kernels are verified to produce identical
  schedules on every workload before timing them; the benchmark aborts
  loudly if they diverge.
* The parallel-sweep section reports the machine's CPU count next to
  its timings: on a single-core host ``workers > 1`` cannot win and the
  numbers record exactly that.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core import kernel as _kernel
from repro.experiments.common import (
    POLICY_NAMES,
    build_workload,
    prepare_network,
    schedule_workload,
)
from repro.experiments.schedulability import run_sweep
from repro.flows.generator import PeriodRange
from repro.routing.traffic import TrafficType

#: Default output file, tracked in the repository.
DEFAULT_OUT = "BENCH_schedulers.json"

#: Default append-only per-run history (JSONL, one record per bench).
DEFAULT_HISTORY = "benchmarks/history.jsonl"

#: Regression gate for ``--compare``: a shared (flows, policy, kernel)
#: cell may be at most this much slower than the baseline.
REGRESSION_THRESHOLD = 0.20

#: Regression gate for the service latency cells.  Service p50 folds in
#: process scheduling, pipe round-trips, and asyncio wakeups, all far
#: noisier than a tight kernel loop; only p50 is gated (p99 is reported
#: but a single slow wakeup would make it an unusable gate).
SERVICE_REGRESSION_THRESHOLD = 0.50

#: Crossover gate: the auto kernel may be at most this much slower than
#: the better fixed kernel in any cell.  Auto's timing pools its own
#: samples with its resolved kernel's (see :func:`bench_schedulers`), so
#: same-code-path noise no longer reaches this gate; the residual slack
#: covers cells where the two fixed kernels are timing-indistinguishable
#: (NR) and noise decides which *fixed* best-of-N lands lower.
AUTO_TOLERANCE = 0.05

#: Quick mode times one small (~ms) workload, where scheduler wall time
#: is dominated by allocator/cache state rather than kernel choice;
#: the auto contract is only *smoke*-checked there.
QUICK_AUTO_TOLERANCE = 0.25

#: Figure-1-style workload sizes (flows on 5 channels, centralized).
#: The 20-flow cell doubles as the quick-mode workload, so CI's quick
#: bench shares a comparable cell with the tracked full baseline.
FULL_FLOW_COUNTS = (20, 30, 50, 70)
QUICK_FLOW_COUNTS = (20,)

#: Remediation-latency workload sizes (single-victim repair vs full
#: barrier rebuild on an RC schedule).  Quick mode keeps one cell so CI
#: still exercises the path and shares a comparable cell with the full
#: baseline.
REMEDIATION_FLOW_COUNTS = (30, 50, 70)
QUICK_REMEDIATION_FLOW_COUNTS = (30,)


def _workloads(flow_counts: Sequence[int], seed: int):
    """Build the fixed benchmark workloads (one flow set per size)."""
    from repro.testbeds import make_indriya

    topology, _ = make_indriya()
    network = prepare_network(topology, num_channels=5)
    workloads = []
    for num_flows in flow_counts:
        rng = np.random.default_rng(seed)
        flow_set = build_workload(network, num_flows, PeriodRange(0, 4),
                                  TrafficType.CENTRALIZED, rng)
        workloads.append((num_flows, flow_set))
    return network, workloads


def _placements_of(result) -> List[tuple]:
    """Schedule as a comparable list (full placement signature)."""
    if not result.schedulable or result.schedule is None:
        return []
    return result.schedule.signature()


def _instrumented_counters(network, flow_set, policy: str,
                           kernel: str) -> Dict:
    """One obs-recorded pass for a cell's work counters."""
    with _kernel.kernel_mode(kernel):
        with obs.recording() as recorder:
            schedule_workload(network, flow_set, policy)
    return recorder.snapshot()["counters"]


def _resolved_auto_kernel(flow_set, policy: str) -> str:
    """The concrete kernel auto resolves to for one bench workload.

    Mirrors :meth:`repro.core.scheduler.FixedPriorityScheduler
    ._resolve_auto`: the size estimate is the number of transmission
    requests the run places (instances x route hops x attempts).
    """
    from repro.core.scheduler import ATTEMPTS_PER_LINK

    hyperperiod = flow_set.hyperperiod()
    num_requests = sum(
        (hyperperiod // flow.period_slots) * len(flow.links)
        * ATTEMPTS_PER_LINK
        for flow in flow_set)
    with _kernel.kernel_mode(_kernel.KERNEL_AUTO):
        return _kernel.resolve_kernel(policy, num_requests)


def bench_schedulers(flow_counts: Sequence[int], seed: int,
                     repetitions: int,
                     auto_tolerance: float = AUTO_TOLERANCE) -> List[Dict]:
    """Scalar / vector / auto timings for every (flow count, policy) pair.

    Each cell times all three kernel modes with the repetitions
    *interleaved* (one run per kernel per round), so slow drift on
    shared hardware hits every kernel alike instead of whichever mode
    happened to run during a noisy stretch.

    The auto cell's wall time additionally pools its samples with its
    resolved fixed kernel's: an auto run *is* that kernel's code path
    plus a constant-time resolution (:func:`repro.core.kernel
    .resolve_kernel`), so both sample the same distribution and the
    pooled best is a tighter estimate of the same quantity — without it,
    best-of-N noise between two identical code paths decides the sign of
    ``auto_speedup``.  The raw unpooled timing is kept alongside
    (``raw_wall_s``) so the pooling is auditable.  :func:`check_auto`
    then asserts auto never *loses*: a pooled auto cell slower than
    scalar means the resolution genuinely picked a slower vector path.

    Best-of-1 timings (``repetitions == 1``) cannot support a
    noise-bounded assertion, so the check is skipped there — the
    schedule-signature equivalence check still runs.
    """
    network, workloads = _workloads(flow_counts, seed)
    rows: List[Dict] = []
    kernels = (_kernel.KERNEL_SCALAR, _kernel.KERNEL_VECTOR,
               _kernel.KERNEL_AUTO)
    for num_flows, flow_set in workloads:
        for policy in POLICY_NAMES:
            row: Dict = {"num_flows": num_flows, "policy": policy}
            best = {kernel: float("inf") for kernel in kernels}
            results = {}
            for _ in range(repetitions):
                for kernel in kernels:
                    with _kernel.kernel_mode(kernel):
                        start = time.perf_counter()
                        results[kernel] = schedule_workload(
                            network, flow_set, policy)
                        best[kernel] = min(
                            best[kernel], time.perf_counter() - start)
            signatures = {kernel: _placements_of(result)
                          for kernel, result in results.items()}
            for kernel in kernels[1:]:
                if signatures[kernel] != signatures[_kernel.KERNEL_SCALAR]:
                    raise AssertionError(
                        f"kernel divergence: {policy} at {num_flows} flows "
                        f"produced different schedules under the scalar "
                        f"and {kernel} kernels")
            resolved = _resolved_auto_kernel(flow_set, policy)
            for kernel in kernels:
                counters = _instrumented_counters(network, flow_set,
                                                  policy, kernel)
                placements = counters.get("scheduler.placements", 0)
                wall_s = best[kernel]
                timing = {
                    "wall_s": wall_s,
                    "schedulable": results[kernel].schedulable,
                    "placements": int(placements),
                    "slots_scanned":
                        int(counters.get("scheduler.slots_scanned", 0)),
                }
                if kernel == _kernel.KERNEL_AUTO:
                    timing["resolved"] = resolved
                    timing["raw_wall_s"] = wall_s
                    timing["wall_s"] = wall_s = min(wall_s, best[resolved])
                timing["placements_per_s"] = (
                    placements / wall_s if wall_s > 0 else None)
                row[kernel] = timing
            scalar_s = row[_kernel.KERNEL_SCALAR]["wall_s"]
            vector_s = row[_kernel.KERNEL_VECTOR]["wall_s"]
            auto_s = row[_kernel.KERNEL_AUTO]["wall_s"]
            row["speedup"] = scalar_s / vector_s if vector_s > 0 else None
            row["auto_speedup"] = scalar_s / auto_s if auto_s > 0 else None
            row["auto_vs_best"] = (min(scalar_s, vector_s) / auto_s
                                   if auto_s > 0 else None)
            rows.append(row)
    if repetitions >= 2:
        check_auto(rows, tolerance=auto_tolerance)
    return rows


def check_auto(rows: Sequence[Dict],
               tolerance: float = AUTO_TOLERANCE) -> None:
    """Assert the auto kernel never loses a cell.

    Two-part crossover contract, per cell:

    * ``auto <= scalar`` — hard, no tolerance.  Auto's pooled timing
      (see :func:`bench_schedulers`) can only exceed scalar's when the
      resolution picked a vector path that genuinely lost to scalar, so
      any violation is a mis-resolution, not noise: every ``auto_speedup``
      cell in the tracked baseline must be >= 1.0.
    * ``auto`` within ``tolerance`` of ``min(scalar, vector)`` — the
      resolution picked the right side of the crossover (or one
      measurement cannot distinguish; NR's two kernels are
      timing-identical and noise decides which fixed best lands lower).

    A violation means :data:`repro.core.kernel.RA_CROSSOVER_REQUESTS`
    no longer matches the machine's measured crossover.

    Raises:
        AssertionError: Listing every violating cell.
    """
    violations = []
    for row in rows:
        auto = row.get(_kernel.KERNEL_AUTO, {}).get("wall_s")
        scalar_s = row.get(_kernel.KERNEL_SCALAR, {}).get("wall_s")
        vector_s = row.get(_kernel.KERNEL_VECTOR, {}).get("wall_s")
        if auto is None or scalar_s is None or vector_s is None:
            continue
        best = min(scalar_s, vector_s)
        if auto > scalar_s:
            violations.append(
                f"{row['policy']}@{row['num_flows']}: auto "
                f"{1000 * auto:.1f}ms lost to scalar "
                f"{1000 * scalar_s:.1f}ms (auto_speedup "
                f"{scalar_s / auto:.3f} < 1.0 — resolution picked a "
                f"losing kernel)")
        elif auto > best * (1.0 + tolerance):
            violations.append(
                f"{row['policy']}@{row['num_flows']}: auto "
                f"{1000 * auto:.1f}ms vs best {1000 * best:.1f}ms "
                f"({auto / best - 1.0:+.0%} > {tolerance:.0%} tolerance)")
    if violations:
        raise AssertionError(
            "auto kernel slower than the better fixed kernel:\n  "
            + "\n  ".join(violations))


def bench_remediation(flow_counts: Sequence[int], seed: int,
                      repetitions: int) -> List[Dict]:
    """Remediation latency: single-victim warm-start repair vs rebuild.

    For each flow count, builds the RC schedule once, picks the
    deterministic victim link (the smallest link in any shared cell),
    and times both remediation paths best-of-``repetitions``:

    * **repair** — :func:`repro.core.repair.repair_schedule` evicting
      the victim's blast radius and re-placing it against the warm
      busy matrices;
    * **rebuild** — :func:`repro.core.reschedule
      .reschedule_without_reuse_on` re-running the full scheduler
      under a reuse-barrier policy.

    The repaired schedule is audited once per cell (outside the timed
    runs) so a latency win can never mask a correctness loss.
    """
    from repro.core.ra import DEFAULT_RHO_T
    from repro.core.repair import (ChangeSet, repair_schedule,
                                   smallest_reused_link)
    from repro.core.reschedule import reschedule_without_reuse_on
    from repro.experiments.common import make_policy
    from repro.validate.audit import audit_schedule

    network, workloads = _workloads(flow_counts, seed)
    rows: List[Dict] = []
    for num_flows, flow_set in workloads:
        baseline = schedule_workload(network, flow_set, "RC")
        row: Dict = {"num_flows": num_flows, "policy": "RC",
                     "rho_t": DEFAULT_RHO_T}
        if not baseline.schedulable:
            row["skipped"] = "baseline workload unschedulable"
            rows.append(row)
            continue
        victim = smallest_reused_link(baseline.schedule)
        if victim is None:
            row["skipped"] = "no reused cells to repair"
            rows.append(row)
            continue
        row["victim"] = list(victim)
        change = ChangeSet(victims=(victim,))

        repair_s = float("inf")
        outcome = None
        for _ in range(repetitions):
            start = time.perf_counter()
            outcome = repair_schedule(
                baseline.schedule, flow_set, network.reuse, change,
                rho_t=DEFAULT_RHO_T, policy_name="RC")
            repair_s = min(repair_s, time.perf_counter() - start)

        rebuild_s = float("inf")
        for _ in range(repetitions):
            start = time.perf_counter()
            rebuilt = reschedule_without_reuse_on(
                flow_set, network.topology.num_nodes,
                network.num_channels, network.reuse,
                make_policy("RC", DEFAULT_RHO_T), {victim})
            rebuild_s = min(rebuild_s, time.perf_counter() - start)

        row.update({
            "repair": {"wall_s": repair_s,
                       "schedulable": outcome.schedulable,
                       "evicted_cells": outcome.evicted,
                       "blast_seeds": outcome.blast.seeds},
            "rebuild": {"wall_s": rebuild_s,
                        "schedulable": rebuilt.schedulable},
            "speedup": rebuild_s / repair_s if repair_s > 0 else None,
        })
        if outcome.schedulable:
            report = audit_schedule(
                outcome.schedule, network.reuse, DEFAULT_RHO_T,
                flow_set=flow_set, expect_complete=True,
                barred_links={victim})
            if not report.ok:
                raise AssertionError(
                    f"repaired schedule failed audit at {num_flows} "
                    f"flows: {report.summary()}")
        rows.append(row)
    return rows


#: Simulator-bench cells: reliability-style WUSTL workloads (1 s p2p
#: flows on channels 11-14) at three scheduling pressures.
SIMULATOR_FLOW_COUNTS = (20, 50, 80)
QUICK_SIMULATOR_FLOW_COUNTS = (20,)

#: Monte-Carlo repetitions per simulator cell (the reliability
#: experiment's 100, so the tracked numbers speak for the real sweep).
SIMULATOR_REPETITIONS = 100
QUICK_SIMULATOR_REPETITIONS = 10


def _sim_signature(stats) -> tuple:
    """Order-insensitive comparable form of one SimulationStats."""
    def bucket(counters) -> tuple:
        return tuple(sorted(
            (key, counter.attempts, counter.successes)
            for key, counter in counters.items()))

    return (
        tuple(sorted(stats.flow_released.items())),
        tuple(sorted(stats.flow_delivered.items())),
        tuple((bucket(record.reuse), bucket(record.contention_free),
               bucket(record.channels))
              for record in stats.repetitions),
    )


def bench_simulator(flow_counts: Sequence[int], seed: int,
                    sim_repetitions: int, timed_repetitions: int) -> Dict:
    """Slot vs event vs batched simulator wall time per flow count.

    Each cell builds one RC schedule on the WUSTL reliability setup
    (1 s peer-to-peer flows, channels 11-14) and executes
    ``sim_repetitions`` Monte-Carlo repetitions three ways:

    * **slot** — the slot-driven scalar oracle;
    * **event** — the event-driven engine forced to one repetition per
      draw chunk (the event walk without cross-repetition batching);
    * **batched** — the event engine's default memory-bounded chunking,
      the path ``engine="auto"`` takes at experiment repetition counts.

    All three are bit-identical by construction (the fuzz harness
    asserts it per case); here the statistics of the timed runs are
    cross-checked once per cell so a timing win can never mask a
    divergence.  Timings are best-of-``timed_repetitions``,
    interleaved like the scheduler cells.
    """
    from repro.experiments.reliability import build_reliability_flow_set
    from repro.simulator.engine import SimulationConfig, TschSimulator
    from repro.testbeds import make_wustl

    topology, environment = make_wustl(seed)
    network = prepare_network(topology, channels=(11, 12, 13, 14))
    section: Dict = {"testbed": "wustl", "channels": [11, 12, 13, 14],
                     "policy": "RC", "sim_repetitions": sim_repetitions,
                     "cells": []}
    for num_flows in flow_counts:
        rng = np.random.default_rng(seed + num_flows)
        flow_set = build_reliability_flow_set(
            network, rng, flow_mix=((1.0, num_flows),))
        result = schedule_workload(network, flow_set, "RC")
        cell: Dict = {"num_flows": num_flows}
        if not result.schedulable:
            cell["skipped"] = "workload unschedulable"
            section["cells"].append(cell)
            continue
        simulator = TschSimulator(
            schedule=result.schedule, flow_set=flow_set,
            environment=environment,
            channel_map=network.topology.channel_map,
            config=SimulationConfig(seed=seed + 4000 + num_flows))
        modes = {"slot": dict(engine="slot"),
                 "event": dict(engine="event", chunk_reps=1),
                 "batched": dict(engine="event")}
        best = {mode: float("inf") for mode in modes}
        stats = {}
        for _ in range(timed_repetitions):
            for mode, kwargs in modes.items():
                start = time.perf_counter()
                stats[mode] = simulator.run(sim_repetitions, **kwargs)
                best[mode] = min(best[mode],
                                 time.perf_counter() - start)
        reference = _sim_signature(stats["slot"])
        for mode in ("event", "batched"):
            if _sim_signature(stats[mode]) != reference:
                raise AssertionError(
                    f"simulator engine divergence at {num_flows} flows: "
                    f"{mode} statistics differ from the slot oracle")
        cell.update({
            "slot": {"wall_s": best["slot"]},
            "event": {"wall_s": best["event"]},
            "batched": {"wall_s": best["batched"]},
            "event_speedup": (best["slot"] / best["event"]
                              if best["event"] > 0 else None),
            "batched_speedup": (best["slot"] / best["batched"]
                                if best["batched"] > 0 else None),
        })
        section["cells"].append(cell)
    return section


def bench_sweep_workers(seed: int, quick: bool,
                        worker_counts: Sequence[int] = (1, 4)) -> Dict:
    """Time one small sweep at several worker counts; verify invariance."""
    from repro.testbeds import make_indriya

    topology, _ = make_indriya()
    values = [4, 5] if quick else [3, 4, 5]
    num_flow_sets = 2 if quick else 6
    timings: Dict[str, float] = {}
    reference = None
    for workers in worker_counts:
        start = time.perf_counter()
        result = run_sweep(topology, TrafficType.CENTRALIZED, "channels",
                           values, fixed_flows=20,
                           num_flow_sets=num_flow_sets, seed=seed,
                           workers=workers)
        timings[str(workers)] = time.perf_counter() - start
        outcomes = [(o.x, o.set_index, o.policy, o.schedulable)
                    for o in result.outcomes]
        if reference is None:
            reference = outcomes
        elif outcomes != reference:
            raise AssertionError(
                f"sweep outcomes at workers={workers} differ from "
                f"workers={worker_counts[0]}")
    base = timings[str(worker_counts[0])]
    return {
        "vary": "channels", "values": values,
        "num_flow_sets": num_flow_sets, "fixed_flows": 20,
        "wall_s_by_workers": timings,
        "speedup_vs_serial": {
            w: (base / t if t > 0 else None)
            for w, t in timings.items()},
        "outcomes_identical": True,
    }


#: Service-bench fleet sizes (concurrent networks, closed loop).
SERVICE_FLEETS = (2, 8, 32)
QUICK_SERVICE_FLEETS = (2,)

#: Closed-loop requests per network in the service bench.
SERVICE_REQUESTS_PER_NETWORK = 12
QUICK_SERVICE_REQUESTS_PER_NETWORK = 6


def _service_client(socket_path: str):
    import socket as socketlib

    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.settimeout(120.0)
    sock.connect(socket_path)
    return sock, sock.makefile("rwb")


def _service_roundtrip(stream, payload: Dict) -> Dict:
    stream.write(json.dumps(payload).encode("utf-8") + b"\n")
    stream.flush()
    return json.loads(stream.readline())


def bench_service(seed: int, quick: bool) -> Dict:
    """Throughput / latency of the scheduling service under load.

    Starts a real ``repro serve`` subprocess (2 workers, unix socket),
    measures a cold-vs-warm single-request pair on a fresh network, and
    runs the closed-loop load generator at several fleet sizes.  The
    workload (30 flows per network) carries reused cells, so the
    reschedule share of the mix exercises the incremental repair path.
    """
    import subprocess
    import sys
    import tempfile

    import repro
    from repro.service.loadgen import LoadgenOptions, run_loadgen

    fleets = QUICK_SERVICE_FLEETS if quick else SERVICE_FLEETS
    per_network = (QUICK_SERVICE_REQUESTS_PER_NETWORK if quick
                   else SERVICE_REQUESTS_PER_NETWORK)
    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    section: Dict = {"workers": 2, "flows_per_network": 30,
                     "mix": 0.3, "loops": []}
    with tempfile.TemporaryDirectory() as tmp:
        socket_path = os.path.join(tmp, "bench.sock")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path, "--service-workers", "2",
             "--no-ledger"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 60
            while not os.path.exists(socket_path):
                if process.poll() is not None:
                    raise AssertionError("bench service exited early")
                if time.time() > deadline:
                    raise AssertionError("bench service failed to start")
                time.sleep(0.05)

            # Cold vs warm: same request twice on a fresh network; the
            # second is a pure artifact-cache hit.
            sock, stream = _service_client(socket_path)
            try:
                pair = []
                for index in range(2):
                    start = time.perf_counter()
                    response = _service_roundtrip(stream, {
                        "id": index, "verb": "schedule",
                        "network": "bench-warmth",
                        "config": {"seed": seed, "flows": 30}})
                    pair.append(
                        (time.perf_counter() - start) * 1e3)
                    if not response.get("ok"):
                        raise AssertionError(
                            f"bench service error: {response}")
                verdict = response["result"]["cache"]["schedule"]
                if verdict != "hit":
                    raise AssertionError(
                        "second identical request missed the cache")
            finally:
                stream.close()
                sock.close()
            section["cold_ms"] = round(pair[0], 3)
            section["warm_ms"] = round(pair[1], 3)
            section["warm_speedup"] = (round(pair[0] / pair[1], 2)
                                       if pair[1] > 0 else None)

            for networks in fleets:
                report = run_loadgen(LoadgenOptions(
                    socket_path=socket_path,
                    requests=networks * per_network,
                    networks=networks, flows=30, seed=seed,
                    mix=0.3))
                if report["errors"]:
                    raise AssertionError(
                        f"bench loadgen saw {report['errors']} error(s) "
                        f"at {networks} networks: "
                        f"{report['error_samples']}")
                section["loops"].append({
                    "networks": networks,
                    "requests": report["requests"],
                    "wall_s": report["wall_s"],
                    "rps": report["rps"],
                    "p50_ms": report["latency_ms"]["p50"],
                    "p99_ms": report["latency_ms"]["p99"],
                    "errors": report["errors"],
                    "reschedule_modes": report["reschedule_modes"],
                    "fallbacks":
                        report["service"]["repair_fallbacks"],
                })
        finally:
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    process.kill()
                    process.wait(timeout=5)
    return section


def run_bench(out: str = DEFAULT_OUT, *, quick: bool = False,
              seed: int = 1, repetitions: Optional[int] = None) -> Dict:
    """Run the full benchmark and write the JSON report.

    Args:
        out: Report path (``-`` skips writing).
        quick: CI smoke mode — one small workload, one repetition.
        seed: Workload seed (fixed so runs are comparable over time).
        repetitions: Timed repetitions per configuration (best-of);
            defaults to 1 in quick mode and 3 otherwise.

    Returns:
        The report dict.
    """
    if repetitions is None:
        repetitions = 1 if quick else 3
    flow_counts = QUICK_FLOW_COUNTS if quick else FULL_FLOW_COUNTS
    report = {
        "benchmark": "repro.bench",
        "mode": "quick" if quick else "full",
        "seed": seed,
        "repetitions": repetitions,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
        "workload": {
            "testbed": "indriya", "channels": 5,
            "traffic": "centralized", "period_range": [0, 4],
            "flow_counts": list(flow_counts),
        },
        "schedulers": bench_schedulers(
            flow_counts, seed, repetitions,
            auto_tolerance=(QUICK_AUTO_TOLERANCE if quick
                            else AUTO_TOLERANCE)),
        "remediation": bench_remediation(
            QUICK_REMEDIATION_FLOW_COUNTS if quick
            else REMEDIATION_FLOW_COUNTS, seed, repetitions),
        "simulator": bench_simulator(
            QUICK_SIMULATOR_FLOW_COUNTS if quick
            else SIMULATOR_FLOW_COUNTS, seed,
            QUICK_SIMULATOR_REPETITIONS if quick
            else SIMULATOR_REPETITIONS, repetitions),
        "sweep_workers": bench_sweep_workers(seed, quick),
        "service": bench_service(seed, quick),
    }
    speedups = {(row["num_flows"], row["policy"]): row["speedup"]
                for row in report["schedulers"]}
    rc_speedups = [v for (_, policy), v in speedups.items()
                   if policy == "RC" and v is not None]
    auto_vs_best = [row["auto_vs_best"] for row in report["schedulers"]
                    if row.get("auto_vs_best") is not None]
    repair_speedups = {str(row["num_flows"]): row["speedup"]
                       for row in report["remediation"]
                       if row.get("speedup") is not None}
    sim_speedups = {str(cell["num_flows"]): cell["batched_speedup"]
                    for cell in report["simulator"]["cells"]
                    if cell.get("batched_speedup") is not None}
    report["headline"] = {
        "rc_max_speedup": max(rc_speedups) if rc_speedups else None,
        "rc_speedups_by_flows": {
            str(flows): v for (flows, policy), v in sorted(speedups.items())
            if policy == "RC"},
        "auto_min_vs_best": min(auto_vs_best) if auto_vs_best else None,
        "repair_speedups_by_flows": repair_speedups,
        "repair_max_speedup": (max(repair_speedups.values())
                               if repair_speedups else None),
        "sim_batched_speedups_by_flows": sim_speedups,
        "sim_batched_max_speedup": (max(sim_speedups.values())
                                    if sim_speedups else None),
        "service_warm_speedup": report["service"].get("warm_speedup"),
        "service_rps_by_networks": {
            str(loop["networks"]): loop["rps"]
            for loop in report["service"]["loops"]},
    }
    if out != "-":
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return report


def _history_cell(row: Dict) -> Dict:
    """Compact one scheduler-bench row for the history file.

    The auto-kernel keys are only present when the row measured auto —
    pre-auto history records and auto-era ones then share one schema
    with optional extensions instead of nulled-out columns.
    """
    cell = {"num_flows": row["num_flows"], "policy": row["policy"],
            "scalar_s": row[_kernel.KERNEL_SCALAR]["wall_s"],
            "vector_s": row[_kernel.KERNEL_VECTOR]["wall_s"],
            "speedup": row["speedup"]}
    auto = row.get(_kernel.KERNEL_AUTO)
    if auto is not None:
        cell["auto_s"] = auto["wall_s"]
        cell["auto_vs_best"] = row.get("auto_vs_best")
    return cell


def append_history(report: Dict, path: str = DEFAULT_HISTORY) -> Dict:
    """Append one compact record of a bench run to the history file.

    The tracked ``BENCH_schedulers.json`` holds only the *latest* full
    report; the history keeps the trajectory — one JSONL record per run
    with the per-cell wall times and the headline speedups — so
    regressions can be dated, not just detected.

    Returns:
        The appended record.
    """
    from repro.io import append_jsonl

    record = {
        "kind": "bench",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": report["mode"],
        "seed": report["seed"],
        "repetitions": report["repetitions"],
        "environment": report["environment"],
        "cells": [_history_cell(row) for row in report["schedulers"]],
        "headline": report["headline"],
    }
    remediation = [
        {"num_flows": row["num_flows"],
         "repair_s": row["repair"]["wall_s"],
         "rebuild_s": row["rebuild"]["wall_s"],
         "evicted_cells": row["repair"]["evicted_cells"],
         "speedup": row["speedup"]}
        for row in report.get("remediation", []) if "repair" in row]
    if remediation:
        record["remediation"] = remediation
    simulator = report.get("simulator")
    if simulator and simulator.get("cells"):
        record["simulator"] = {
            "sim_repetitions": simulator["sim_repetitions"],
            "cells": [{"num_flows": cell["num_flows"],
                       "slot_s": cell["slot"]["wall_s"],
                       "event_s": cell["event"]["wall_s"],
                       "batched_s": cell["batched"]["wall_s"],
                       "batched_speedup": cell["batched_speedup"]}
                      for cell in simulator["cells"]
                      if "slot" in cell],
        }
    service = report.get("service")
    if service and service.get("loops"):
        record["service"] = {
            "cold_ms": service.get("cold_ms"),
            "warm_ms": service.get("warm_ms"),
            "loops": [{"networks": loop["networks"],
                       "rps": loop["rps"],
                       "p50_ms": loop["p50_ms"],
                       "p99_ms": loop["p99_ms"]}
                      for loop in service["loops"]],
        }
    append_jsonl([record], path)
    return record


def compare_bench(report: Dict, baseline: Dict,
                  threshold: float = REGRESSION_THRESHOLD) -> List[str]:
    """Wall-time regressions of a report against a baseline report.

    Cells are matched by ``(num_flows, policy, kernel)``; cells present
    in only one report are ignored (a quick run checked against a full
    baseline compares exactly the sizes both measured).  A cell
    regresses when its wall time exceeds the baseline's by more than
    ``threshold`` (relative).

    Returns:
        One line per regression (empty = no regression).  A disjoint
        cell set returns a single diagnostic line — silently comparing
        nothing must not pass as "no regression".
    """
    def cells(rep: Dict) -> Dict[tuple, float]:
        out: Dict[tuple, float] = {}
        for row in rep.get("schedulers", []):
            for kernel in (_kernel.KERNEL_SCALAR, _kernel.KERNEL_VECTOR,
                           _kernel.KERNEL_AUTO):
                timing = row.get(kernel)
                if timing and timing.get("wall_s") is not None:
                    out[(row["num_flows"], row["policy"], kernel)] = \
                        timing["wall_s"]
        for row in rep.get("remediation", []):
            for path in ("repair", "rebuild"):
                timing = row.get(path)
                if timing and timing.get("wall_s") is not None:
                    out[(row["num_flows"], "remediation", path)] = \
                        timing["wall_s"]
        simulator = rep.get("simulator", {})
        sim_reps = simulator.get("sim_repetitions")
        for cell in simulator.get("cells", []):
            for engine in ("slot", "event", "batched"):
                timing = cell.get(engine)
                if timing and timing.get("wall_s") is not None:
                    # Repetition count in the key: a quick report's
                    # 10-rep cell must not gate against the full
                    # baseline's 100-rep cell of the same size.
                    out[(cell["num_flows"], "simulator",
                         f"{engine}x{sim_reps}")] = timing["wall_s"]
        for loop in rep.get("service", {}).get("loops", []):
            # Only p50 is gated (see SERVICE_REGRESSION_THRESHOLD);
            # keep it in seconds for uniform formatting.
            if loop.get("p50_ms") is not None:
                out[(loop["networks"], "service", "p50")] = \
                    loop["p50_ms"] / 1e3
        return out

    current, base = cells(report), cells(baseline)
    shared = sorted(set(current) & set(base), key=str)
    if not shared:
        return ["no comparable (num_flows, policy, kernel) cells between "
                "report and baseline"]
    regressions: List[str] = []
    for key in shared:
        num_flows, policy, kernel = key
        before, after = base[key], current[key]
        if before <= 0:
            continue
        gate = (max(threshold, SERVICE_REGRESSION_THRESHOLD)
                if policy == "service" else threshold)
        ratio = after / before - 1.0
        if ratio > gate:
            regressions.append(
                f"REGRESSION {policy}@{num_flows} [{kernel}]: "
                f"{1000 * before:.1f}ms -> {1000 * after:.1f}ms "
                f"({ratio:+.0%}, threshold {gate:.0%})")
    return regressions


def format_bench(report: Dict) -> str:
    """Human-readable summary of a benchmark report."""
    lines = [
        f"repro bench ({report['mode']}, seed={report['seed']}, "
        f"best of {report['repetitions']}, "
        f"cpus={report['environment']['cpu_count']})",
        f"{'flows':>6} {'policy':>7} {'scalar':>10} {'vector':>10} "
        f"{'auto':>10} {'speedup':>8} {'placements':>11} {'slots/plc':>10}",
    ]
    for row in report["schedulers"]:
        scalar = row["scalar"]
        vector = row["vector"]
        auto = row.get("auto")
        auto_text = (f"{1000 * auto['wall_s']:>8.1f}ms" if auto
                     else f"{'-':>10}")
        scanned = (scalar["slots_scanned"] / scalar["placements"]
                   if scalar["placements"] else 0.0)
        lines.append(
            f"{row['num_flows']:>6} {row['policy']:>7} "
            f"{1000 * scalar['wall_s']:>8.1f}ms {1000 * vector['wall_s']:>8.1f}ms "
            f"{auto_text} "
            f"{row['speedup']:>7.2f}x {scalar['placements']:>11} "
            f"{scanned:>10.2f}")
    remediation = [row for row in report.get("remediation", [])
                   if "repair" in row]
    if remediation:
        lines.append(f"{'flows':>6} {'victim':>9} {'evicted':>8} "
                     f"{'repair':>10} {'rebuild':>10} {'speedup':>8}")
        for row in remediation:
            lines.append(
                f"{row['num_flows']:>6} "
                f"{'-'.join(map(str, row['victim'])):>9} "
                f"{row['repair']['evicted_cells']:>8} "
                f"{1000 * row['repair']['wall_s']:>8.1f}ms "
                f"{1000 * row['rebuild']['wall_s']:>8.1f}ms "
                f"{row['speedup']:>7.2f}x")
    simulator = report.get("simulator")
    if simulator and simulator.get("cells"):
        lines.append(
            f"simulator ({simulator['sim_repetitions']} reps, "
            f"{simulator['policy']} schedules, {simulator['testbed']}):")
        lines.append(f"{'flows':>6} {'slot':>10} {'event':>10} "
                     f"{'batched':>10} {'speedup':>8}")
        for cell in simulator["cells"]:
            if "skipped" in cell:
                lines.append(f"{cell['num_flows']:>6} "
                             f"skipped: {cell['skipped']}")
                continue
            lines.append(
                f"{cell['num_flows']:>6} "
                f"{1000 * cell['slot']['wall_s']:>8.1f}ms "
                f"{1000 * cell['event']['wall_s']:>8.1f}ms "
                f"{1000 * cell['batched']['wall_s']:>8.1f}ms "
                f"{cell['batched_speedup']:>7.2f}x")
    sweep = report["sweep_workers"]
    walls = "  ".join(f"workers={w}: {t:.2f}s"
                      for w, t in sweep["wall_s_by_workers"].items())
    lines.append(f"sweep ({len(sweep['values'])} points x "
                 f"{sweep['num_flow_sets']} sets): {walls} "
                 f"(outcomes identical: {sweep['outcomes_identical']})")
    service = report.get("service")
    if service and service.get("loops"):
        lines.append(
            f"service: cold {service['cold_ms']:.1f}ms -> warm "
            f"{service['warm_ms']:.1f}ms "
            f"({service['warm_speedup']:.0f}x)")
        lines.append(f"{'networks':>9} {'requests':>9} {'req/s':>8} "
                     f"{'p50':>9} {'p99':>9} {'fallbacks':>10}")
        for loop in service["loops"]:
            lines.append(
                f"{loop['networks']:>9} {loop['requests']:>9} "
                f"{loop['rps']:>8.1f} {loop['p50_ms']:>7.1f}ms "
                f"{loop['p99_ms']:>7.1f}ms {loop['fallbacks']:>10}")
    headline = report["headline"]
    if headline["rc_max_speedup"] is not None:
        lines.append(f"headline: RC vector kernel up to "
                     f"{headline['rc_max_speedup']:.2f}x over scalar")
    if headline.get("auto_min_vs_best") is not None:
        lines.append(f"headline: auto kernel within "
                     f"{max(0.0, 1.0 - headline['auto_min_vs_best']):.0%} "
                     f"of the best fixed kernel in every cell")
    if headline.get("repair_max_speedup") is not None:
        lines.append(f"headline: single-victim repair up to "
                     f"{headline['repair_max_speedup']:.1f}x faster than "
                     f"the full rebuild")
    if headline.get("sim_batched_max_speedup") is not None:
        lines.append(f"headline: batched event simulator up to "
                     f"{headline['sim_batched_max_speedup']:.1f}x faster "
                     f"than the slot oracle")
    if headline.get("service_rps_by_networks"):
        best = max(v for v in
                   headline["service_rps_by_networks"].values()
                   if v is not None)
        lines.append(f"headline: service sustains up to {best:.0f} req/s "
                     f"closed-loop (warm cache "
                     f"{headline.get('service_warm_speedup', 0):.0f}x "
                     f"faster than cold compile)")
    return "\n".join(lines)
