"""Core contribution: schedule structure, reuse constraints, laxity, and
the NR / RA / RC fixed-priority schedulers."""

from repro.core.constraints import (
    NO_REUSE,
    conflicts_in_slot,
    feasible_offsets,
    offset_satisfies_channel_constraint,
    placement_is_valid,
    validate_schedule,
)
from repro.core.laxity import calculate_laxity, conflict_slots_for
from repro.core.nr import NoReusePolicy
from repro.core.ra import AggressiveReusePolicy, DEFAULT_RHO_T
from repro.core.reschedule import (
    ReuseBarrierPolicy,
    links_sharing_cells_with,
    reschedule_without_reuse_on,
)
from repro.core.rc import (
    ConservativeReusePolicy,
    RHO_RESET_FLOW,
    RHO_RESET_TRANSMISSION,
)
from repro.core.schedule import Schedule, ScheduledTransmission
from repro.core.scheduler import (
    FixedPriorityScheduler,
    OFFSET_FIRST,
    OFFSET_LEAST_LOADED,
    PlacementPolicy,
    SchedulingResult,
    find_slot,
)
from repro.core.transmissions import (
    ATTEMPTS_PER_LINK,
    TransmissionRequest,
    expand_instance,
)

__all__ = [
    "ATTEMPTS_PER_LINK",
    "AggressiveReusePolicy",
    "ConservativeReusePolicy",
    "DEFAULT_RHO_T",
    "FixedPriorityScheduler",
    "NO_REUSE",
    "NoReusePolicy",
    "OFFSET_FIRST",
    "OFFSET_LEAST_LOADED",
    "PlacementPolicy",
    "RHO_RESET_FLOW",
    "ReuseBarrierPolicy",
    "links_sharing_cells_with",
    "reschedule_without_reuse_on",
    "RHO_RESET_TRANSMISSION",
    "Schedule",
    "ScheduledTransmission",
    "SchedulingResult",
    "TransmissionRequest",
    "calculate_laxity",
    "conflict_slots_for",
    "conflicts_in_slot",
    "expand_instance",
    "feasible_offsets",
    "find_slot",
    "offset_satisfies_channel_constraint",
    "placement_is_valid",
    "validate_schedule",
]
