"""Core contribution: schedule structure, reuse constraints, laxity, and
the NR / RA / RC fixed-priority schedulers."""

from repro.core.constraints import (
    NO_REUSE,
    conflicts_in_slot,
    feasible_offsets,
    feasible_offsets_scalar,
    offset_satisfies_channel_constraint,
    placement_is_valid,
    validate_schedule,
)
from repro.core.kernel import (
    KERNEL_AUTO,
    KERNEL_SCALAR,
    KERNEL_VECTOR,
    active_kernel,
    best_reuse_distance,
    kernel_mode,
    min_reuse_distance,
    prepare_links,
    resolve_kernel,
    set_kernel,
)
from repro.core.laxity import (
    calculate_laxity,
    calculate_laxity_scalar,
    conflict_slots_for,
)
from repro.core.nr import NoReusePolicy
from repro.core.ra import AggressiveReusePolicy, DEFAULT_RHO_T
from repro.core.reschedule import (
    ReuseBarrierPolicy,
    links_sharing_cells_with,
    reschedule_without_reuse_on,
)
from repro.core.rc import (
    ConservativeReusePolicy,
    RHO_RESET_FLOW,
    RHO_RESET_TRANSMISSION,
)
from repro.core.schedule import Schedule, ScheduledTransmission
from repro.core.scheduler import (
    FixedPriorityScheduler,
    OFFSET_FIRST,
    OFFSET_LEAST_LOADED,
    PlacementPolicy,
    SchedulingResult,
    find_slot,
)
from repro.core.transmissions import (
    ATTEMPTS_PER_LINK,
    RequestWindow,
    TransmissionRequest,
    expand_instance,
)

__all__ = [
    "ATTEMPTS_PER_LINK",
    "AggressiveReusePolicy",
    "ConservativeReusePolicy",
    "DEFAULT_RHO_T",
    "FixedPriorityScheduler",
    "KERNEL_AUTO",
    "KERNEL_SCALAR",
    "KERNEL_VECTOR",
    "NO_REUSE",
    "NoReusePolicy",
    "OFFSET_FIRST",
    "OFFSET_LEAST_LOADED",
    "PlacementPolicy",
    "RHO_RESET_FLOW",
    "RequestWindow",
    "ReuseBarrierPolicy",
    "links_sharing_cells_with",
    "reschedule_without_reuse_on",
    "RHO_RESET_TRANSMISSION",
    "Schedule",
    "ScheduledTransmission",
    "SchedulingResult",
    "TransmissionRequest",
    "active_kernel",
    "best_reuse_distance",
    "calculate_laxity",
    "calculate_laxity_scalar",
    "conflict_slots_for",
    "conflicts_in_slot",
    "expand_instance",
    "feasible_offsets",
    "feasible_offsets_scalar",
    "find_slot",
    "kernel_mode",
    "min_reuse_distance",
    "resolve_kernel",
    "set_kernel",
    "offset_satisfies_channel_constraint",
    "placement_is_valid",
    "prepare_links",
    "validate_schedule",
]
