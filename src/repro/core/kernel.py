"""Vectorized placement kernel (channel-constraint evaluation).

The paper's Section V-A channel constraint asks, for a candidate
transmission ``(u, v)`` and a cell ``(s, c)`` holding occupants
``{(x_k, y_k)}``: is every ``hops[u, y_k]`` and every ``hops[x_k, v]``
at least ρ?  The scalar reference implementation in
:mod:`repro.core.constraints` answers that one slot, one offset, one
occupant at a time; this module answers it for *all* offsets of *all*
candidate slots in a handful of NumPy operations against the schedule's
incremental occupancy arrays (see :meth:`repro.core.schedule.Schedule
.occupancy`) and the reuse graph's precomputed hop matrix.

The central quantity is the **min-reuse-distance** of a cell for a
candidate ``(u, v)``::

    dist[s, c] = min over occupants (x, y) of min(hops[u, y], hops[x, v])

with :data:`INFINITE_DISTANCE` for empty cells and unreachable pairs.
A cell satisfies the channel constraint at hop count ρ iff
``dist[s, c] >= rho`` — so one distance array answers the constraint
for *every* finite ρ by re-thresholding.  RC exploits exactly that: its
Algorithm-1 loop retries the same request at descending ρ against the
same array.

Workloads reuse links heavily — every retransmission attempt, every
release instance, and every route sharing a hop asks about the same
``(u, v)`` — so the kernel maintains the distance arrays *incrementally*
per distinct link on the schedule (:class:`_LinkDistanceState`): adding
an occupant ``(x, y)`` to cell ``(s, c)`` lowers ``dist[s, c]`` of every
tracked link by one vectorized minimum, and queries return zero-copy
views.  ``best[s] = max_c dist[s, c]`` rides along so "does *any*
offset of slot ``s`` admit ρ?" is a single comparison.

Kernel selection is a module-level mode so experiments and benchmarks
can compare the two implementations::

    with kernel_mode(KERNEL_SCALAR):
        result = scheduler.run(flow_set)   # pre-vectorization hot path
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.schedule import Schedule
    from repro.network.graphs import ChannelReuseGraph

#: Sentinel hop distance meaning "no constraint": empty cells and
#: unreachable node pairs.  Large enough to exceed any real hop count,
#: small enough that int32 arithmetic cannot overflow.
INFINITE_DISTANCE = np.int32(2 ** 30)

#: The vectorized kernel (default).
KERNEL_VECTOR = "vector"
#: The scalar reference implementation (pre-vectorization hot path).
KERNEL_SCALAR = "scalar"
#: Crossover-aware selection: the scheduler resolves auto to a concrete
#: kernel per run from (policy, workload size) via :func:`resolve_kernel`.
KERNEL_AUTO = "auto"

#: Below this many transmission requests, RA runs faster under the
#: scalar kernel: RA places each request once at a fixed ρ, so the
#: vector kernel's per-``add`` incremental distance maintenance never
#: amortizes the way RC's descending-ρ retries do.  Interleaved
#: median-of-7 re-measurement (Indriya, 5 channels, centralized)
#: pinned the vector/scalar RA ratio at 1.26x @ 2.5k requests,
#: 1.07x @ 5.5k, 1.12x @ 7.9k, and 1.24x @ 10.7k — scalar wins at
#: every size the testbeds can actually schedule and the gap *widens*
#: past ~6k, so no crossover is in reach; the original 16k threshold
#: sat on an extrapolation the new data refutes.  The threshold now
#: sits far above any schedulable workload, making auto resolve RA to
#: scalar everywhere it has been measured while preserving the
#: request-count escape hatch should a future kernel change flip the
#: trend.  RC is the opposite story — vector wins 2.2-3.9x at every
#: measured size, widening with load — and NR never queries reuse
#: distances at all (ρ=∞ reduces to an empty-cell scan; the engine
#: skips distance maintenance for it under either kernel), so auto
#: resolves NR to scalar: the two are within noise and scalar is the
#: path with nothing vectorized left to pay for.
RA_CROSSOVER_REQUESTS = 32_000

_ACTIVE = KERNEL_VECTOR


def active_kernel() -> str:
    """The kernel mode currently in effect (possibly :data:`KERNEL_AUTO`)."""
    return _ACTIVE


def set_kernel(mode: str) -> None:
    """Select the placement kernel (:data:`KERNEL_VECTOR`,
    :data:`KERNEL_SCALAR`, or :data:`KERNEL_AUTO`) process-wide."""
    global _ACTIVE
    if mode not in (KERNEL_VECTOR, KERNEL_SCALAR, KERNEL_AUTO):
        raise ValueError(f"unknown kernel mode: {mode!r}")
    _ACTIVE = mode


def resolve_kernel(policy_name: str, num_requests: int) -> str:
    """The concrete kernel a scheduler run should execute under.

    When the active mode is a concrete kernel it wins unchanged; under
    :data:`KERNEL_AUTO` the choice is made per (policy, workload size):

    * ``RC`` → vector (it re-thresholds the same distance rows across
      its ρ fallbacks and wins at every measured size);
    * ``RA`` at or above :data:`RA_CROSSOVER_REQUESTS` requests →
      vector; below, scalar (the measured crossover wart: single-shot
      fixed-ρ placement does not amortize the incremental distance
      stacks);
    * ``NR`` → scalar (its placement never queries reuse distances —
      the engine skips distance maintenance for it under either kernel
      — so the kernels are timing-indistinguishable and scalar is the
      do-nothing choice).

    The scheduler engine resolves auto *before* its run and scopes the
    concrete mode with :func:`kernel_mode`, so inner branch points only
    ever observe ``scalar`` or ``vector``.  Code querying distances
    outside an engine run under auto falls through to the vector path.
    """
    if _ACTIVE != KERNEL_AUTO:
        return _ACTIVE
    if policy_name == "RC":
        return KERNEL_VECTOR
    if policy_name == "RA" and num_requests >= RA_CROSSOVER_REQUESTS:
        return KERNEL_VECTOR
    return KERNEL_SCALAR


@contextmanager
def kernel_mode(mode: str) -> Iterator[None]:
    """Scope a kernel selection to a ``with`` block."""
    previous = _ACTIVE
    set_kernel(mode)
    try:
        yield
    finally:
        set_kernel(previous)


class _LinkDistanceState:
    """Per-schedule incremental distance stacks, one lane per link.

    Attributes (``count`` lanes are live):
        hops: The reuse graph's effective hop matrix (int32, unreachable
            mapped to :data:`INFINITE_DISTANCE`).
        index: ``(sender, receiver) -> lane``.
        senders / receivers: Per-lane link endpoints, for the vectorized
            all-lanes update on :meth:`repro.core.schedule.Schedule.add`.
        dist: ``(num_slots, num_offsets, lanes)`` min-reuse distances.
            Lanes-last keeps the per-``add`` touched block — one cell
            across all links — contiguous; queries slice one strided
            lane, which is the cheaper side to penalize.
        best: ``(num_slots, lanes)`` per-slot maxima of ``dist`` over
            offsets — the most permissive offset of each slot.
    """

    __slots__ = ("graph", "hops", "index", "senders", "receivers",
                 "dist", "best", "count", "candidates")

    _INITIAL_LANES = 8

    def __init__(self, schedule: "Schedule",
                 reuse_graph: "ChannelReuseGraph"):
        self.graph = reuse_graph
        self.hops = reuse_graph.effective_hops()
        self.index: dict = {}
        lanes = self._INITIAL_LANES
        self.senders = np.zeros(lanes, dtype=np.intp)
        self.receivers = np.zeros(lanes, dtype=np.intp)
        self.dist = np.full(
            (schedule.num_slots, schedule.num_offsets, lanes),
            INFINITE_DISTANCE, dtype=np.int32)
        self.best = np.full((schedule.num_slots, lanes),
                            INFINITE_DISTANCE, dtype=np.int32)
        self.count = 0
        # Occupants repeat (retransmissions, releases, shared route
        # hops): cache each occupant link's all-lanes candidate vector.
        # Keyed vectors are count-length; adding a lane invalidates.
        self.candidates: dict = {}

    def clone(self) -> "_LinkDistanceState":
        """An independent copy for :meth:`repro.core.schedule.Schedule
        .clone`: lane arrays are copied, the graph and its hop matrix
        (both read-only) are shared."""
        dup = _LinkDistanceState.__new__(_LinkDistanceState)
        dup.graph = self.graph
        dup.hops = self.hops
        dup.index = dict(self.index)
        dup.senders = self.senders.copy()
        dup.receivers = self.receivers.copy()
        dup.dist = self.dist.copy()
        dup.best = self.best.copy()
        dup.count = self.count
        # Cached candidate vectors are never mutated in place, so the
        # clone may keep serving them.
        dup.candidates = dict(self.candidates)
        return dup

    def _grow(self, needed: int) -> None:
        lanes = max(needed, 2 * self.dist.shape[2])
        for name in ("senders", "receivers"):
            old = getattr(self, name)
            new = np.zeros(lanes, dtype=old.dtype)
            new[:old.shape[0]] = old
            setattr(self, name, new)
        for name in ("dist", "best"):
            old = getattr(self, name)
            new = np.full(old.shape[:-1] + (lanes,), INFINITE_DISTANCE,
                          dtype=np.int32)
            new[..., :old.shape[-1]] = old
            setattr(self, name, new)

    def add_link(self, schedule: "Schedule", sender: int, receiver: int
                 ) -> int:
        """Start tracking a link: one full pass over current occupancy."""
        lane = self.count
        if lane >= self.dist.shape[2]:
            self._grow(lane + 1)
        counts, occ_senders, occ_receivers = schedule.occupancy()
        capacity = occ_senders.shape[2]
        if capacity and counts.any():
            pair = np.minimum(self.hops[sender, occ_receivers],
                              self.hops[occ_senders, receiver])
            occupied = np.arange(capacity) < counts[..., None]
            dist = np.where(occupied, pair, INFINITE_DISTANCE).min(axis=2)
            self.dist[:, :, lane] = dist
            self.best[:, lane] = dist.max(axis=1)
        # else: fresh lanes are already INFINITE_DISTANCE everywhere.
        self.senders[lane] = sender
        self.receivers[lane] = receiver
        self.index[(sender, receiver)] = lane
        self.count = lane + 1
        self.candidates.clear()
        return lane

    def occupant_candidates(self, x: int, y: int) -> np.ndarray:
        """Per-lane distance bound a new occupant ``(x, y)`` imposes:
        ``min(hops[u, y], hops[x, v])`` for every tracked ``(u, v)``."""
        cached = self.candidates.get((x, y))
        if cached is None:
            n = self.count
            cached = np.minimum(self.hops[self.senders[:n], y],
                                self.hops[x, self.receivers[:n]])
            self.candidates[(x, y)] = cached
        return cached


def _link_row(schedule: "Schedule", reuse_graph: "ChannelReuseGraph",
              sender: int, receiver: int) -> tuple:
    """The schedule's distance state and the lane tracking a link."""
    state = schedule._link_state
    if state is None or state.graph is not reuse_graph:
        state = _LinkDistanceState(schedule, reuse_graph)
        schedule._link_state = state
    lane = state.index.get((sender, receiver))
    if lane is None:
        lane = state.add_link(schedule, sender, receiver)
    return state, lane


def prepare_links(schedule: "Schedule", reuse_graph: "ChannelReuseGraph",
                  links) -> None:
    """Pre-register links the workload will ask about.

    Registering a link against an *empty* schedule is free (its distance
    row starts at :data:`INFINITE_DISTANCE`), whereas first-touch
    registration mid-run costs a full occupancy pass — so the scheduling
    engine calls this with every distinct link of the flow set before
    placing anything.  Unknown links still self-register on first query.
    """
    for sender, receiver in links:
        _link_row(schedule, reuse_graph, int(sender), int(receiver))


def min_reuse_distance(schedule: "Schedule",
                       reuse_graph: "ChannelReuseGraph",
                       sender: int, receiver: int,
                       start: int, end: int) -> np.ndarray:
    """Min-reuse-distance array for slots ``[start, end]`` × all offsets.

    ``result[i, c]`` is the smallest reuse-graph distance the candidate
    ``(sender, receiver)`` would have to any occupant of cell
    ``(start + i, c)`` — :data:`INFINITE_DISTANCE` when the cell is
    empty.  The channel constraint at hop count ρ holds iff
    ``result[i, c] >= rho``.

    Returns a live read-only view of the link's incrementally-maintained
    distance row: O(1) after the link's first query, and it stays
    current across subsequent placements.  Callers must not mutate it
    (nor hold it across mutations expecting a snapshot).
    """
    state, lane = _link_row(schedule, reuse_graph, sender, receiver)
    return state.dist[start:end + 1, :, lane]


def best_reuse_distance(schedule: "Schedule",
                        reuse_graph: "ChannelReuseGraph",
                        sender: int, receiver: int,
                        start: int, end: int) -> np.ndarray:
    """Per-slot best (max over offsets) min-reuse distance over a window.

    Slot ``start + i`` has an offset satisfying the channel constraint
    at ρ iff ``result[i] >= rho``.  Same view semantics as
    :func:`min_reuse_distance`.
    """
    state, lane = _link_row(schedule, reuse_graph, sender, receiver)
    return state.best[start:end + 1, lane]


def feasible_offsets_vector(schedule: "Schedule",
                            reuse_graph: "ChannelReuseGraph",
                            sender: int, receiver: int, slot: int,
                            rho: float) -> List[int]:
    """Vectorized equivalent of :func:`repro.core.constraints
    .feasible_offsets_scalar` for one slot."""
    if rho == float("inf"):
        counts, _, _ = schedule.occupancy()
        return np.flatnonzero(counts[slot] == 0).tolist()
    dist = min_reuse_distance(schedule, reuse_graph, sender, receiver,
                              slot, slot)[0]
    return np.flatnonzero(dist >= rho).tolist()


def cell_distances(schedule: "Schedule", reuse_graph: "ChannelReuseGraph",
                   sender: int, receiver: int, slot: int,
                   ) -> tuple:
    """Per-offset min reuse distance of one slot, with the blocker lane.

    ``dist[c]`` is the smallest ``min(hops[sender, y], hops[x, receiver])``
    over the occupants ``(x, y)`` of cell ``(slot, c)`` —
    :data:`INFINITE_DISTANCE` for empty cells — and ``lane[c]`` is the
    occupancy lane of the minimizing occupant, i.e. the transmission to
    *name* when explaining why the channel constraint rejected offset
    ``c`` (see :mod:`repro.obs.provenance`).

    Unlike :func:`min_reuse_distance` this does not touch the
    incremental link-state lanes: it recomputes from the occupancy
    planes and the hop matrix, so the answer is identical under either
    kernel mode and never perturbs the hot-path state.  Provenance and
    ``repro explain`` are the intended callers; placement uses the
    incremental views above.
    """
    counts, occ_senders, occ_receivers = schedule.occupancy()
    capacity = occ_senders.shape[2]
    num_offsets = schedule.num_offsets
    if capacity == 0 or not counts[slot].any():
        return (np.full(num_offsets, INFINITE_DISTANCE, dtype=np.int32),
                np.zeros(num_offsets, dtype=np.intp))
    hops = reuse_graph.effective_hops()
    pair = np.minimum(hops[sender, occ_receivers[slot]],
                      hops[occ_senders[slot], receiver])
    occupied = np.arange(capacity) < counts[slot][:, None]
    masked = np.where(occupied, pair, INFINITE_DISTANCE)
    lanes = masked.argmin(axis=1)
    return (masked[np.arange(num_offsets), lanes].astype(np.int32),
            lanes.astype(np.intp))
