"""RA — aggressive channel reuse baseline.

RA schedules each transmission at the earliest slot that has *any*
channel offset satisfying the reuse constraint at hop count ρ_t,
reusing channels whenever the hop-based interference model permits —
the behaviour of traditional spatial-reuse TDMA schedulers and of TASA
(paper Section VII: "a channel is reused whenever possible").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.schedule import Schedule
from repro.core.scheduler import OFFSET_FIRST, find_slot
from repro.core.transmissions import TransmissionRequest
from repro.flows.flow import Flow
from repro.network.graphs import ChannelReuseGraph
from repro.obs import recorder as _obs

#: Reuse hop-count threshold used for both RA and RC in the paper's
#: evaluation (a fair comparison requires the same floor).
DEFAULT_RHO_T = 2


@dataclass
class AggressiveReusePolicy:
    """Earliest slot, first offset feasible at the fixed hop count ρ_t.

    Attributes:
        rho_t: The (only) reuse hop count RA ever checks.
    """

    rho_t: int = DEFAULT_RHO_T
    name: str = "RA"

    def __post_init__(self) -> None:
        if self.rho_t < 1:
            raise ValueError("rho_t must be at least 1")

    def start_flow(self, flow: Flow) -> None:
        """No per-flow state."""

    def provenance_context(self) -> dict:
        """Static policy parameters stamped onto decision records."""
        return {"rho": self.rho_t, "offset_rule": OFFSET_FIRST}

    def place(self, schedule: Schedule, reuse_graph: ChannelReuseGraph,
              request: TransmissionRequest, earliest: int,
              remaining: Sequence[TransmissionRequest],
              ) -> Optional[Tuple[int, int]]:
        """Earliest slot with any offset feasible at ρ_t; lowest offset."""
        if _obs.ENABLED:
            _obs.RECORDER.count("policy.RA.place_calls")
        return find_slot(schedule, reuse_graph, request, self.rho_t,
                         earliest, OFFSET_FIRST)
