"""Incremental schedule repair: warm-start rescheduling with a bounded
blast radius.

Every manager remediation used to rebuild the whole schedule from
scratch — O(all flows) per epoch even when a single victim link changed.
The paper's Section VI loop only asks that degraded links "be reassigned
to different channels or time slots"; runtime adaptation should be local
(Recorp's incremental policies make the same argument).  This module
implements that locality as a three-step delta-scheduler:

1. **Blast radius** (:func:`compute_blast_radius`) — from the schedule's
   occupancy, find the placements the change invalidates directly
   (a newly barred link sharing a cell, a shared cell whose effective ρ
   falls below an escalated floor, a transmission on a blacklisted
   channel), then close transitively over the precedence chains: every
   later (hop, attempt) of an affected release is evicted too, because
   its predecessor may land later than it did before.  Per-instance
   evictions are therefore *suffixes* of the request chain, so every
   survivor keeps a valid precedence bound.
2. **Eviction** — :meth:`repro.core.schedule.Schedule.evict` on a clone
   removes exactly those cells with full bookkeeping rollback (busy
   matrix, occupancy planes, used-offset masks, slot lists, and the
   vectorized kernel's incremental distance stacks), cross-checked by
   the auditor's bookkeeping invariants.
3. **Re-placement** — evicted transmissions are re-placed in priority
   order with ``findSlot`` against the *existing* busy matrices: barred
   links at ρ = ∞ (an exclusive cell), everything else at the policy's
   floor ρ_t, refusing to join a cell that holds a barred occupant (the
   same protection :class:`repro.core.reschedule.ReuseBarrierPolicy`
   enforces during a full rebuild).

Repair preserves the Section V-A correctness contract at the configured
floor — the auditor accepts exactly the same invariants either way —
but it is *warm-started*, not history-free: surviving placements stay
where they are, so the repaired schedule generally differs from (and
places the evicted tail more permissively than) a full rebuild.  The
caller falls back to the full rebuild whenever repair fails placement or
the auditor rejects the result (see
:func:`repro.core.reschedule.reschedule_without_reuse_on` and
:meth:`repro.manager.loop.NetworkManager._apply`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core import kernel as _kernel
from repro.core.constraints import NO_REUSE
from repro.core.schedule import Schedule, ScheduledTransmission
from repro.core.scheduler import (
    OFFSET_FIRST,
    OFFSET_LEAST_LOADED,
    find_slot,
)
from repro.core.transmissions import ATTEMPTS_PER_LINK
from repro.flows.flow import FlowSet
from repro.network.graphs import ChannelReuseGraph
from repro.obs import recorder as _obs

Link = Tuple[int, int]

#: Per-entry evict reasons recorded in the blast radius.
REASON_BARRED = "barred-link-shared-cell"
REASON_RHO = "rho-floor-raised"
REASON_CHANNEL = "channel-blacklisted"
REASON_REUSE_RECHECK = "reuse-invalid-on-new-graph"
REASON_PRECEDENCE = "precedence-successor"


@dataclass(frozen=True)
class ChannelChange:
    """A blacklist change: the network after removing one channel.

    Attributes:
        reuse_graph: G_R re-derived from the restricted topology.
        num_offsets: Channel offsets remaining.
        offset_map: Old offset → new offset, ``None`` for the removed
            channel's offset (its transmissions must move).
    """

    reuse_graph: ChannelReuseGraph
    num_offsets: int
    offset_map: Tuple[Optional[int], ...]


@dataclass(frozen=True)
class ChangeSet:
    """What changed since the schedule was built.

    Exactly the manager's three remediation shapes: newly barred victim
    links, an escalated reuse floor, or a blacklisted channel.  Fields
    compose (a ρ escalation with fresh victims is one change set).

    Attributes:
        victims: Links newly barred from channel reuse (either
            direction).
        rho_t: The escalated reuse hop floor, or ``None`` when the floor
            is unchanged.
        channel: The blacklist change, or ``None``.
    """

    victims: Tuple[Link, ...] = ()
    rho_t: Optional[int] = None
    channel: Optional[ChannelChange] = None

    def describe(self) -> str:
        """Short human-readable summary (provenance / trace payloads)."""
        parts = []
        if self.victims:
            parts.append(f"bar {len(self.victims)} link(s)")
        if self.rho_t is not None:
            parts.append(f"rho_t -> {self.rho_t}")
        if self.channel is not None:
            parts.append(f"blacklist -> {self.channel.num_offsets} offsets")
        return ", ".join(parts) if parts else "no-op"


@dataclass
class BlastRadius:
    """The entries a change invalidates, with per-entry reasons.

    Attributes:
        indices: Entry indices into the *original* schedule, ascending.
        reasons: ``index -> reason`` (one of the ``REASON_*`` labels).
        seeds: How many indices were direct casualties (the rest are
            precedence successors).
    """

    indices: List[int] = field(default_factory=list)
    reasons: Dict[int, str] = field(default_factory=dict)
    seeds: int = 0


@dataclass
class RepairOutcome:
    """Result of one repair attempt.

    Attributes:
        schedulable: Whether every evicted transmission was re-placed by
            its deadline.  False means the caller should fall back to a
            full rebuild.
        schedule: The repaired schedule when schedulable; the partial
            repair otherwise (diagnostics only — never serve it).
        blast: What was evicted and why.
        evicted: Number of evicted cells (``len(blast.indices)``).
        failed_request: The first request repair could not place, if any.
        elapsed_s: Wall-clock repair time in seconds.
    """

    schedulable: bool
    schedule: Schedule
    blast: BlastRadius
    evicted: int
    failed_request: Optional[str] = None
    elapsed_s: float = 0.0


def _expand_links(links: Iterable[Link]) -> Set[Link]:
    """Both directions of every link (the ACK travels the reverse way)."""
    expanded: Set[Link] = set()
    for u, v in links:
        expanded.add((u, v))
        expanded.add((v, u))
    return expanded


def _pair_distance(hops, first: ScheduledTransmission,
                   second: ScheduledTransmission) -> int:
    """Effective reuse distance between two co-located transmissions:
    ``min(hops[u, y], hops[x, v])`` on the *effective* hop matrix
    (unreachable pairs already carry the kernel's infinite sentinel)."""
    u, v = first.request.sender, first.request.receiver
    x, y = second.request.sender, second.request.receiver
    return min(int(hops[u, y]), int(hops[x, v]))


def compute_blast_radius(schedule: Schedule, change: ChangeSet,
                         rho_floor: float,
                         barred: Iterable[Link] = (),
                         reuse_graph: Optional[ChannelReuseGraph] = None,
                         ) -> BlastRadius:
    """The transmissions a change invalidates, transitively.

    Direct casualties ("seeds"):

    * any shared-cell occupant whose link is barred (previously barred
      or newly victimized) — barred links must hold exclusive cells;
    * on a ρ escalation, the minimal suffix of each shared cell's
      occupants (in placement-lane order) whose removal restores
      pairwise distances ≥ the new floor;
    * on a blacklist, every transmission on the removed channel's
      offset, plus any shared-cell occupant whose pairwise distance
      falls below the floor on the *new* reuse graph.

    The closure then adds every same-release successor — higher
    (hop, attempt) of the same (flow, instance) — of each seed, because
    a seed's replacement may land later than its old slot and the
    successors' precedence bounds move with it.  Evictions are thus
    per-instance chain suffixes and every survivor's placement remains
    valid as-is.

    Args:
        schedule: The running schedule.
        change: What changed.
        rho_floor: The reuse floor in force *after* the change.
        barred: Previously barred links (the manager's accumulated
            no-reuse set; the change's victims are added internally).
        reuse_graph: The graph shared cells are rechecked against on a ρ
            escalation (``change.channel``'s graph wins when both are
            given; required when only ``change.rho_t`` is set).

    Returns:
        The blast radius, with entry indices into ``schedule.entries``.
    """
    barred_all = _expand_links(barred) | _expand_links(change.victims)
    entry_index = {id(entry): i
                   for i, entry in enumerate(schedule.entries)}
    blast = BlastRadius()

    def seed(entry: ScheduledTransmission, reason: str) -> None:
        index = entry_index[id(entry)]
        if index not in blast.reasons:
            blast.reasons[index] = reason

    recheck = change.rho_t is not None or change.channel is not None
    graph = (change.channel.reuse_graph if change.channel is not None
             else reuse_graph)
    if recheck and graph is None:
        raise ValueError("a rho recheck needs a reuse graph")
    hops = graph.effective_hops() if recheck else None
    recheck_reason = (REASON_REUSE_RECHECK if change.channel is not None
                      else REASON_RHO)
    if change.channel is not None:
        removed = {offset
                   for offset, mapped in enumerate(change.channel.offset_map)
                   if mapped is None}
        if removed:
            for entry in schedule.entries:
                if entry.offset in removed:
                    seed(entry, REASON_CHANNEL)

    for slot, offset, transmissions in schedule.reused_cells():
        for entry in transmissions:
            if entry.request.link in barred_all:
                seed(entry, REASON_BARRED)
        if not recheck:
            continue
        # Keep the greedy placement-order subset whose pairwise
        # distances satisfy the (possibly new) floor on the (possibly
        # new) graph; evict the rest.  Greedy-by-lane is deterministic
        # and favors older placements, which keeps the radius minimal
        # for the common one-occupant-too-close case.
        kept: List[ScheduledTransmission] = []
        for entry in transmissions:
            if entry_index[id(entry)] in blast.reasons:
                continue
            if all(_pair_distance(hops, entry, other) >= rho_floor
                   for other in kept):
                kept.append(entry)
            else:
                seed(entry, recheck_reason)

    blast.seeds = len(blast.reasons)

    # Transitive precedence closure: evict every later (hop, attempt) of
    # each seeded release, making per-instance evictions chain suffixes.
    first_hit: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for index, reason in blast.reasons.items():
        request = schedule.entries[index].request
        key = (request.flow_id, request.instance)
        rank = (request.hop_index, request.attempt)
        if key not in first_hit or rank < first_hit[key]:
            first_hit[key] = rank
    for index, entry in enumerate(schedule.entries):
        request = entry.request
        rank = first_hit.get((request.flow_id, request.instance))
        if rank is None or index in blast.reasons:
            continue
        if (request.hop_index, request.attempt) > rank:
            blast.reasons[index] = REASON_PRECEDENCE

    blast.indices = sorted(blast.reasons)
    return blast


def _remap_schedule(schedule: Schedule, doomed: List[int],
                    channel: ChannelChange,
                    ) -> Tuple[Schedule, List[ScheduledTransmission]]:
    """A fresh schedule on the restricted channel set: survivors re-added
    at their remapped offsets, the blast radius left out."""
    work = Schedule(schedule.num_nodes, schedule.num_slots,
                    channel.num_offsets)
    doomed_set = set(doomed)
    evicted: List[ScheduledTransmission] = []
    for index, entry in enumerate(schedule.entries):
        if index in doomed_set:
            evicted.append(entry)
            continue
        new_offset = channel.offset_map[entry.offset]
        work.add(entry.request, entry.slot, new_offset)
    return work, evicted


def smallest_reused_link(schedule: Schedule) -> Optional[Link]:
    """The smallest (by sorted endpoint pair) link occupying any shared
    cell — a deterministic victim choice for benchmarks and fuzzing, or
    None when the schedule has no reuse to repair."""
    links = set()
    for _, _, transmissions in schedule.reused_cells():
        for entry in transmissions:
            links.add(tuple(sorted(entry.request.link)))
    return min(links) if links else None


def _survivor_bounds(schedule: Schedule) -> Dict[Tuple[int, int], int]:
    """Last occupied slot of every (flow, instance) still on the
    schedule — the precedence bound its evicted suffix resumes from."""
    bounds: Dict[Tuple[int, int], int] = {}
    for entry in schedule.entries:
        key = (entry.request.flow_id, entry.request.instance)
        if entry.slot > bounds.get(key, -1):
            bounds[key] = entry.slot
    return bounds


def _cell_holds_barred(schedule: Schedule, slot: int, offset: int,
                       barred: Set[Link]) -> bool:
    return any(e.request.link in barred
               for e in schedule.cell(slot, offset))


def repair_schedule(schedule: Schedule, flow_set: FlowSet,
                    reuse_graph: ChannelReuseGraph, change: ChangeSet,
                    rho_t: float, barred: Iterable[Link] = (),
                    policy_name: str = "RC",
                    attempts_per_link: int = ATTEMPTS_PER_LINK,
                    ) -> RepairOutcome:
    """Repair a schedule in place of a full rebuild.

    Computes the blast radius, evicts it from a clone (the input
    schedule is never mutated — the manager's rollback keeps serving
    it), and re-places the evicted transmissions in priority order
    against the surviving busy matrices.  O(blast radius) placements
    instead of O(all flows).

    The kernel choice honors the crossover-aware ``auto`` mode: it
    resolves per repair from (policy, evicted count), exactly as a full
    scheduler run resolves from (policy, request count).

    Args:
        schedule: The running schedule (left untouched).
        flow_set: The routed, priority-ordered flows it serves.
        reuse_graph: The reuse graph the schedule was built against
            (``change.channel`` supersedes it when blacklisting).
        change: What changed.
        rho_t: The reuse floor in force after the change (i.e. already
            the escalated value when ``change.rho_t`` is set).
        barred: Previously barred links; ``change.victims`` are barred
            on top of these.
        policy_name: The placement policy's name ("NR" / "RA" / "RC") —
            selects the offset rule, the NR ρ = ∞ behavior, and the
            auto-kernel resolution.
        attempts_per_link: Source-routing expansion factor (bookkeeping
            only; eviction works from placed entries).

    Returns:
        A :class:`RepairOutcome`; when ``schedulable`` is False the
        caller must fall back to a full rebuild.
    """
    start_time = time.perf_counter()
    rho_floor = NO_REUSE if policy_name == "NR" else float(rho_t)
    blast = compute_blast_radius(schedule, change, rho_floor, barred,
                                 reuse_graph)
    barred_all = _expand_links(barred) | _expand_links(change.victims)

    if change.channel is not None:
        work, evicted = _remap_schedule(schedule, blast.indices,
                                        change.channel)
        graph = change.channel.reuse_graph
    else:
        work = schedule.clone()
        evicted = work.evict(blast.indices)
        graph = reuse_graph

    prov = (_obs.RECORDER.provenance if _obs.ENABLED else None)
    if prov is not None:
        prov.record_blast(
            change.describe(),
            [{"slot": entry.slot, "offset": entry.offset,
              "flow": entry.request.flow_id,
              "instance": entry.request.instance,
              "hop": entry.request.hop_index,
              "attempt": entry.request.attempt,
              "sender": entry.request.sender,
              "receiver": entry.request.receiver,
              "reason": blast.reasons[index]}
             for index, entry in zip(blast.indices, evicted)])

    resolved = _kernel.resolve_kernel(policy_name, len(evicted))
    with _kernel.kernel_mode(resolved):
        failed = _replace_evicted(work, graph, flow_set, evicted,
                                  rho_floor, barred_all, policy_name, prov)

    if _obs.ENABLED:
        _obs.RECORDER.count("repair.attempts")
        _obs.RECORDER.count("repair.evicted_cells", len(evicted))
        if failed is not None:
            _obs.RECORDER.count("repair.placement_failures")

    return RepairOutcome(
        schedulable=failed is None, schedule=work, blast=blast,
        evicted=len(evicted),
        failed_request=str(failed) if failed is not None else None,
        elapsed_s=time.perf_counter() - start_time)


def _replace_evicted(work: Schedule, graph: ChannelReuseGraph,
                     flow_set: FlowSet,
                     evicted: List[ScheduledTransmission],
                     rho_floor: float, barred: Set[Link],
                     policy_name: str, prov):
    """Re-place evicted transmissions in priority order; returns the
    first request that could not be placed (None on success)."""
    priority = {flow.flow_id: position
                for position, flow in enumerate(flow_set)}
    chains: Dict[Tuple[int, int], List[ScheduledTransmission]] = {}
    for entry in evicted:
        key = (entry.request.flow_id, entry.request.instance)
        chains.setdefault(key, []).append(entry)
    bounds = _survivor_bounds(work)
    offset_rule = (OFFSET_LEAST_LOADED if policy_name == "RC"
                   else OFFSET_FIRST)

    for key in sorted(chains,
                      key=lambda k: (priority.get(k[0], len(priority)), k)):
        flow_id, instance = key
        chain = sorted(chains[key],
                       key=lambda e: (e.request.hop_index,
                                      e.request.attempt))
        earliest = max(chain[0].request.release_slot,
                       bounds.get(key, -1) + 1)
        for entry in chain:
            request = entry.request
            rho = NO_REUSE if request.link in barred else rho_floor
            if prov is not None:
                prov.begin_decision(f"{policy_name}+repair", request,
                                    earliest)
            placement = find_slot(work, graph, request, rho, earliest,
                                  offset_rule)
            # The same protection the rebuild's barrier policy gives:
            # never join a cell that already holds a barred occupant.
            while (placement is not None and rho != NO_REUSE
                   and _cell_holds_barred(work, placement[0], placement[1],
                                          barred)):
                placement = find_slot(work, graph, request, rho,
                                      placement[0] + 1, offset_rule)
            if placement is None:
                if prov is not None:
                    prov.end_decision(None)
                return request
            slot, offset = placement
            if prov is not None:
                prov.end_decision(placement,
                                  reused=work.cell_size(slot, offset) > 0)
            work.add(request, slot, offset)
            earliest = slot + 1
    return None
