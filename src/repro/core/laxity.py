"""Flow laxity (paper Section V-B, Equation 1).

Given a candidate slot ``s`` for transmission ``t_ij`` of flow ``F_i``
with absolute deadline slot ``d_i``, the laxity is

    (d_i − s) − Σ_{t ∈ T_post} q_{s+1,d_i}^t − |T_post|

where ``T_post`` is the set of F_i's transmissions that still need slots
after ``t_ij``, and ``q^t`` estimates how many slots in ``(s, d_i]`` are
already unusable for ``t`` because a scheduled transmission conflicts
with it (shares its sender or receiver).

A non-negative laxity means the window after ``s`` plausibly holds all
remaining transmissions; RC only accepts a placement without channel
reuse when this holds.  The estimate is deliberately conservative:
conflicting slots are summed per remaining transmission, so a slot
blocking two remaining transmissions counts twice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core import kernel as _kernel
from repro.core.schedule import Schedule
from repro.core.transmissions import RequestWindow, TransmissionRequest


def conflict_slots_for(schedule: Schedule, request: TransmissionRequest,
                       start: int, end: int) -> int:
    """The paper's ``q_{start,end}^t``: busy slots for a transmission's link."""
    return schedule.conflict_count(request.sender, request.receiver, start, end)


def calculate_laxity_scalar(schedule: Schedule, slot: int,
                            deadline_slot: int,
                            remaining: Sequence[TransmissionRequest]) -> int:
    """Scalar reference for :func:`calculate_laxity` (one ``q`` term per
    Python call; retained as the pre-vectorization baseline)."""
    window_slots = deadline_slot - slot
    if not remaining:
        return window_slots
    blocked = sum(
        conflict_slots_for(schedule, request, slot + 1, deadline_slot)
        for request in remaining)
    return window_slots - blocked - len(remaining)


def calculate_laxity(schedule: Schedule, slot: int, deadline_slot: int,
                     remaining: Sequence[TransmissionRequest]) -> int:
    """Evaluate Equation 1 for a candidate placement.

    Args:
        schedule: The partial schedule (higher-priority transmissions and
            earlier transmissions of this flow already placed).
        slot: Candidate slot ``s`` for the current transmission.
        deadline_slot: Absolute deadline slot ``d_i`` (inclusive).
        remaining: ``T_post`` — the flow instance's transmissions after the
            current one, in precedence order.

    Returns:
        The laxity; ≥ 0 means the remaining transmissions are expected to
        fit before the deadline.

    The vectorized path gathers the busy-matrix rows of every remaining
    sender and receiver at once: Σ_t q^t is one OR and one popcount over
    a ``(|T_post|, window)`` block instead of ``|T_post|`` Python calls.
    RC evaluates this on every candidate placement, making it the second
    hot spot after the channel-constraint scan.
    """
    if _kernel.active_kernel() == _kernel.KERNEL_SCALAR:
        return calculate_laxity_scalar(schedule, slot, deadline_slot,
                                       remaining)
    window_slots = deadline_slot - slot
    if not remaining or slot + 1 > deadline_slot:
        return window_slots - len(remaining) if remaining else window_slots
    count = len(remaining)
    if isinstance(remaining, RequestWindow):
        senders = remaining.senders
        receivers = remaining.receivers
    else:
        senders = np.fromiter((r.sender for r in remaining),
                              dtype=np.intp, count=count)
        receivers = np.fromiter((r.receiver for r in remaining),
                                dtype=np.intp, count=count)
    busy = schedule.busy_matrix()
    window = busy[:, slot + 1:deadline_slot + 1]
    blocked = int(np.count_nonzero(window[senders] | window[receivers]))
    return window_slots - blocked - count
