"""RC — Reuse Conservatively (paper Algorithm 1).

RC first tries to place each transmission with channel reuse disabled
(ρ = ∞).  If the resulting flow laxity is non-negative — the remaining
transmissions of the flow still fit before the deadline — no reuse is
introduced.  Otherwise RC enables reuse starting from the *largest*
meaningful hop distance, λ_R (the reuse graph's diameter), and walks ρ
down toward the floor ρ_t until the laxity becomes non-negative, keeping
the interference risk as low as the deadline allows.  Among feasible
offsets, RC picks the least-loaded channel to limit cumulative
interference.

Interpretation note (see DESIGN.md §6): Algorithm 1 as printed resets
ρ ← ∞ once per *flow*, while the prose resets it per *transmission*.
The per-transmission reset is the more conservative reading and is the
default; ``rho_reset="flow"`` reproduces the literal pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core import kernel as _kernel
from repro.core.constraints import NO_REUSE
from repro.core.laxity import calculate_laxity
from repro.core.ra import DEFAULT_RHO_T
from repro.core.schedule import Schedule
from repro.core.scheduler import OFFSET_FIRST, OFFSET_LEAST_LOADED, find_slot
from repro.core.transmissions import RequestWindow, TransmissionRequest
from repro.flows.flow import Flow
from repro.network.graphs import ChannelReuseGraph
from repro.obs import recorder as _obs

#: Buckets for the final-ρ fallback histogram (ρ is a small hop count).
_FALLBACK_RHO_BUCKETS = (1, 2, 3, 4, 5, 6, 8, 12)


def _jsonable_rho(rho: float):
    """ρ for trace payloads: ∞ (no reuse) serializes as None."""
    return None if rho == NO_REUSE else int(rho)

#: Valid values for the ρ reset scope.
RHO_RESET_TRANSMISSION = "transmission"
RHO_RESET_FLOW = "flow"


@dataclass
class ConservativeReusePolicy:
    """The RC placement policy (Algorithm 1's inner loop).

    Attributes:
        rho_t: Minimum admissible reuse hop count (the floor; 2 in the
            paper's evaluation, matching RA for fairness).
        rho_reset: ``"transmission"`` (default, prose reading) resets
            ρ ← ∞ before every transmission; ``"flow"`` resets once per
            flow as in the printed pseudocode.
        offset_rule: Channel-offset selection within the chosen slot.
            The paper's RC picks the least-loaded feasible channel
            (default); ``"first"`` is available for ablation studies.
    """

    rho_t: int = DEFAULT_RHO_T
    rho_reset: str = RHO_RESET_TRANSMISSION
    offset_rule: str = OFFSET_LEAST_LOADED
    name: str = "RC"
    _rho: float = field(default=NO_REUSE, repr=False)
    # Fused-path heuristic: did the previous placement descend past its
    # first probe?  Contention is bursty, so the last placement predicts
    # whether the O(1)-per-probe laxity table will pay for itself.
    _table_hint: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.rho_t < 1:
            raise ValueError("rho_t must be at least 1")
        if self.rho_reset not in (RHO_RESET_TRANSMISSION, RHO_RESET_FLOW):
            raise ValueError(f"unknown rho_reset: {self.rho_reset}")

    def start_flow(self, flow: Flow) -> None:
        """Reset ρ at flow boundaries (always correct for both modes)."""
        self._rho = NO_REUSE

    def provenance_context(self) -> dict:
        """Static policy parameters stamped onto decision records."""
        return {"rho_t": self.rho_t, "rho_reset": self.rho_reset,
                "offset_rule": self.offset_rule}

    def place(self, schedule: Schedule, reuse_graph: ChannelReuseGraph,
              request: TransmissionRequest, earliest: int,
              remaining: Sequence[TransmissionRequest],
              ) -> Optional[Tuple[int, int]]:
        """Find the placement with the least channel reuse that keeps laxity ≥ 0.

        Mirrors Algorithm 1: repeatedly call ``findSlot`` and
        ``calculateLaxity``, relaxing ρ from ∞ to λ_R and downward until
        the laxity is non-negative or ρ falls below ρ_t.  The last
        placement found is used even if its laxity stayed negative (the
        laxity estimate is conservative); the engine rejects it only if
        it misses the deadline — which ``findSlot`` already enforces.
        """
        if not _obs.ENABLED and \
                _kernel.active_kernel() == _kernel.KERNEL_VECTOR:
            return self._place_fused(schedule, reuse_graph, request,
                                     earliest, remaining)

        if self.rho_reset == RHO_RESET_TRANSMISSION:
            self._rho = NO_REUSE
        rho = self._rho

        recorder = _obs.RECORDER if _obs.ENABLED else None
        prov = recorder.provenance if recorder is not None else None
        if recorder is not None:
            recorder.count("policy.RC.place_calls")
        laxity_triggered = False
        best: Optional[Tuple[int, int]] = None
        best_rho = rho
        while rho >= self.rho_t:
            found = find_slot(schedule, reuse_graph, request, rho,
                              earliest, self.offset_rule)
            if found is not None:
                best = found
                best_rho = rho
                laxity = calculate_laxity(
                    schedule, found[0], request.deadline_slot, remaining)
                if recorder is not None:
                    recorder.event(
                        "laxity_eval", flow=request.flow_id,
                        hop=request.hop_index, slot=found[0],
                        rho=_jsonable_rho(rho), laxity=laxity)
                    if prov is not None:
                        prov.record_laxity(found[0], rho, laxity)
                    if laxity < 0 and not laxity_triggered:
                        laxity_triggered = True
                        recorder.count("rc.laxity_triggers")
                if laxity >= 0:
                    break
            if rho == NO_REUSE:
                next_rho = reuse_graph.diameter()
                if next_rho < self.rho_t:
                    # Degenerate reuse graph: no finite hop count can be
                    # tried; stick with the no-reuse placement.
                    rho = next_rho
                    break
                if recorder is not None:
                    recorder.count("rc.reuse_fallbacks")
                    recorder.event(
                        "rc_fallback", flow=request.flow_id,
                        hop=request.hop_index,
                        from_rho=_jsonable_rho(rho),
                        to_rho=_jsonable_rho(next_rho))
                    if prov is not None:
                        prov.record_descent(rho, next_rho)
                rho = next_rho
            else:
                if recorder is not None and rho - 1 >= self.rho_t:
                    recorder.count("rc.reuse_fallbacks")
                    recorder.event(
                        "rc_fallback", flow=request.flow_id,
                        hop=request.hop_index,
                        from_rho=_jsonable_rho(rho),
                        to_rho=_jsonable_rho(rho - 1))
                    if prov is not None:
                        prov.record_descent(rho, rho - 1)
                rho -= 1

        if recorder is not None and best is not None and best_rho != NO_REUSE:
            recorder.observe("rc.fallback_rho", int(best_rho),
                             _FALLBACK_RHO_BUCKETS)

        if self.rho_reset == RHO_RESET_FLOW:
            # Persist ρ across the flow's remaining transmissions, clamped
            # to the admissible floor: an exhausted descent exits the
            # loop at ρ_t - 1 (and the degenerate-diameter break leaves
            # ρ = λ_R < ρ_t), but Algorithm 1 keeps ρ monotone
            # non-increasing within a flow and never below ρ_t — in
            # particular a flow never retries ρ = ∞ after a descent ran
            # dry.  ``_place_fused`` mirrors this exactly, including its
            # ``earliest > deadline`` early return; the differential
            # fuzzer (repro.validate.fuzz) asserts the parity.
            self._rho = max(rho, self.rho_t)
        else:
            self._rho = NO_REUSE
        return best

    def _place_fused(self, schedule: Schedule,
                     reuse_graph: ChannelReuseGraph,
                     request: TransmissionRequest, earliest: int,
                     remaining: Sequence[TransmissionRequest],
                     ) -> Optional[Tuple[int, int]]:
        """Algorithm 1's whole ρ descent against precomputed windows.

        The stepwise loop above re-runs ``findSlot`` and
        ``calculateLaxity`` at every ρ; with the vectorized kernel the
        per-call work is tiny but the call overhead is not.  This path
        (taken when observability is off, so no per-call events need
        firing) evaluates each ρ probe against the kernel's
        incrementally-maintained best-distance view: one running maximum
        per placement, then a single ``searchsorted`` per ρ.  Laxity is
        evaluated directly for the first probe (the common immediate
        accept); if the descent continues, Equation 1 becomes a
        suffix-cumsum lookup so every further probe costs O(1).
        Placements are identical to the stepwise loop: both pick the
        earliest feasible slot per ρ and descend under the same laxity
        rule.
        """
        if self.rho_reset == RHO_RESET_TRANSMISSION:
            self._rho = NO_REUSE
        rho = self._rho
        rho_t = self.rho_t
        deadline = request.deadline_slot

        if earliest > deadline:
            # Every findSlot probe misses; the descent runs dry.  Mirror
            # the stepwise loop's exit ρ for the flow-scoped reset: from
            # ρ = ∞ it either breaks at a degenerate diameter (λ_R < ρ_t)
            # or walks down past the floor to ρ_t - 1; from a persisted
            # finite ρ it always exits at ρ_t - 1.  After the shared
            # ``max(ρ, ρ_t)`` clamp every branch persists exactly ρ_t,
            # so the flow never retries ρ = ∞ — matching the stepwise
            # loop's exhausted-descent behaviour bit for bit.
            if rho == NO_REUSE:
                next_rho = reuse_graph.diameter()
                rho = next_rho if next_rho < rho_t else rho_t - 1
            else:
                rho = rho_t - 1
            self._rho = (max(rho, rho_t)
                         if self.rho_reset == RHO_RESET_FLOW else NO_REUSE)
            return None

        sender, receiver = request.sender, request.receiver
        width = deadline - earliest + 1
        n_rem = len(remaining)
        if n_rem:
            if isinstance(remaining, RequestWindow):
                senders = remaining.senders
                receivers = remaining.receivers
            else:
                senders = np.fromiter((r.sender for r in remaining),
                                      dtype=np.intp, count=n_rem)
                receivers = np.fromiter((r.receiver for r in remaining),
                                        dtype=np.intp, count=n_rem)
        probes = 0            # laxity evaluations so far
        lax = None            # Eq. 1 lookup, built on the second probe
        prefix = None         # running max of best eligible distance

        best_slot: Optional[int] = None
        best_rho = rho
        while rho >= rho_t:
            found_slot = None
            if rho == NO_REUSE:
                free = schedule.nr_candidate_slots(sender, receiver,
                                                   earliest, deadline)
                rel = int(free.argmax())
                if free[rel]:
                    found_slot = earliest + rel
            else:
                if prefix is None:
                    if self.offset_rule not in (OFFSET_FIRST,
                                                OFFSET_LEAST_LOADED):
                        raise ValueError(
                            f"unknown offset rule: {self.offset_rule}")
                    eligible = ~schedule.conflict_mask(sender, receiver,
                                                       earliest, deadline)
                    best = _kernel.best_reuse_distance(
                        schedule, reuse_graph, sender, receiver,
                        earliest, deadline)
                    masked = np.where(eligible, best, np.int32(-1))
                    prefix = np.maximum.accumulate(masked)
                # prefix is non-decreasing, so the earliest slot whose
                # best distance reaches ρ is a binary search away.
                pos = int(prefix.searchsorted(rho, side="left"))
                if pos < width:
                    found_slot = earliest + pos
            if found_slot is not None:
                best_slot = found_slot
                best_rho = rho
                if n_rem == 0:
                    break  # laxity = deadline - slot >= 0 always
                if lax is None and probes == 0 and not self._table_hint:
                    # One-slot evaluation for the common first-probe
                    # accept; the lookup table only pays off on descent.
                    window = schedule.busy_matrix()[
                        :, found_slot + 1:deadline + 1]
                    laxity = (deadline - found_slot - n_rem
                              - int(np.count_nonzero(window[senders]
                                                     | window[receivers])))
                else:
                    if lax is None:
                        window = schedule.busy_matrix()[
                            :, earliest:deadline + 1]
                        blocked = (window[senders]
                                   | window[receivers]).sum(axis=0)
                        lax = ((deadline - earliest - n_rem)
                               - np.arange(width, dtype=np.int64))
                        # lax[i] -= sum(blocked[i+1:]) via a reversed
                        # cumulative sum (the last slot has no suffix).
                        lax[:-1] -= blocked[1:][::-1].cumsum()[::-1]
                    laxity = int(lax[found_slot - earliest])
                probes += 1
                if laxity >= 0:
                    break
            if rho == NO_REUSE:
                next_rho = reuse_graph.diameter()
                if next_rho < rho_t:
                    rho = next_rho
                    break
                rho = next_rho
            else:
                rho -= 1

        if probes:
            self._table_hint = probes > 1

        if best_slot is None:
            result = None
        elif best_rho == NO_REUSE:
            result = (best_slot, schedule.first_free_offset(best_slot))
        else:
            row = _kernel.min_reuse_distance(
                schedule, reuse_graph, sender, receiver,
                best_slot, best_slot)[0] >= best_rho
            if self.offset_rule == OFFSET_FIRST:
                result = (best_slot, int(np.argmax(row)))
            else:
                offsets = np.flatnonzero(row)
                counts = schedule.occupancy()[0][best_slot, offsets]
                result = (best_slot, int(offsets[int(np.argmin(counts))]))

        if self.rho_reset == RHO_RESET_FLOW:
            self._rho = max(rho, rho_t)
        else:
            self._rho = NO_REUSE
        return result
