"""RC — Reuse Conservatively (paper Algorithm 1).

RC first tries to place each transmission with channel reuse disabled
(ρ = ∞).  If the resulting flow laxity is non-negative — the remaining
transmissions of the flow still fit before the deadline — no reuse is
introduced.  Otherwise RC enables reuse starting from the *largest*
meaningful hop distance, λ_R (the reuse graph's diameter), and walks ρ
down toward the floor ρ_t until the laxity becomes non-negative, keeping
the interference risk as low as the deadline allows.  Among feasible
offsets, RC picks the least-loaded channel to limit cumulative
interference.

Interpretation note (see DESIGN.md §6): Algorithm 1 as printed resets
ρ ← ∞ once per *flow*, while the prose resets it per *transmission*.
The per-transmission reset is the more conservative reading and is the
default; ``rho_reset="flow"`` reproduces the literal pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.constraints import NO_REUSE
from repro.core.laxity import calculate_laxity
from repro.core.ra import DEFAULT_RHO_T
from repro.core.schedule import Schedule
from repro.core.scheduler import OFFSET_LEAST_LOADED, find_slot
from repro.core.transmissions import TransmissionRequest
from repro.flows.flow import Flow
from repro.network.graphs import ChannelReuseGraph
from repro.obs import recorder as _obs

#: Buckets for the final-ρ fallback histogram (ρ is a small hop count).
_FALLBACK_RHO_BUCKETS = (1, 2, 3, 4, 5, 6, 8, 12)


def _jsonable_rho(rho: float):
    """ρ for trace payloads: ∞ (no reuse) serializes as None."""
    return None if rho == NO_REUSE else int(rho)

#: Valid values for the ρ reset scope.
RHO_RESET_TRANSMISSION = "transmission"
RHO_RESET_FLOW = "flow"


@dataclass
class ConservativeReusePolicy:
    """The RC placement policy (Algorithm 1's inner loop).

    Attributes:
        rho_t: Minimum admissible reuse hop count (the floor; 2 in the
            paper's evaluation, matching RA for fairness).
        rho_reset: ``"transmission"`` (default, prose reading) resets
            ρ ← ∞ before every transmission; ``"flow"`` resets once per
            flow as in the printed pseudocode.
        offset_rule: Channel-offset selection within the chosen slot.
            The paper's RC picks the least-loaded feasible channel
            (default); ``"first"`` is available for ablation studies.
    """

    rho_t: int = DEFAULT_RHO_T
    rho_reset: str = RHO_RESET_TRANSMISSION
    offset_rule: str = OFFSET_LEAST_LOADED
    name: str = "RC"
    _rho: float = field(default=NO_REUSE, repr=False)

    def __post_init__(self) -> None:
        if self.rho_t < 1:
            raise ValueError("rho_t must be at least 1")
        if self.rho_reset not in (RHO_RESET_TRANSMISSION, RHO_RESET_FLOW):
            raise ValueError(f"unknown rho_reset: {self.rho_reset}")

    def start_flow(self, flow: Flow) -> None:
        """Reset ρ at flow boundaries (always correct for both modes)."""
        self._rho = NO_REUSE

    def place(self, schedule: Schedule, reuse_graph: ChannelReuseGraph,
              request: TransmissionRequest, earliest: int,
              remaining: Sequence[TransmissionRequest],
              ) -> Optional[Tuple[int, int]]:
        """Find the placement with the least channel reuse that keeps laxity ≥ 0.

        Mirrors Algorithm 1: repeatedly call ``findSlot`` and
        ``calculateLaxity``, relaxing ρ from ∞ to λ_R and downward until
        the laxity is non-negative or ρ falls below ρ_t.  The last
        placement found is used even if its laxity stayed negative (the
        laxity estimate is conservative); the engine rejects it only if
        it misses the deadline — which ``findSlot`` already enforces.
        """
        if self.rho_reset == RHO_RESET_TRANSMISSION:
            self._rho = NO_REUSE
        rho = self._rho

        recorder = _obs.RECORDER if _obs.ENABLED else None
        if recorder is not None:
            recorder.count("policy.RC.place_calls")
        laxity_triggered = False
        best: Optional[Tuple[int, int]] = None
        best_rho = rho
        while rho >= self.rho_t:
            found = find_slot(schedule, reuse_graph, request, rho,
                              earliest, self.offset_rule)
            if found is not None:
                best = found
                best_rho = rho
                laxity = calculate_laxity(
                    schedule, found[0], request.deadline_slot, remaining)
                if recorder is not None:
                    recorder.event(
                        "laxity_eval", flow=request.flow_id,
                        hop=request.hop_index, slot=found[0],
                        rho=_jsonable_rho(rho), laxity=laxity)
                    if laxity < 0 and not laxity_triggered:
                        laxity_triggered = True
                        recorder.count("rc.laxity_triggers")
                if laxity >= 0:
                    break
            if rho == NO_REUSE:
                next_rho = reuse_graph.diameter()
                if next_rho < self.rho_t:
                    # Degenerate reuse graph: no finite hop count can be
                    # tried; stick with the no-reuse placement.
                    rho = next_rho
                    break
                if recorder is not None:
                    recorder.count("rc.reuse_fallbacks")
                    recorder.event(
                        "rc_fallback", flow=request.flow_id,
                        hop=request.hop_index,
                        from_rho=_jsonable_rho(rho),
                        to_rho=_jsonable_rho(next_rho))
                rho = next_rho
            else:
                if recorder is not None and rho - 1 >= self.rho_t:
                    recorder.count("rc.reuse_fallbacks")
                    recorder.event(
                        "rc_fallback", flow=request.flow_id,
                        hop=request.hop_index,
                        from_rho=_jsonable_rho(rho),
                        to_rho=_jsonable_rho(rho - 1))
                rho -= 1

        if recorder is not None and best is not None and best_rho != NO_REUSE:
            recorder.observe("rc.fallback_rho", int(best_rho),
                             _FALLBACK_RHO_BUCKETS)

        if self.rho_reset == RHO_RESET_FLOW:
            # Persist ρ across the flow's remaining transmissions, clamped
            # to the admissible floor (the loop may exit at ρ_t - 1).
            self._rho = max(rho, self.rho_t)
        else:
            self._rho = NO_REUSE
        return best
