"""Fixed-priority transmission scheduling engine (paper Sections III-B, V).

The engine walks flows in priority order (the FlowSet's order — apply
Deadline Monotonic first), expands each release instance into transmission
requests, and delegates every placement to a *placement policy*.  The
three policies of the paper — NR, RA, RC — differ only in how they pick a
(slot, channel offset) cell; the surrounding machinery (priority order,
precedence, deadline checks, timing) is shared here.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core import kernel as _kernel
from repro.core.constraints import (
    NO_REUSE,
    feasible_offsets_scalar,
)
from repro.core.schedule import Schedule
from repro.core.transmissions import (
    ATTEMPTS_PER_LINK,
    RequestWindow,
    TransmissionRequest,
    expand_instance,
)
from repro.flows.flow import Flow, FlowSet
from repro.network.graphs import ChannelReuseGraph
from repro.obs import recorder as _obs

#: Offset selection rules understood by :func:`find_slot`.
OFFSET_FIRST = "first"
OFFSET_LEAST_LOADED = "least_loaded"

#: Registry counters folded into :attr:`SchedulingResult.counters`
#: (``registry name`` -> ``result key``).  The RC entries stay zero for
#: NR / RA runs.
RESULT_COUNTERS = (
    ("scheduler.slots_scanned", "slots_scanned"),
    ("scheduler.placements_tried", "placements_tried"),
    ("scheduler.placements", "placements"),
    ("scheduler.reuse_placements", "reuse_placements"),
    ("rc.laxity_triggers", "laxity_triggers"),
    ("rc.reuse_fallbacks", "reuse_fallbacks"),
)


def _note_scan(slots: int) -> None:
    """Credit ``slots`` scanned slots to the live recorder."""
    if slots and _obs.ENABLED:
        _obs.RECORDER.count("scheduler.slots_scanned", slots)


def find_slot(schedule: Schedule, reuse_graph: ChannelReuseGraph,
              request: TransmissionRequest, rho: float,
              earliest: int, offset_rule: str = OFFSET_FIRST,
              ) -> Optional[Tuple[int, int]]:
    """The paper's ``findSlot()``: earliest feasible (slot, offset).

    Scans slots from ``earliest`` to the request's deadline, skipping
    slots with transmission conflicts, and returns the first slot holding
    a channel offset that satisfies the channel constraint at reuse hop
    count ``rho``.

    Args:
        schedule: Partial schedule.
        reuse_graph: Channel reuse graph (hop distances).
        request: The transmission to place.
        rho: Reuse hop count; ``math.inf`` forbids reuse.
        earliest: First admissible slot (release / precedence bound).
        offset_rule: ``"first"`` picks the lowest feasible offset (RA);
            ``"least_loaded"`` picks the feasible offset with the fewest
            scheduled transmissions, lowest index on ties (RC — reduces
            per-channel contention, paper Section V-C).

    Returns:
        ``(slot, offset)`` or None if nothing fits by the deadline.
    """
    if _obs.ENABLED:
        _obs.RECORDER.count("scheduler.placements_tried")
        prov = _obs.RECORDER.provenance
        if prov is not None:
            # Record the scan *and* its derived constraint chain against
            # the pre-scan schedule state (see repro.obs.provenance).
            result = _find_slot(schedule, reuse_graph, request, rho,
                                earliest, offset_rule)
            prov.record_probe(schedule, reuse_graph, request, rho,
                              earliest, offset_rule, result)
            return result
    return _find_slot(schedule, reuse_graph, request, rho, earliest,
                      offset_rule)


def _find_slot(schedule: Schedule, reuse_graph: ChannelReuseGraph,
               request: TransmissionRequest, rho: float,
               earliest: int, offset_rule: str,
               ) -> Optional[Tuple[int, int]]:
    """:func:`find_slot` minus the provenance probe hook."""
    deadline = request.deadline_slot
    if earliest > deadline:
        return None

    if rho == NO_REUSE:
        # Fast path: feasible slots need a completely free offset.
        candidates = schedule.nr_candidate_slots(
            request.sender, request.receiver, earliest, deadline)
        # argmax short-circuits on booleans: first feasible slot or 0.
        rel = int(candidates.argmax())
        if not candidates[rel]:
            _note_scan(deadline - earliest + 1)
            return None
        slot = earliest + rel
        _note_scan(rel + 1)
        return (slot, schedule.first_free_offset(slot))

    conflict = schedule.conflict_mask(
        request.sender, request.receiver, earliest, deadline)
    if _kernel.active_kernel() == _kernel.KERNEL_SCALAR:
        return _find_slot_scalar(schedule, reuse_graph, request, rho,
                                 earliest, offset_rule, conflict)
    return _find_slot_vector(schedule, reuse_graph, request, rho,
                             earliest, offset_rule, conflict)


def _find_slot_scalar(schedule: Schedule, reuse_graph: ChannelReuseGraph,
                      request: TransmissionRequest, rho: float,
                      earliest: int, offset_rule: str,
                      conflict: np.ndarray) -> Optional[Tuple[int, int]]:
    """Finite-ρ slot scan, one cell at a time (pre-vectorization path).

    Retained as the reference oracle for the vectorized kernel and as
    the baseline ``repro bench`` measures speedups against.
    """
    scanned = 0
    for index in np.flatnonzero(~conflict):
        scanned += 1
        slot = earliest + int(index)
        offsets = feasible_offsets_scalar(
            schedule, reuse_graph, request.sender, request.receiver,
            slot, rho)
        if not offsets:
            continue
        _note_scan(scanned)
        if offset_rule == OFFSET_FIRST:
            return (slot, offsets[0])
        if offset_rule == OFFSET_LEAST_LOADED:
            best = min(offsets,
                       key=lambda c: (schedule.cell_size(slot, c), c))
            return (slot, best)
        raise ValueError(f"unknown offset rule: {offset_rule}")
    _note_scan(scanned)
    return None


def _find_slot_vector(schedule: Schedule, reuse_graph: ChannelReuseGraph,
                      request: TransmissionRequest, rho: float,
                      earliest: int, offset_rule: str,
                      conflict: np.ndarray) -> Optional[Tuple[int, int]]:
    """Finite-ρ slot scan via the vectorized placement kernel.

    The kernel maintains each link's min-reuse distances incrementally
    (see :mod:`repro.core.kernel`), so the whole window is answered by
    thresholding the link's per-slot best-distance view against ρ — no
    per-slot rescans, and RC's descending-ρ retries of the same request
    re-threshold the same row.
    """
    if offset_rule not in (OFFSET_FIRST, OFFSET_LEAST_LOADED):
        raise ValueError(f"unknown offset rule: {offset_rule}")
    deadline = request.deadline_slot
    best = _kernel.best_reuse_distance(
        schedule, reuse_graph, request.sender, request.receiver,
        earliest, deadline)
    feasible = best >= rho
    # feasible & ~conflict, without materializing the inverted mask.
    np.greater(feasible, conflict, out=feasible)
    # argmax short-circuits on booleans: first feasible slot or 0.
    rel = int(feasible.argmax())
    if not feasible[rel]:
        if _obs.ENABLED:
            _note_scan(int(conflict.size - np.count_nonzero(conflict)))
        return None
    slot = earliest + rel
    if _obs.ENABLED:
        _note_scan(int(rel + 1 - np.count_nonzero(conflict[:rel + 1])))
    row = _kernel.min_reuse_distance(
        schedule, reuse_graph, request.sender, request.receiver,
        slot, slot)[0] >= rho
    if offset_rule == OFFSET_FIRST:
        return (slot, int(np.argmax(row)))
    offsets = np.flatnonzero(row)
    counts = schedule.occupancy()[0][slot, offsets]
    # argmin returns the first minimum; offsets ascend, so ties break
    # toward the lowest offset like the scalar (cell_size, offset) key.
    return (slot, int(offsets[int(np.argmin(counts))]))


class PlacementPolicy(Protocol):
    """Strategy deciding where each transmission request goes."""

    #: Human-readable policy name ("NR", "RA", "RC", ...).
    name: str

    def start_flow(self, flow: Flow) -> None:
        """Hook invoked when the engine starts a new flow."""

    def place(self, schedule: Schedule, reuse_graph: ChannelReuseGraph,
              request: TransmissionRequest, earliest: int,
              remaining: Sequence[TransmissionRequest],
              ) -> Optional[Tuple[int, int]]:
        """Choose a (slot, offset) for the request, or None if impossible."""


@dataclass
class SchedulingResult:
    """Outcome of scheduling one flow set.

    Attributes:
        schedulable: Whether every transmission of every instance made its
            deadline.
        schedule: The complete schedule when schedulable; the partial
            schedule at the point of failure otherwise.
        flow_set: The (priority-ordered, routed) input flows.
        policy_name: Which placement policy produced this result.
        failed_flow: Flow id of the first unschedulable flow, if any.
        failed_instance: Release index where scheduling failed, if any.
        elapsed_s: Wall-clock scheduling time in seconds.
        counters: Per-run instrumentation counters (slots scanned,
            placements tried/made, reuse placements, RC laxity triggers
            and fallback steps).  Populated from the observability
            registry when recording is enabled (see :mod:`repro.obs`);
            empty otherwise so the disabled path stays free.
    """

    schedulable: bool
    schedule: Schedule
    flow_set: FlowSet
    policy_name: str
    failed_flow: Optional[int] = None
    failed_instance: Optional[int] = None
    elapsed_s: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)


class FixedPriorityScheduler:
    """Schedules a routed, priority-ordered flow set with a policy.

    Args:
        num_nodes: Number of devices in the topology.
        num_offsets: Number of channels used ``|M|``.
        reuse_graph: Channel reuse graph of the topology.
        policy: Placement policy (NR / RA / RC).
        attempts_per_link: Cells reserved per link (2 = source routing).
    """

    def __init__(self, num_nodes: int, num_offsets: int,
                 reuse_graph: ChannelReuseGraph, policy: PlacementPolicy,
                 attempts_per_link: int = ATTEMPTS_PER_LINK):
        if reuse_graph.num_nodes != num_nodes:
            raise ValueError("reuse graph size does not match num_nodes")
        self.num_nodes = num_nodes
        self.num_offsets = num_offsets
        self.reuse_graph = reuse_graph
        self.policy = policy
        self.attempts_per_link = attempts_per_link

    def run(self, flow_set: FlowSet) -> SchedulingResult:
        """Schedule every instance of every flow within the hyperperiod.

        The flow set must already be routed and in priority order (highest
        first).  Scheduling stops at the first transmission that cannot
        meet its deadline; the flow set is then unschedulable.
        """
        if not flow_set.all_routed():
            raise ValueError("all flows must be routed before scheduling")
        if _kernel.active_kernel() == _kernel.KERNEL_AUTO:
            # Resolve the crossover-aware choice once per run and scope
            # it, so every inner branch point sees a concrete kernel.
            with _kernel.kernel_mode(self._resolve_auto(flow_set)):
                return self.run(flow_set)
        start_time = time.perf_counter()
        hyperperiod = flow_set.hyperperiod()
        schedule = Schedule(self.num_nodes, hyperperiod, self.num_offsets)
        if (_kernel.active_kernel() == _kernel.KERNEL_VECTOR
                and getattr(self.policy, "uses_reuse", True)):
            # Register every link while the schedule is empty: distance
            # rows start at "no constraint" for free, instead of paying
            # a full occupancy pass on first touch mid-run.  NR opts out
            # (uses_reuse=False): it never consults reuse distances, so
            # maintaining them would be pure per-placement overhead.
            _kernel.prepare_links(
                schedule, self.reuse_graph,
                {link for flow in flow_set for link in flow.links})

        # Resolve observability once per run; ENABLED is a module-level
        # flag so the disabled cost is one attribute read.
        recorder = _obs.RECORDER if _obs.ENABLED else None
        baseline = None
        prov = None
        if recorder is not None:
            baseline = {name: recorder.registry.counter_value(name)
                        for name, _ in RESULT_COUNTERS}
            prov = recorder.provenance
        context = (self.policy.provenance_context()
                   if prov is not None
                   and hasattr(self.policy, "provenance_context") else None)

        for flow in flow_set:
            self.policy.start_flow(flow)
            for instance in flow.instances(hyperperiod):
                requests = expand_instance(instance, self.attempts_per_link)
                earliest = instance.release_slot
                # The vectorized laxity path wants T_post as index
                # arrays; share one pair across the instance's
                # placements.  The scalar reference keeps the plain
                # list slices it was originally measured with.
                windows = _kernel.active_kernel() == _kernel.KERNEL_VECTOR
                if windows:
                    senders, receivers = RequestWindow.arrays_for(requests)
                for position, request in enumerate(requests):
                    remaining = (
                        RequestWindow(requests, position + 1,
                                      senders, receivers)
                        if windows else requests[position + 1:])
                    if prov is not None:
                        prov.begin_decision(self.policy.name, request,
                                            earliest, context)
                    placement = self.policy.place(
                        schedule, self.reuse_graph, request, earliest,
                        remaining)
                    if placement is None:
                        if recorder is not None:
                            recorder.count("scheduler.rejections")
                            fields = dict(
                                policy=self.policy.name,
                                flow=flow.flow_id,
                                instance=instance.instance,
                                hop=request.hop_index,
                                deadline=request.deadline_slot)
                            if prov is not None:
                                fields["prov"] = prov.end_decision(None)
                            recorder.event("flow_rejected", **fields)
                        return self._finish(
                            False, schedule, flow_set, start_time,
                            recorder, baseline,
                            failed_flow=flow.flow_id,
                            failed_instance=instance.instance)
                    slot, offset = placement
                    if recorder is not None:
                        reused = schedule.cell_size(slot, offset) > 0
                        recorder.count("scheduler.placements")
                        if reused:
                            recorder.count("scheduler.reuse_placements")
                        fields = dict(
                            policy=self.policy.name,
                            flow=flow.flow_id, instance=instance.instance,
                            hop=request.hop_index, attempt=request.attempt,
                            slot=slot, offset=offset, reused=reused)
                        if prov is not None:
                            fields["prov"] = prov.end_decision(
                                placement, reused)
                        recorder.event("placement", **fields)
                    schedule.add(request, slot, offset)
                    earliest = slot + 1
            if recorder is not None:
                recorder.event("flow_admitted", policy=self.policy.name,
                               flow=flow.flow_id)

        return self._finish(True, schedule, flow_set, start_time,
                            recorder, baseline)

    def _resolve_auto(self, flow_set: FlowSet) -> str:
        """Concrete kernel for this run under ``kernel="auto"``.

        The workload-size estimate is the number of transmission
        requests the run will try to place — instances × route hops ×
        attempts — which is what the measured RA crossover
        (:data:`repro.core.kernel.RA_CROSSOVER_REQUESTS`) is calibrated
        against.
        """
        hyperperiod = flow_set.hyperperiod()
        num_requests = sum(
            (hyperperiod // flow.period_slots) * len(flow.links)
            * self.attempts_per_link
            for flow in flow_set)
        # Wrapper policies (e.g. the reuse barrier) advertise the name
        # the crossover calibration applies to; bare policies are their
        # own answer.
        policy_name = getattr(self.policy, "kernel_policy_name",
                              self.policy.name)
        return _kernel.resolve_kernel(policy_name, num_requests)

    def _finish(self, schedulable: bool, schedule: Schedule,
                flow_set: FlowSet, start_time: float, recorder, baseline,
                failed_flow: Optional[int] = None,
                failed_instance: Optional[int] = None) -> SchedulingResult:
        """Assemble the result, folding registry deltas into counters."""
        counters: Dict[str, float] = {}
        if recorder is not None:
            registry = recorder.registry
            for name, key in RESULT_COUNTERS:
                delta = registry.counter_value(name) - baseline[name]
                counters[key] = int(delta) if delta.is_integer() else delta
            prefix = f"policy.{self.policy.name}"
            registry.inc(f"{prefix}.runs")
            registry.inc(f"{prefix}.schedulable" if schedulable
                         else f"{prefix}.unschedulable")
            registry.inc(f"{prefix}.placements", counters["placements"])
            registry.inc(f"{prefix}.reuse_placements",
                         counters["reuse_placements"])
        return SchedulingResult(
            schedulable=schedulable, schedule=schedule, flow_set=flow_set,
            policy_name=self.policy.name, failed_flow=failed_flow,
            failed_instance=failed_instance,
            elapsed_s=time.perf_counter() - start_time, counters=counters)
