"""Expansion of flow instances into schedulable transmission requests.

Under source routing (paper Section VII), each wireless link on a route
gets a dedicated retransmission slot: a hop expands to two transmission
*attempts*, both of which the scheduler must place in dedicated cells.
Attempts are strictly ordered — attempt 1 of hop ``h`` after attempt 0 of
hop ``h``, and hop ``h+1`` after both attempts of hop ``h`` — because in
the worst case the packet only reaches the next relay in the
retransmission slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import List, Sequence

import numpy as np

from repro.flows.flow import FlowInstance

#: Transmission attempts reserved per link under source routing.
ATTEMPTS_PER_LINK = 2


@dataclass(frozen=True)
class TransmissionRequest:
    """One transmission attempt awaiting a (slot, channel offset) cell.

    Attributes:
        flow_id: Owning flow.
        instance: Release index within the hyperperiod.
        hop_index: Position of the link on the route (0-based).
        attempt: 0 for the primary attempt, 1 for the retransmission.
        sender: Transmitting node id.
        receiver: Receiving node id.
        release_slot: The instance's release slot (earliest possible slot
            for the *first* request; later requests are further bounded by
            their predecessors' placements).
        deadline_slot: The instance's absolute deadline slot ``d_i``
            (inclusive; the last slot the attempt may occupy).
    """

    flow_id: int
    instance: int
    hop_index: int
    attempt: int
    sender: int
    receiver: int
    release_slot: int
    deadline_slot: int

    def __post_init__(self) -> None:
        if self.sender == self.receiver:
            raise ValueError("sender and receiver must differ")
        if self.attempt < 0:
            raise ValueError("attempt must be non-negative")

    @property
    def link(self) -> tuple:
        """The directed link ``(sender, receiver)``."""
        return (self.sender, self.receiver)

    def __str__(self) -> str:
        return (f"F{self.flow_id}[{self.instance}] hop {self.hop_index}"
                f".{self.attempt} {self.sender}->{self.receiver}")


class RequestWindow(Sequence):
    """A zero-copy tail view of an instance's request list.

    The scheduling engine hands each placement policy the requests that
    still need slots (``T_post`` in the laxity formula).  Slicing the
    request list per placement is O(n) and the vectorized laxity path
    additionally needs the senders and receivers as index arrays —
    this view shares one pair of arrays across every placement of the
    instance and exposes the tail without copying.
    """

    __slots__ = ("_requests", "_start", "_senders", "_receivers")

    def __init__(self, requests: Sequence[TransmissionRequest], start: int,
                 senders: np.ndarray, receivers: np.ndarray):
        self._requests = requests
        self._start = start
        self._senders = senders
        self._receivers = receivers

    @classmethod
    def arrays_for(cls, requests: Sequence[TransmissionRequest]
                   ) -> "tuple[np.ndarray, np.ndarray]":
        """Sender/receiver index arrays for a full request list."""
        count = len(requests)
        senders = np.fromiter((r.sender for r in requests),
                              dtype=np.intp, count=count)
        receivers = np.fromiter((r.receiver for r in requests),
                                dtype=np.intp, count=count)
        return senders, receivers

    @property
    def senders(self) -> np.ndarray:
        """Sender node indices of the windowed requests (a view)."""
        return self._senders[self._start:]

    @property
    def receivers(self) -> np.ndarray:
        """Receiver node indices of the windowed requests (a view)."""
        return self._receivers[self._start:]

    def __len__(self) -> int:
        return len(self._requests) - self._start

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._requests[self._start:])[index]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._requests[self._start + index]

    def __iter__(self):
        return islice(iter(self._requests), self._start, None)


def expand_instance(instance: FlowInstance,
                    attempts_per_link: int = ATTEMPTS_PER_LINK,
                    ) -> List[TransmissionRequest]:
    """Expand a flow instance into its ordered transmission requests.

    Args:
        instance: The release to expand.
        attempts_per_link: Slots reserved per link (2 under source
            routing; 1 disables the retransmission reservation).

    Returns:
        Requests in precedence order: hop-major, attempt-minor.
    """
    if attempts_per_link < 1:
        raise ValueError("attempts_per_link must be at least 1")
    flow = instance.flow
    if not flow.has_route:
        raise ValueError(f"flow {flow.flow_id} has no route")
    requests = []
    for hop_index, (sender, receiver) in enumerate(flow.links):
        for attempt in range(attempts_per_link):
            requests.append(TransmissionRequest(
                flow_id=flow.flow_id,
                instance=instance.instance,
                hop_index=hop_index,
                attempt=attempt,
                sender=sender,
                receiver=receiver,
                release_slot=instance.release_slot,
                deadline_slot=instance.deadline_slot,
            ))
    return requests
