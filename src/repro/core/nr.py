"""NR — the WirelessHART standard policy: no channel reuse.

Each (slot, channel offset) cell holds at most one transmission, so a
slot accommodates at most ``|M|`` concurrent transmissions.  This is the
paper's first baseline (DM + no reuse).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.constraints import NO_REUSE
from repro.core.schedule import Schedule
from repro.core.scheduler import OFFSET_FIRST, find_slot
from repro.core.transmissions import TransmissionRequest
from repro.flows.flow import Flow
from repro.network.graphs import ChannelReuseGraph
from repro.obs import recorder as _obs


class NoReusePolicy:
    """Earliest slot, exclusive channel (WirelessHART default)."""

    name = "NR"

    #: NR never consults reuse distances; the engine skips maintaining
    #: the kernel's per-link distance stacks for it.
    uses_reuse = False

    def start_flow(self, flow: Flow) -> None:
        """No per-flow state."""

    def provenance_context(self) -> dict:
        """Static policy parameters stamped onto decision records."""
        return {"rho": None, "offset_rule": OFFSET_FIRST}

    def place(self, schedule: Schedule, reuse_graph: ChannelReuseGraph,
              request: TransmissionRequest, earliest: int,
              remaining: Sequence[TransmissionRequest],
              ) -> Optional[Tuple[int, int]]:
        """Earliest conflict-free slot with an unused channel offset."""
        if _obs.ENABLED:
            _obs.RECORDER.count("policy.NR.place_calls")
        return find_slot(schedule, reuse_graph, request, NO_REUSE,
                         earliest, OFFSET_FIRST)
