"""Channel reuse constraints (paper Section V-A).

A transmission ``t = (u, v)`` may occupy slot ``s`` and channel offset
``c`` iff:

1. *Transmission conflict*: ``t`` shares no node with any transmission
   already in slot ``s`` (half-duplex radios perform one operation per
   slot).
2. *Channel constraint*:
   a. ``ρ = ∞`` (no reuse): offset ``c`` must be empty in slot ``s``.
   b. ``ρ < ∞``: for every ``(x, y)`` already in cell ``(s, c)``, the new
      sender ``u`` must be at least ρ reuse-graph hops from the existing
      receiver ``y``, and the existing sender ``x`` at least ρ hops from
      the new receiver ``v``.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core import kernel as _kernel
from repro.core.schedule import Schedule
from repro.network.graphs import ChannelReuseGraph

#: Convenience alias: "channel reuse disabled".
NO_REUSE = math.inf


def conflicts_in_slot(schedule: Schedule, sender: int, receiver: int,
                      slot: int) -> bool:
    """Whether the link conflicts with any transmission in the slot."""
    return schedule.node_busy(sender, slot) or schedule.node_busy(receiver, slot)


def offset_satisfies_channel_constraint(schedule: Schedule,
                                        reuse_graph: ChannelReuseGraph,
                                        sender: int, receiver: int,
                                        slot: int, offset: int,
                                        rho: float) -> bool:
    """Check the channel constraint for one candidate cell.

    ``rho`` may be ``math.inf`` (reuse disabled) or a finite hop count.
    An empty cell always satisfies the constraint.
    """
    occupants = schedule.cell(slot, offset)
    if not occupants:
        return True
    if rho == NO_REUSE:
        return False
    for entry in occupants:
        x = entry.request.sender
        y = entry.request.receiver
        if not reuse_graph.at_least_hops_apart(sender, y, rho):
            return False
        if not reuse_graph.at_least_hops_apart(x, receiver, rho):
            return False
    return True


def feasible_offsets_scalar(schedule: Schedule,
                            reuse_graph: ChannelReuseGraph,
                            sender: int, receiver: int, slot: int,
                            rho: float) -> List[int]:
    """Scalar reference implementation of :func:`feasible_offsets`.

    Checks one offset, one occupant at a time; retained as the oracle
    the vectorized kernel is tested against (and as the pre-PR baseline
    ``repro bench`` times).
    """
    return [offset for offset in range(schedule.num_offsets)
            if offset_satisfies_channel_constraint(
                schedule, reuse_graph, sender, receiver, slot, offset, rho)]


def feasible_offsets(schedule: Schedule, reuse_graph: ChannelReuseGraph,
                     sender: int, receiver: int, slot: int,
                     rho: float) -> List[int]:
    """All channel offsets satisfying the channel constraint in a slot.

    Assumes the transmission-conflict check for the slot already passed.
    Dispatches to the vectorized kernel unless the scalar reference is
    selected (see :mod:`repro.core.kernel`).
    """
    if _kernel.active_kernel() == _kernel.KERNEL_SCALAR:
        return feasible_offsets_scalar(
            schedule, reuse_graph, sender, receiver, slot, rho)
    return _kernel.feasible_offsets_vector(
        schedule, reuse_graph, sender, receiver, slot, rho)


def placement_is_valid(schedule: Schedule, reuse_graph: ChannelReuseGraph,
                       sender: int, receiver: int, slot: int, offset: int,
                       rho: float) -> bool:
    """Full reuse-constraint check for a candidate placement."""
    if conflicts_in_slot(schedule, sender, receiver, slot):
        return False
    return offset_satisfies_channel_constraint(
        schedule, reuse_graph, sender, receiver, slot, offset, rho)


def validate_schedule(schedule: Schedule, reuse_graph: ChannelReuseGraph,
                      rho_t: float) -> Optional[str]:
    """Audit a finished schedule against the reuse constraints.

    Every shared cell must keep all its sender→other-receiver distances at
    or above ``rho_t`` (the weakest constraint RC/RA may have used).

    Returns:
        None if the schedule is valid, else a description of the first
        violation found.
    """
    for slot, offset, transmissions in schedule.occupied_cells():
        for i, first in enumerate(transmissions):
            for second in transmissions[i + 1:]:
                u, v = first.request.sender, first.request.receiver
                x, y = second.request.sender, second.request.receiver
                if {u, v} & {x, y}:
                    return (f"cell ({slot},{offset}): node shared between "
                            f"{first.request} and {second.request}")
                if not reuse_graph.at_least_hops_apart(u, y, rho_t):
                    return (f"cell ({slot},{offset}): {u}->{y} closer than "
                            f"rho_t={rho_t}")
                if not reuse_graph.at_least_hops_apart(x, v, rho_t):
                    return (f"cell ({slot},{offset}): {x}->{v} closer than "
                            f"rho_t={rho_t}")
    return None
