"""The transmission schedule: a slot × channel-offset cell grid.

The network manager's output is an assignment of transmission attempts to
(time slot, channel offset) cells over one hyperperiod.  This structure
maintains the bookkeeping the schedulers and the laxity heuristic query on
their hot paths:

* ``busy[node, slot]`` — whether a node transmits or receives in a slot
  (transmission-conflict checks, laxity's ``q`` terms);
* per-(slot, offset) entry lists — channel-constraint checks and reuse
  statistics;
* per-slot used-offset bitmasks — fast "any free channel?" queries;
* incremental NumPy occupancy arrays — per-cell occupant counts plus
  sender/receiver index planes, consumed wholesale by the vectorized
  placement kernel (:mod:`repro.core.kernel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.core.kernel import INFINITE_DISTANCE
from repro.core.transmissions import TransmissionRequest


@dataclass(frozen=True)
class ScheduledTransmission:
    """A transmission request bound to a (slot, channel offset) cell."""

    request: TransmissionRequest
    slot: int
    offset: int

    def __str__(self) -> str:
        return f"{self.request} @ slot {self.slot} offset {self.offset}"


class Schedule:
    """A mutable transmission schedule over one hyperperiod.

    Attributes:
        num_nodes: Number of devices.
        num_slots: Hyperperiod length in slots.
        num_offsets: Number of channel offsets ``|M|``.
    """

    def __init__(self, num_nodes: int, num_slots: int, num_offsets: int):
        if num_nodes <= 0 or num_slots <= 0 or num_offsets <= 0:
            raise ValueError("dimensions must be positive")
        self.num_nodes = num_nodes
        self.num_slots = num_slots
        self.num_offsets = num_offsets
        self._entries: List[ScheduledTransmission] = []
        self._busy = np.zeros((num_nodes, num_slots), dtype=bool)
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        self._used_mask = np.zeros(num_slots, dtype=np.int32)
        self._slot_entries: Dict[int, List[int]] = {}
        # Occupancy arrays for the vectorized kernel: per-cell occupant
        # counts plus sender/receiver index planes.  The occupant
        # capacity (3rd axis) starts at zero and doubles on demand, so
        # empty schedules stay cheap.
        self._occ_count = np.zeros((num_slots, num_offsets), dtype=np.int32)
        self._occ_senders = np.zeros((num_slots, num_offsets, 0),
                                     dtype=np.int32)
        self._occ_receivers = np.zeros((num_slots, num_offsets, 0),
                                       dtype=np.int32)
        # Incremental per-link min-reuse-distance stacks, created and
        # queried by repro.core.kernel; add() keeps them current.
        self._link_state = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, request: TransmissionRequest, slot: int, offset: int
            ) -> ScheduledTransmission:
        """Bind a request to a cell.

        Performs sanity checks (bounds and transmission-conflict freedom)
        but *not* channel-constraint checks — those depend on the reuse
        policy and are the scheduler's job.

        Raises:
            ValueError: On out-of-range slot/offset or a node conflict.
        """
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
        if not 0 <= offset < self.num_offsets:
            raise ValueError(
                f"offset {offset} out of range [0, {self.num_offsets})")
        if self._busy[request.sender, slot] or self._busy[request.receiver, slot]:
            raise ValueError(
                f"node conflict placing {request} at slot {slot}")
        return self._bind(request, slot, offset)

    def force_add(self, request: TransmissionRequest, slot: int, offset: int
                  ) -> ScheduledTransmission:
        """Bind a request to a cell, skipping the node-conflict check.

        For artifact loading and audit fixtures only: re-materializing a
        schedule dump must not sanitize it — deciding whether the result
        is valid is the auditor's job (:mod:`repro.validate.audit`), and
        the corrupt-schedule fixtures rely on being able to represent
        invalid placements.  Bounds are still enforced (the backing
        arrays require in-range indices); bookkeeping is updated exactly
        as in :meth:`add`.
        """
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range [0, {self.num_slots})")
        if not 0 <= offset < self.num_offsets:
            raise ValueError(
                f"offset {offset} out of range [0, {self.num_offsets})")
        return self._bind(request, slot, offset)

    def _bind(self, request: TransmissionRequest, slot: int, offset: int
              ) -> ScheduledTransmission:
        entry = ScheduledTransmission(request, slot, offset)
        index = len(self._entries)
        self._entries.append(entry)
        self._busy[request.sender, slot] = True
        self._busy[request.receiver, slot] = True
        self._cells.setdefault((slot, offset), []).append(index)
        self._used_mask[slot] |= (1 << offset)
        self._slot_entries.setdefault(slot, []).append(index)
        lane = int(self._occ_count[slot, offset])
        if lane >= self._occ_senders.shape[2]:
            self._grow_occupancy(lane + 1)
        self._occ_senders[slot, offset, lane] = request.sender
        self._occ_receivers[slot, offset, lane] = request.receiver
        self._occ_count[slot, offset] = lane + 1
        if self._link_state is not None:
            self._update_link_distances(request.sender, request.receiver,
                                        slot, offset)
        return entry

    def clone(self) -> "Schedule":
        """An independent deep copy sharing only immutable pieces.

        Entries are frozen dataclasses and safe to share; every mutable
        bookkeeping structure — busy matrix, cell/slot index maps,
        used-offset masks, occupancy planes, and the kernel's
        incremental distance stacks — is copied so mutations of the
        clone (``add``/``evict``) never leak into the original.  The
        incremental repair path (:mod:`repro.core.repair`) edits a clone
        so the manager's rollback can keep serving the old schedule.
        """
        dup = Schedule.__new__(Schedule)
        dup.num_nodes = self.num_nodes
        dup.num_slots = self.num_slots
        dup.num_offsets = self.num_offsets
        dup._entries = list(self._entries)
        dup._busy = self._busy.copy()
        dup._cells = {cell: list(ix) for cell, ix in self._cells.items()}
        dup._used_mask = self._used_mask.copy()
        dup._slot_entries = {slot: list(ix)
                             for slot, ix in self._slot_entries.items()}
        dup._occ_count = self._occ_count.copy()
        dup._occ_senders = self._occ_senders.copy()
        dup._occ_receivers = self._occ_receivers.copy()
        dup._link_state = (None if self._link_state is None
                           else self._link_state.clone())
        return dup

    def evict(self, indices: Iterable[int]) -> List[ScheduledTransmission]:
        """Remove entries by index, rolling back all bookkeeping.

        The inverse of :meth:`add` for a batch of entries: the busy
        matrix, cell and slot index maps, used-offset masks, occupancy
        planes, and the kernel's incremental distance stacks are all
        restored to exactly the state a fresh schedule containing only
        the surviving entries would have (the auditor's bookkeeping
        checks cross-verify this).  Surviving entries keep their
        relative placement order but are re-indexed, so previously held
        entry indices are invalid after eviction.

        Args:
            indices: Positions into :attr:`entries` to remove.

        Returns:
            The evicted transmissions, in index order.

        Raises:
            IndexError: When an index is out of range.
        """
        doomed = sorted({int(i) for i in indices})
        if not doomed:
            return []
        if doomed[0] < 0 or doomed[-1] >= len(self._entries):
            raise IndexError(
                f"evict index out of range [0, {len(self._entries)})")
        doomed_set = set(doomed)
        evicted = [self._entries[i] for i in doomed]
        affected_cells = {(e.slot, e.offset) for e in evicted}
        affected_slots = {e.slot for e in evicted}
        self._entries = [entry for i, entry in enumerate(self._entries)
                         if i not in doomed_set]
        # Survivor indices shifted: rebuild both index maps in one pass
        # (linear in schedule size, far below placement cost).
        cells: Dict[Tuple[int, int], List[int]] = {}
        slot_entries: Dict[int, List[int]] = {}
        for i, entry in enumerate(self._entries):
            cells.setdefault((entry.slot, entry.offset), []).append(i)
            slot_entries.setdefault(entry.slot, []).append(i)
        self._cells = cells
        self._slot_entries = slot_entries
        # Busy columns and used-offset masks of the touched slots are
        # recomputed from the survivors rather than unset bit-by-bit:
        # force_add permits node collisions, so a bit may be owed to
        # more than one entry.
        for slot in affected_slots:
            self._busy[:, slot] = False
            mask = 0
            for i in slot_entries.get(slot, ()):
                entry = self._entries[i]
                self._busy[entry.request.sender, slot] = True
                self._busy[entry.request.receiver, slot] = True
                mask |= (1 << entry.offset)
            self._used_mask[slot] = mask
        # Occupancy lanes of the touched cells: rewrite live lanes from
        # the survivors and zero the tail so stale node indices never
        # linger past the count.
        for slot, offset in affected_cells:
            survivors = cells.get((slot, offset), ())
            for lane, i in enumerate(survivors):
                entry = self._entries[i]
                self._occ_senders[slot, offset, lane] = entry.request.sender
                self._occ_receivers[slot, offset, lane] = entry.request.receiver
            count = len(survivors)
            self._occ_count[slot, offset] = count
            self._occ_senders[slot, offset, count:] = 0
            self._occ_receivers[slot, offset, count:] = 0
        if self._link_state is not None:
            self._refresh_link_distances(affected_cells, affected_slots)
        return evicted

    def _refresh_link_distances(self, cells: Iterable[Tuple[int, int]],
                                slots: Iterable[int]) -> None:
        """Recompute the kernel's distance rows for the given cells.

        ``add`` only ever *lowers* distances (one vectorized minimum per
        occupant), so removing an occupant needs a from-scratch minimum
        over each touched cell's survivors, then a per-slot ``best``
        refresh.
        """
        state = self._link_state
        n = state.count
        if not n:
            return
        for slot, offset in cells:
            row = state.dist[slot, offset, :n]
            row[:] = INFINITE_DISTANCE
            for i in self._cells.get((slot, offset), ()):
                request = self._entries[i].request
                np.minimum(row,
                           state.occupant_candidates(request.sender,
                                                     request.receiver),
                           out=row)
        for slot in slots:
            state.dist[slot, :, :n].max(axis=0, out=state.best[slot, :n])

    def _update_link_distances(self, x: int, y: int, slot: int,
                               offset: int) -> None:
        """Fold a new occupant ``(x, y)`` of cell ``(slot, offset)`` into
        every tracked link's min-reuse-distance row (see
        :mod:`repro.core.kernel`): one vectorized minimum over links."""
        state = self._link_state
        n = state.count
        if not n:
            return
        cell = state.dist[slot, offset, :n]
        np.minimum(cell, state.occupant_candidates(x, y), out=cell)
        state.dist[slot, :, :n].max(axis=0, out=state.best[slot, :n])

    def _grow_occupancy(self, needed: int) -> None:
        """Double the occupant capacity of the kernel arrays."""
        capacity = max(needed, 2 * max(self._occ_senders.shape[2], 1))
        grown = np.zeros((self.num_slots, self.num_offsets, capacity),
                         dtype=np.int32)
        grown[:, :, :self._occ_senders.shape[2]] = self._occ_senders
        self._occ_senders = grown
        grown = np.zeros((self.num_slots, self.num_offsets, capacity),
                         dtype=np.int32)
        grown[:, :, :self._occ_receivers.shape[2]] = self._occ_receivers
        self._occ_receivers = grown

    # ------------------------------------------------------------------
    # Queries used by the schedulers
    # ------------------------------------------------------------------

    @property
    def entries(self) -> List[ScheduledTransmission]:
        """All scheduled transmissions, in placement order.

        The live internal list (callers must not mutate it) — this
        property sits on simulator and analysis hot loops, and copying
        thousands of entries per access dominated their profiles.
        """
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def node_busy(self, node: int, slot: int) -> bool:
        """Whether a node transmits or receives in a slot."""
        return bool(self._busy[node, slot])

    def conflict_mask(self, sender: int, receiver: int,
                      start: int, end: int) -> np.ndarray:
        """Boolean mask over ``[start, end]`` of slots conflicting for a link.

        ``mask[i]`` is True iff slot ``start + i`` already contains a
        transmission sharing the sender or the receiver.
        """
        if start > end:
            return np.zeros(0, dtype=bool)
        window = slice(start, end + 1)
        return self._busy[sender, window] | self._busy[receiver, window]

    def conflict_count(self, sender: int, receiver: int,
                       start: int, end: int) -> int:
        """Number of conflicting slots in ``[start, end]`` for a link.

        This is the paper's ``q_{start,end}^t`` term in the laxity formula.
        """
        return int(np.count_nonzero(
            self.conflict_mask(sender, receiver, start, end)))

    def cell(self, slot: int, offset: int) -> List[ScheduledTransmission]:
        """Transmissions scheduled in a (slot, offset) cell."""
        return [self._entries[i] for i in self._cells.get((slot, offset), [])]

    def cell_size(self, slot: int, offset: int) -> int:
        """Number of transmissions in a cell."""
        return int(self._occ_count[slot, offset])

    @staticmethod
    def _set_bits(mask: int) -> List[int]:
        """Indices of the set bits of ``mask``, ascending."""
        bits = []
        while mask:
            low = mask & -mask
            bits.append(low.bit_length() - 1)
            mask ^= low
        return bits

    def used_offsets(self, slot: int) -> List[int]:
        """Channel offsets with at least one transmission in a slot."""
        return self._set_bits(int(self._used_mask[slot]))

    def free_offsets(self, slot: int) -> List[int]:
        """Channel offsets with no transmission in a slot."""
        full = (1 << self.num_offsets) - 1
        return self._set_bits(~int(self._used_mask[slot]) & full)

    def first_free_offset(self, slot: int) -> int:
        """Lowest unused channel offset in a slot (-1 when the slot is
        full) — the NR fast path's pick, without building a list."""
        full = (1 << self.num_offsets) - 1
        free = ~int(self._used_mask[slot]) & full
        return (free & -free).bit_length() - 1 if free else -1

    def has_free_offset(self, slot: int) -> bool:
        """Whether any channel offset in the slot is unused."""
        return int(self._used_mask[slot]).bit_count() < self.num_offsets

    def free_offset_slots(self, start: int, end: int) -> np.ndarray:
        """Mask over ``[start, end]``: True where some offset is free."""
        if start > end:
            return np.zeros(0, dtype=bool)
        full = (1 << self.num_offsets) - 1
        return self._used_mask[start:end + 1] != full

    def nr_candidate_slots(self, sender: int, receiver: int,
                           start: int, end: int) -> np.ndarray:
        """Mask over ``[start, end]``: slots that are conflict-free for
        the link *and* have a free offset — the ρ = ∞ feasibility test,
        fused into three vector ops for the placement hot path."""
        window = slice(start, end + 1)
        full = (1 << self.num_offsets) - 1
        mask = self._used_mask[window] != full
        conflict = self._busy[sender, window] | self._busy[receiver, window]
        # free & ~conflict, without materializing the inverted mask.
        np.greater(mask, conflict, out=mask)
        return mask

    def slot_transmissions(self, slot: int) -> List[ScheduledTransmission]:
        """All transmissions in a slot (any offset) — the paper's T_s."""
        return [self._entries[i] for i in self._slot_entries.get(slot, [])]

    # ------------------------------------------------------------------
    # Kernel views (read-only; see repro.core.kernel)
    # ------------------------------------------------------------------

    def occupancy(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The kernel's occupancy state: ``(counts, senders, receivers)``.

        ``counts`` is ``(num_slots, num_offsets)`` occupant counts;
        ``senders``/``receivers`` are ``(num_slots, num_offsets, K)``
        node-index planes where only the first ``counts[s, c]`` lanes of
        cell ``(s, c)`` are meaningful.  Callers must not mutate these.
        """
        return self._occ_count, self._occ_senders, self._occ_receivers

    def busy_matrix(self) -> np.ndarray:
        """The ``(num_nodes, num_slots)`` busy matrix (do not mutate)."""
        return self._busy

    # ------------------------------------------------------------------
    # Whole-schedule queries (metrics, simulation)
    # ------------------------------------------------------------------

    def occupied_cells(self) -> Iterator[Tuple[int, int, List[ScheduledTransmission]]]:
        """Yield ``(slot, offset, transmissions)`` for every non-empty cell."""
        for (slot, offset), indices in sorted(self._cells.items()):
            yield slot, offset, [self._entries[i] for i in indices]

    def reused_cells(self) -> List[Tuple[int, int, List[ScheduledTransmission]]]:
        """Cells holding more than one transmission (channel reuse)."""
        return [(s, c, txs) for s, c, txs in self.occupied_cells()
                if len(txs) > 1]

    def num_reused_cells(self) -> int:
        """Number of cells where a channel is shared."""
        return len(self.reused_cells())

    def reuse_links(self) -> List[Tuple[int, int]]:
        """Directed links that appear in at least one shared cell."""
        links = set()
        for _, _, transmissions in self.reused_cells():
            for entry in transmissions:
                links.add(entry.request.link)
        return sorted(links)

    def entries_by_slot(self) -> Dict[int, List[ScheduledTransmission]]:
        """All transmissions grouped by slot (for the simulator)."""
        return {slot: [self._entries[i] for i in indices]
                for slot, indices in sorted(self._slot_entries.items())}

    def makespan(self) -> int:
        """Last occupied slot + 1, or 0 for an empty schedule."""
        if not self._slot_entries:
            return 0
        return max(self._slot_entries) + 1

    def signature(self) -> List[tuple]:
        """Order-preserving tuple view of every placement.

        One tuple per entry, in placement order, carrying the full
        request identity plus its cell — two schedules are bit-identical
        iff their signatures are equal.  The benchmark's kernel
        equivalence check and the scheduling service's response hashing
        both compare through this form.
        """
        return [(e.slot, e.offset, r.flow_id, r.instance, r.hop_index,
                 r.attempt, r.sender, r.receiver, r.release_slot,
                 r.deadline_slot)
                for e in self._entries
                for r in (e.request,)]

    def canonical_hash(self) -> str:
        """SHA-256 over the canonical JSON form of this schedule.

        Covers dimensions and the full :meth:`signature`, so any change
        to any placement (or to placement *order*) changes the hash.
        Two processes that built the same schedule — service worker and
        direct library call, scalar and vector kernel — agree on it.
        """
        import hashlib
        import json

        canonical = json.dumps(
            {"num_nodes": self.num_nodes, "num_slots": self.num_slots,
             "num_offsets": self.num_offsets, "entries": self.signature()},
            separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def validate_basic(self) -> None:
        """Re-check structural invariants (used by tests).

        Verifies that no two transmissions in a slot share a node and that
        the busy matrix matches the entry list.

        Raises:
            AssertionError: If an invariant is violated.
        """
        busy_check = np.zeros_like(self._busy)
        for slot, indices in self._slot_entries.items():
            seen = set()
            for i in indices:
                entry = self._entries[i]
                nodes = {entry.request.sender, entry.request.receiver}
                assert not (nodes & seen), (
                    f"transmission conflict in slot {slot}")
                seen |= nodes
                busy_check[entry.request.sender, slot] = True
                busy_check[entry.request.receiver, slot] = True
        assert np.array_equal(busy_check, self._busy), "busy matrix mismatch"
        for (slot, offset), indices in self._cells.items():
            assert int(self._occ_count[slot, offset]) == len(indices), (
                f"occupancy count mismatch in cell ({slot},{offset})")
            for lane, i in enumerate(indices):
                entry = self._entries[i]
                assert (int(self._occ_senders[slot, offset, lane])
                        == entry.request.sender), "occupancy sender mismatch"
                assert (int(self._occ_receivers[slot, offset, lane])
                        == entry.request.receiver), "occupancy receiver mismatch"
