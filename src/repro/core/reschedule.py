"""Rescheduling links degraded by channel reuse (closing Section VI's loop).

The detection policy's purpose is remediation: "links can be reassigned
to different channels or time slots" once the K-S test attributes their
degradation to channel reuse.  This module implements that reassignment:
given a finished schedule and a set of *victim links*, it rebuilds the
schedule with the same policy but with every victim barred from sharing
a cell — their transmissions are placed under the no-reuse rule while
everything else keeps the original policy's freedom.

Rebuilding (rather than patching cells in place) preserves every
invariant the schedulers guarantee — precedence, releases, deadlines,
conflict-freedom — which an in-place cell swap cannot do in general.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set, Tuple

from repro.core.constraints import NO_REUSE
from repro.core.schedule import Schedule
from repro.core.scheduler import (
    FixedPriorityScheduler,
    PlacementPolicy,
    SchedulingResult,
    find_slot,
)
from repro.core.transmissions import TransmissionRequest
from repro.flows.flow import Flow, FlowSet
from repro.network.graphs import ChannelReuseGraph

Link = Tuple[int, int]


@dataclass
class ReuseBarrierPolicy:
    """Wraps a placement policy, forcing victim links into exclusive cells.

    Transmissions over a *victim link* (either direction) are placed with
    ρ = ∞ — an unshared channel offset — and their cells are additionally
    protected from later sharing by the inner policy only to the extent
    the inner policy already respects occupied cells' constraints; to
    make the protection airtight, transmissions of non-victim links also
    refuse to join a cell that already contains a victim transmission.

    Attributes:
        inner: The policy used for non-victim transmissions.
        victim_links: Links whose reliability the detection policy
            attributed to channel reuse.
    """

    inner: PlacementPolicy
    victim_links: Set[Link]

    def __post_init__(self) -> None:
        # Bar both directions: the ACK travels the reverse way.
        expanded = set()
        for u, v in self.victim_links:
            expanded.add((u, v))
            expanded.add((v, u))
        self.victim_links = expanded
        self.name = f"{self.inner.name}+barrier"
        # The crossover-aware auto kernel resolves on the *inner*
        # policy's behavior — the barrier only redirects victims to
        # exclusive cells, which neither kernel accelerates.
        self.kernel_policy_name = self.inner.name

    def start_flow(self, flow: Flow) -> None:
        """Forward the flow hook to the inner policy."""
        self.inner.start_flow(flow)

    def place(self, schedule: Schedule, reuse_graph: ChannelReuseGraph,
              request: TransmissionRequest, earliest: int,
              remaining: Sequence[TransmissionRequest],
              ) -> Optional[Tuple[int, int]]:
        """Place a request, keeping victim links out of shared cells."""
        if request.link in self.victim_links:
            return self._place_exclusive(schedule, reuse_graph, request,
                                         earliest)
        placement = self.inner.place(schedule, reuse_graph, request,
                                     earliest, remaining)
        while placement is not None:
            slot, offset = placement
            occupants = schedule.cell(slot, offset)
            if not any(e.request.link in self.victim_links
                       for e in occupants):
                return placement
            # The inner policy tried to join a protected cell; retry from
            # the next slot (conservative but correct — protected cells
            # are rare).
            placement = self.inner.place(schedule, reuse_graph, request,
                                         slot + 1, remaining)
        return None

    def _place_exclusive(self, schedule: Schedule,
                         reuse_graph: ChannelReuseGraph,
                         request: TransmissionRequest,
                         earliest: int) -> Optional[Tuple[int, int]]:
        """Earliest slot with a fully unused channel offset."""
        return find_slot(schedule, reuse_graph, request, NO_REUSE, earliest)


def reschedule_without_reuse_on(flow_set: FlowSet, num_nodes: int,
                                num_offsets: int,
                                reuse_graph: ChannelReuseGraph,
                                policy: PlacementPolicy,
                                victim_links: Iterable[Link],
                                attempts_per_link: int = 2,
                                mode: str = "rebuild",
                                schedule: Optional[Schedule] = None,
                                ) -> SchedulingResult:
    """Re-schedule with victim links barred from channel reuse.

    Args:
        flow_set: The routed, priority-ordered flows (same input as the
            original scheduling run).
        num_nodes: Topology size.
        num_offsets: Number of channels in use.
        reuse_graph: The channel reuse graph.
        policy: The original placement policy (fresh instance).
        victim_links: Links the detection policy flagged as
            reuse-degraded (direction-insensitive).
        attempts_per_link: Source-routing attempt count.
        mode: ``"rebuild"`` re-runs the scheduler from scratch under a
            :class:`ReuseBarrierPolicy`; ``"repair"`` warm-starts from
            the running ``schedule`` via :mod:`repro.core.repair` —
            evicting only the victims' blast radius and re-placing it —
            and falls back to the full rebuild when repair cannot place
            every evicted transmission.
        schedule: The running schedule ``mode="repair"`` starts from
            (never mutated).

    Returns:
        The new scheduling result.  The workload may become
        unschedulable if the victims' slots cannot be found exclusively —
        the operator's signal that more channels (or a looser ρ_t) are
        needed.
    """
    if mode not in ("rebuild", "repair"):
        raise ValueError(f"unknown mode: {mode!r}")
    victims = set(victim_links)
    if mode == "repair":
        if schedule is None:
            raise ValueError("mode='repair' needs the running schedule")
        from repro.core.repair import ChangeSet, repair_schedule

        outcome = repair_schedule(
            schedule, flow_set, reuse_graph,
            ChangeSet(victims=tuple(sorted(victims))),
            rho_t=getattr(policy, "rho_t", NO_REUSE),
            policy_name=policy.name, attempts_per_link=attempts_per_link)
        if outcome.schedulable:
            return SchedulingResult(
                schedulable=True, schedule=outcome.schedule,
                flow_set=flow_set, policy_name=f"{policy.name}+repair",
                elapsed_s=outcome.elapsed_s)
        # Repair failed placement: fall back to the full rebuild below.
    barrier = ReuseBarrierPolicy(inner=policy, victim_links=victims)
    scheduler = FixedPriorityScheduler(
        num_nodes=num_nodes, num_offsets=num_offsets,
        reuse_graph=reuse_graph, policy=barrier,
        attempts_per_link=attempts_per_link)
    return scheduler.run(flow_set)


def links_sharing_cells_with(schedule: Schedule,
                             links: Iterable[Link]) -> Set[Link]:
    """All links that share at least one cell with any of ``links``.

    Useful for impact analysis before rescheduling: these are the links
    whose interference environment changes when the victims move.
    """
    targets = set(links) | {(v, u) for u, v in links}
    affected: Set[Link] = set()
    for _, _, transmissions in schedule.reused_cells():
        cell_links = {e.request.link for e in transmissions}
        if cell_links & targets:
            affected |= cell_links - targets
    return affected
