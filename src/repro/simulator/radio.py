"""Ground-truth reception model for the slot simulator.

While the *scheduler* reasons with the hop-based interference model, the
simulated radio decides packet reception from SINR — received signal power
against noise plus the cumulative power of all concurrent same-channel
transmitters and any active external interferers — exactly the mismatch
the paper's reliability experiments (Figs. 8-11) probe.

A precomputed lookup table makes the SINR→PRR curve cheap to evaluate in
the per-slot hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.propagation.pathloss import dbm_to_mw
from repro.propagation.prr_model import PrrCurve

#: The lookup used by the simulator is the (optionally grey-region
#: smoothed) propagation curve; the alias is kept because the simulator's
#: callers think of it as a lookup table.
PrrLookup = PrrCurve


@dataclass(frozen=True)
class ReceptionDecision:
    """Outcome of one reception attempt (kept for tracing/tests)."""

    success: bool
    sinr_db: float
    success_probability: float


def sinr_at_receiver(signal_dbm: float, noise_dbm: float,
                     interference_dbm: Sequence[float]) -> float:
    """SINR in dB with interference summed in the linear domain."""
    noise_mw = float(dbm_to_mw(noise_dbm))
    total_interference_mw = 0.0
    for power in interference_dbm:
        total_interference_mw += float(dbm_to_mw(power))
    signal_mw = float(dbm_to_mw(signal_dbm))
    denominator = noise_mw + total_interference_mw
    if signal_mw <= 0.0:
        return float("-inf")
    return 10.0 * float(np.log10(signal_mw / denominator))


def decide_reception(signal_dbm: float, noise_dbm: float,
                     interference_dbm: Sequence[float],
                     lookup: PrrLookup,
                     rng: np.random.Generator) -> ReceptionDecision:
    """Draw the success of one reception attempt.

    The capture effect falls out naturally: if the intended signal is
    strong enough relative to the interferers (SINR above the transition
    region), the packet survives concurrent transmissions.
    """
    sinr = sinr_at_receiver(signal_dbm, noise_dbm, interference_dbm)
    probability = lookup(sinr)
    return ReceptionDecision(
        success=bool(rng.random() < probability),
        sinr_db=sinr,
        success_probability=probability,
    )
