"""TSCH network simulator with SINR-based reception.

Two engines share one pinned random-draw plan and produce bit-identical
statistics: the slot-driven oracle (:class:`TschSimulator` with
``engine="slot"``) and the event-driven batched engine
(:mod:`repro.simulator.events`, ``engine="event"``) that vectorizes all
Monte-Carlo repetitions per scheduled slot.  ``engine="auto"`` picks by
repetition count.
"""

from repro.simulator.engine import (
    ENGINE_AUTO,
    ENGINE_EVENT,
    ENGINE_SLOT,
    ENGINES,
    EVENT_MIN_REPETITIONS,
    SimulationConfig,
    TschSimulator,
    resolve_engine,
)
from repro.simulator.events import (
    DrawPlan,
    build_draw_plan,
    repetition_draws,
)
from repro.simulator.interference import (
    WIFI_INBAND_FRACTION_DB,
    WifiInterferer,
    interferer_rssi_matrix,
    place_interferer_pairs,
)
from repro.simulator.radio import (
    PrrLookup,
    ReceptionDecision,
    decide_reception,
    sinr_at_receiver,
)
from repro.simulator.stats import (
    AttemptCounter,
    BatchedAccumulator,
    RepetitionRecord,
    SimulationStats,
)

__all__ = [
    "AttemptCounter",
    "BatchedAccumulator",
    "DrawPlan",
    "ENGINES",
    "ENGINE_AUTO",
    "ENGINE_EVENT",
    "ENGINE_SLOT",
    "EVENT_MIN_REPETITIONS",
    "PrrLookup",
    "ReceptionDecision",
    "RepetitionRecord",
    "SimulationConfig",
    "SimulationStats",
    "TschSimulator",
    "WIFI_INBAND_FRACTION_DB",
    "WifiInterferer",
    "build_draw_plan",
    "decide_reception",
    "interferer_rssi_matrix",
    "place_interferer_pairs",
    "repetition_draws",
    "resolve_engine",
    "sinr_at_receiver",
]
