"""Slot-driven TSCH network simulator with SINR-based reception."""

from repro.simulator.engine import SimulationConfig, TschSimulator
from repro.simulator.interference import (
    WIFI_INBAND_FRACTION_DB,
    WifiInterferer,
    interferer_rssi_matrix,
    place_interferer_pairs,
)
from repro.simulator.radio import (
    PrrLookup,
    ReceptionDecision,
    decide_reception,
    sinr_at_receiver,
)
from repro.simulator.stats import (
    AttemptCounter,
    RepetitionRecord,
    SimulationStats,
)

__all__ = [
    "AttemptCounter",
    "PrrLookup",
    "ReceptionDecision",
    "RepetitionRecord",
    "SimulationConfig",
    "SimulationStats",
    "TschSimulator",
    "WIFI_INBAND_FRACTION_DB",
    "WifiInterferer",
    "decide_reception",
    "interferer_rssi_matrix",
    "place_interferer_pairs",
    "sinr_at_receiver",
]
