"""Event-driven, seed-batched execution of a TSCH schedule.

The slot engine (:mod:`repro.simulator.engine`) replays a schedule one
repetition at a time in pure python.  This module is the fast path: it
compiles the schedule into per-slot *transmission events* (only slots
with scheduled cells exist — unoccupied ASNs are never visited) and
executes all Monte-Carlo repetitions of one run through vectorized numpy
passes, one batched SINR/reception evaluation per event instead of one
python loop iteration per (repetition, entry).

Both engines share one *draw plan* (:class:`DrawPlan`): a fixed,
outcome-independent layout of every random number a repetition may
consume.  Each repetition ``g = start_repetition + r`` owns an
independent substream ``np.random.default_rng([seed, g])`` from which
exactly two vectorized draws are taken — ``standard_normal(num_normals)``
then ``random(num_uniforms)`` — and both engines *index* into those
arrays positionally instead of drawing inline.  Because draw positions
never depend on simulated outcomes (a dark sender or an idle cell leaves
its draws unused rather than unallocated), the batched engine reproduces
the slot oracle seed-for-seed, bit-identically, and epochs can be run
batched or one-at-a-time with identical results.

Layout of one repetition's draws (see :class:`DrawPlan`):

* normals ``[0, P)`` — slow-fading drift, one per canonical unordered
  node pair (sorted), covering signal paths and interference paths;
* then per scheduled slot, ascending: ``E`` signal fast-fading draws
  (compiled entry order), ``E*E`` interference fast-fading draws
  (receiver-entry major, interfering-entry minor; the diagonal is
  reserved but unused), ``I*E`` interferer fast-fading draws
  (interferer major);
* uniforms, per scheduled slot: ``I`` interferer-activity draws then
  ``E`` reception draws (compiled entry order).

The parity contract with the slot oracle is enforced by
``repro.validate.fuzz._check_sim_batched`` and the golden-trace tests in
``tests/test_sim_events.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs import recorder as _obs
from repro.propagation.pathloss import dbm_to_mw
from repro.simulator.stats import BatchedAccumulator, SimulationStats

Pair = Tuple[int, int]

#: Target size of one chunk's draw matrices.  Small schedules run all
#: repetitions in a single pass; large ones are chunked to bound memory
#: (chunking never changes results — repetitions are independent
#: substreams).
_CHUNK_TARGET_BYTES = 64 * 1024 * 1024


def _unordered(a: int, b: int) -> Pair:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class DrawPlan:
    """Fixed layout of one repetition's random draws.

    Attributes:
        pairs: Canonical (sorted) unordered node pairs that may see
            slow-fading drift — all signal pairs plus all
            (interfering sender, victim receiver) pairs.
        pair_index: Pair -> position in the slow-fading normal block.
        slots: Scheduled slots, ascending (the event timeline).
        entry_counts: Compiled entries per slot, aligned with ``slots``.
        normal_offsets: Start of each slot's normal block, aligned with
            ``slots``.
        uniform_offsets: Start of each slot's uniform block.
        num_normals: Total standard-normal draws per repetition.
        num_uniforms: Total uniform draws per repetition.
        num_interferers: Interferer count the layout was built for.
    """

    pairs: Tuple[Pair, ...]
    pair_index: Dict[Pair, int]
    slots: Tuple[int, ...]
    entry_counts: Tuple[int, ...]
    normal_offsets: Tuple[int, ...]
    uniform_offsets: Tuple[int, ...]
    num_normals: int
    num_uniforms: int
    num_interferers: int

    # -- positional helpers (the documented layout; used by the
    #    golden-trace tests and the slot oracle) -----------------------

    def drift_index(self, node_a: int, node_b: int) -> int:
        """Normal index of the slow-fading draw for an unordered pair."""
        return self.pair_index[_unordered(node_a, node_b)]

    def signal_fast_index(self, slot_pos: int, entry: int) -> int:
        """Normal index of an entry's signal fast-fading draw."""
        return self.normal_offsets[slot_pos] + entry

    def interference_fast_index(self, slot_pos: int, entry: int,
                                other: int) -> int:
        """Normal index of the fast-fading draw on the interference path
        from compiled entry ``other``'s sender to ``entry``'s receiver."""
        count = self.entry_counts[slot_pos]
        return (self.normal_offsets[slot_pos] + count
                + entry * count + other)

    def interferer_fast_index(self, slot_pos: int, interferer: int,
                              entry: int) -> int:
        """Normal index of an external interferer's fast-fading draw at
        ``entry``'s receiver."""
        count = self.entry_counts[slot_pos]
        return (self.normal_offsets[slot_pos] + count + count * count
                + interferer * count + entry)

    def activity_uniform_index(self, slot_pos: int, interferer: int) -> int:
        """Uniform index of an interferer's duty-cycle draw."""
        return self.uniform_offsets[slot_pos] + interferer

    def reception_uniform_index(self, slot_pos: int, entry: int) -> int:
        """Uniform index of an entry's reception draw."""
        return (self.uniform_offsets[slot_pos] + self.num_interferers
                + entry)


def build_draw_plan(compiled: Dict[int, Sequence],
                    num_interferers: int) -> DrawPlan:
    """Build the draw layout for a compiled schedule.

    The layout depends only on the schedule's compiled per-slot entries
    and the interferer count — never on conditions overlays or simulated
    outcomes — so the same plan serves clean and faulted runs alike.
    """
    slots = tuple(sorted(compiled))
    pair_set = set()
    for slot in slots:
        entries = compiled[slot]
        for entry in entries:
            pair_set.add(_unordered(entry.sender, entry.receiver))
            for other in entries:
                if other is not entry:
                    pair_set.add(_unordered(other.sender, entry.receiver))
    pairs = tuple(sorted(pair_set))
    pair_index = {pair: i for i, pair in enumerate(pairs)}

    entry_counts = []
    normal_offsets = []
    uniform_offsets = []
    normal_cursor = len(pairs)
    uniform_cursor = 0
    for slot in slots:
        count = len(compiled[slot])
        entry_counts.append(count)
        normal_offsets.append(normal_cursor)
        uniform_offsets.append(uniform_cursor)
        normal_cursor += count + count * count + num_interferers * count
        uniform_cursor += num_interferers + count
    return DrawPlan(
        pairs=pairs,
        pair_index=pair_index,
        slots=slots,
        entry_counts=tuple(entry_counts),
        normal_offsets=tuple(normal_offsets),
        uniform_offsets=tuple(uniform_offsets),
        num_normals=normal_cursor,
        num_uniforms=uniform_cursor,
        num_interferers=num_interferers,
    )


def repetition_draws(plan: DrawPlan, seed: int,
                     global_repetition: int) -> Tuple[np.ndarray, np.ndarray]:
    """All random draws of one repetition, as two flat arrays.

    Repetition ``g`` owns the substream ``default_rng([seed, g])``; the
    normals are drawn first, then the uniforms.  This is the *entire*
    stochastic state of a repetition — both engines index into these
    arrays and never touch the generator again.
    """
    rng = np.random.default_rng([int(seed), int(global_repetition)])
    normals = rng.standard_normal(plan.num_normals)
    uniforms = rng.random(plan.num_uniforms)
    return normals, uniforms


def default_chunk_size(plan: DrawPlan, repetitions: int) -> int:
    """Repetitions per batch, targeting ``_CHUNK_TARGET_BYTES``."""
    per_rep = 8 * max(1, plan.num_normals + plan.num_uniforms)
    return max(1, min(repetitions, _CHUNK_TARGET_BYTES // per_rep))


@dataclass
class _SlotEvent:
    """One scheduled slot, pre-resolved into numpy form for the batch."""

    slot: int
    plan_pos: int
    senders: np.ndarray        # (E,) int
    receivers: np.ndarray      # (E,) int
    offsets: np.ndarray        # (E,) int
    packet: np.ndarray         # (E,) index into the packet table
    hop: np.ndarray            # (E,) int
    links: List[Pair]          # per-entry directed link
    shared: List[bool]         # per-entry cell category
    flow_ids: List[int]        # per-entry flow
    last_hop: List[bool]       # per-entry: does success deliver?
    dark_sender: np.ndarray    # (E,) bool
    dark_receiver: np.ndarray  # (E,) bool
    sig_base: np.ndarray       # (E, C) RSSI of each entry per env channel
    sig_pair: np.ndarray       # (E,) slow-fading pair index
    sig_atten: np.ndarray      # (E,) conditions attenuation
    int_base: np.ndarray       # (E, E, C) RSSI other.sender -> entry.receiver
    int_pair: np.ndarray       # (E, E) slow-fading pair index
    int_atten: np.ndarray      # (E, E) conditions attenuation
    not_self: np.ndarray       # (E, E) bool, False on the diagonal
    ifr_rssi: np.ndarray       # (I, E) interferer power at each receiver


def compile_events(simulator) -> Tuple[List[_SlotEvent], Dict[Pair, int]]:
    """Compile a simulator's schedule into batched slot events.

    Returns the event list (ascending slot order) and the packet table
    mapping ``(flow_id, instance)`` to a dense index for the vectorized
    progress state.
    """
    plan = simulator.draw_plan
    compiled = simulator.compiled
    rssi = simulator.environment.rssi_dbm
    conditions = simulator.conditions
    attenuation = conditions.pair_attenuation_db
    dark = conditions.dark_nodes
    interferer_rssi = simulator.interferer_rssi_dbm
    num_interferers = len(simulator.interferers)

    packet_index: Dict[Pair, int] = {}
    for slot in plan.slots:
        for entry in compiled[slot]:
            packet_index.setdefault((entry.flow_id, entry.instance),
                                    len(packet_index))

    events: List[_SlotEvent] = []
    for plan_pos, slot in enumerate(plan.slots):
        entries = compiled[slot]
        count = len(entries)
        senders = np.array([e.sender for e in entries], dtype=np.intp)
        receivers = np.array([e.receiver for e in entries], dtype=np.intp)
        sig_pair = np.array(
            [plan.drift_index(e.sender, e.receiver) for e in entries],
            dtype=np.intp)
        int_pair = np.array(
            [[plan.drift_index(o.sender, e.receiver) for o in entries]
             for e in entries], dtype=np.intp)
        events.append(_SlotEvent(
            slot=slot,
            plan_pos=plan_pos,
            senders=senders,
            receivers=receivers,
            offsets=np.array([e.offset for e in entries], dtype=np.int64),
            packet=np.array(
                [packet_index[(e.flow_id, e.instance)] for e in entries],
                dtype=np.intp),
            hop=np.array([e.hop_index for e in entries], dtype=np.int64),
            links=[(e.sender, e.receiver) for e in entries],
            shared=[e.shared_cell for e in entries],
            flow_ids=[e.flow_id for e in entries],
            last_hop=[e.hop_index + 1 == simulator.flow_hops[e.flow_id]
                      for e in entries],
            dark_sender=np.array([e.sender in dark for e in entries],
                                 dtype=bool),
            dark_receiver=np.array([e.receiver in dark for e in entries],
                                   dtype=bool),
            sig_base=rssi[senders, receivers, :],
            sig_pair=sig_pair,
            sig_atten=np.array(
                [attenuation.get((e.sender, e.receiver), 0.0)
                 for e in entries]),
            int_base=rssi[senders[np.newaxis, :], receivers[:, np.newaxis], :],
            int_pair=int_pair,
            int_atten=np.array(
                [[attenuation.get((o.sender, e.receiver), 0.0)
                  for o in entries] for e in entries]),
            not_self=~np.eye(count, dtype=bool),
            ifr_rssi=(interferer_rssi[:, receivers]
                      if num_interferers else np.zeros((0, count))),
        ))
    return events, packet_index


def run_event_batched(simulator, repetitions: int, start_repetition: int,
                      chunk_reps: int = None) -> SimulationStats:
    """Execute all repetitions through the batched event engine.

    Produces stats bit-identical to the slot oracle's
    ``TschSimulator._run`` for the same ``(seed, start_repetition)``.
    """
    plan = simulator.draw_plan
    events, packet_index = simulator.event_tables()
    num_packets = len(packet_index)
    num_interferers = len(simulator.interferers)
    num_logical = len(simulator.channel_map)
    seed = simulator.config.seed
    fast_sigma = simulator.config.fast_fading_sigma_db
    slow_sigma = simulator.config.slow_fading_sigma_db
    boost = simulator.conditions.interference_boost_db
    hyperperiod = simulator.hyperperiod
    noise_mw = float(dbm_to_mw(simulator.environment.noise_floor_dbm))
    env_of_logical = simulator.env_of_logical
    lookup = simulator.lookup

    duty = np.array([i.duty_cycle for i in simulator.interferers])
    # (I, M): does interferer i pollute the physical channel behind
    # logical index l?
    overlap = np.zeros((num_interferers, num_logical), dtype=bool)
    for i, channels in enumerate(simulator.interferer_channel_sets):
        for logical in range(num_logical):
            overlap[i, logical] = (
                simulator.channel_map.physical(logical) in channels)

    accumulator = BatchedAccumulator(repetitions,
                                     tuple(simulator.channel_map))
    for flow_id, count in simulator.instances_per_flow.items():
        accumulator.record_release(flow_id, count)

    chunk = chunk_reps or default_chunk_size(plan, repetitions)
    for chunk_start in range(0, repetitions, chunk):
        batch = min(chunk, repetitions - chunk_start)
        normals = np.empty((batch, plan.num_normals))
        uniforms = np.empty((batch, plan.num_uniforms))
        for row in range(batch):
            n, u = repetition_draws(
                plan, seed, start_repetition + chunk_start + row)
            normals[row] = n
            uniforms[row] = u

        progress = np.zeros((batch, max(1, num_packets)), dtype=np.int64)
        base_asn = ((start_repetition + chunk_start + np.arange(batch))
                    * hyperperiod)
        rep_rows = np.arange(batch)
        out = slice(chunk_start, chunk_start + batch)

        for event in events:
            count = len(event.links)
            active = progress[:, event.packet] == event.hop[np.newaxis, :]
            if not active.any():
                continue
            n0 = plan.normal_offsets[event.plan_pos]
            u0 = plan.uniform_offsets[event.plan_pos]
            radiating = active & ~event.dark_sender[np.newaxis, :]

            logical = ((base_asn[:, np.newaxis] + event.slot
                        + event.offsets[np.newaxis, :]) % num_logical)
            env_idx = env_of_logical[logical]

            # Signal power, matching the oracle's association order:
            # (((rssi + drift) + fast) - attenuation).
            sig_base = event.sig_base[np.arange(count)[np.newaxis, :],
                                      env_idx]
            drift = slow_sigma * normals[:, event.sig_pair]
            fast = fast_sigma * normals[:, n0:n0 + count]
            signal = ((sig_base + drift) + fast) - event.sig_atten
            signal_mw = np.power(10.0, signal / 10.0)

            # Intra-network interference: accumulated sequentially over
            # compiled-entry order with masked terms contributing an
            # exact 0.0, so the linear-domain sum associates exactly as
            # the oracle's python loop.
            interference_mw = np.zeros((batch, count))
            if count > 1:
                same_channel = (logical[:, :, np.newaxis]
                                == logical[:, np.newaxis, :])
                mask = (same_channel
                        & radiating[:, np.newaxis, :]
                        & event.not_self[np.newaxis, :, :])
                int_base = event.int_base[
                    np.arange(count)[np.newaxis, :, np.newaxis],
                    np.arange(count)[np.newaxis, np.newaxis, :],
                    env_idx[:, :, np.newaxis]]
                int_drift = slow_sigma * normals[:, event.int_pair]
                int_fast = fast_sigma * normals[
                    :, n0 + count:n0 + count + count * count
                    ].reshape(batch, count, count)
                term = ((((int_base + int_drift) + int_fast) + boost)
                        - event.int_atten[np.newaxis, :, :])
                term_mw = np.where(mask, np.power(10.0, term / 10.0), 0.0)
                for other in range(count):
                    interference_mw = interference_mw + term_mw[:, :, other]
            if num_interferers:
                active_interferers = (
                    uniforms[:, u0:u0 + num_interferers] < duty)
                ifr_cursor = n0 + count + count * count
                for i in range(num_interferers):
                    hit = (active_interferers[:, i][:, np.newaxis]
                           & overlap[i, logical])
                    ifr_fast = fast_sigma * normals[
                        :, ifr_cursor + i * count:
                        ifr_cursor + (i + 1) * count]
                    term = event.ifr_rssi[i][np.newaxis, :] + ifr_fast
                    interference_mw = interference_mw + np.where(
                        hit, np.power(10.0, term / 10.0), 0.0)

            with np.errstate(divide="ignore"):
                sinr = 10.0 * np.log10(
                    signal_mw / (noise_mw + interference_mw))
            probability = lookup.many(sinr)
            reception = uniforms[:, u0 + num_interferers:
                                 u0 + num_interferers + count]
            success = (radiating & (reception < probability)
                       & ~event.dark_receiver[np.newaxis, :])

            for e in range(count):
                attempted = active[:, e]
                if not attempted.any():
                    continue
                succeeded = success[:, e]
                att, succ = accumulator.link_counters(event.links[e],
                                                      event.shared[e])
                att[out] += attempted
                succ[out] += succeeded
                on_air = radiating[:, e]
                if on_air.any():
                    np.add.at(accumulator.channel_attempts,
                              (chunk_start + rep_rows[on_air],
                               logical[on_air, e]), 1)
                    if succeeded.any():
                        np.add.at(accumulator.channel_successes,
                                  (chunk_start + rep_rows[succeeded],
                                   logical[succeeded, e]), 1)
                if succeeded.any():
                    progress[succeeded, event.packet[e]] = event.hop[e] + 1
                    if event.last_hop[e]:
                        accumulator.flow_delivery_counter(
                            event.flow_ids[e])[out] += succeeded

    stats = accumulator.reduce()
    if _obs.ENABLED:
        _emit_observability(accumulator, repetitions)
    return stats


def _emit_observability(accumulator: BatchedAccumulator,
                        repetitions: int) -> None:
    """Emit the same ``sim.*`` counters and ``sim_repetition`` events the
    slot oracle emits, reconstructed from the batched accumulators."""
    recorder = _obs.RECORDER
    attempts = accumulator.attempts_per_repetition()
    successes = accumulator.successes_per_repetition()
    deliveries = accumulator.deliveries_per_repetition()
    outcomes = accumulator.combined_link_outcomes()
    recorder.count("sim.repetitions", repetitions)
    recorder.count("sim.attempts", int(attempts.sum()))
    recorder.count("sim.successes", int(successes.sum()))
    recorder.count("sim.deliveries", int(deliveries.sum()))
    for repetition in range(repetitions):
        links = {}
        for (sender, receiver), (att, succ) in sorted(outcomes.items()):
            if att[repetition]:
                links[f"{sender}->{receiver}"] = [int(att[repetition]),
                                                  int(succ[repetition])]
        recorder.event(
            "sim_repetition", repetition=repetition,
            attempts=int(attempts[repetition]),
            successes=int(successes[repetition]),
            deliveries=int(deliveries[repetition]),
            links=links)
