"""Environment condition overlays applied to one simulation run.

The network manager (:mod:`repro.manager`) advances the simulator in
health-report epochs and mutates the RF environment between epochs —
external interferer bursts, per-link fading degradation, node churn,
amplified intra-network interference.  A :class:`Conditions` object is
the resolved, simulator-facing form of those mutations for one epoch:
plain per-pair attenuations, a global interference boost, a set of dark
nodes, and extra interferers with their precomputed RSSI rows.

The simulator itself stays fault-agnostic: it consumes a ``Conditions``
overlay without knowing which :class:`~repro.manager.faults.FaultEvent`
produced it, so tests (and future fault kinds) can hand-build overlays
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.simulator.interference import WifiInterferer

Pair = Tuple[int, int]


@dataclass(frozen=True)
class Conditions:
    """Resolved environment mutations for one simulation run.

    Attributes:
        pair_attenuation_db: Extra path loss (dB) applied to signal *and*
            interference travelling between a directed node pair.  Callers
            wanting symmetric degradation list both directions.
        interference_boost_db: Gain (dB) added to every intra-network
            interference contribution (concurrent same-channel
            transmitters).  Models fading drift that couples reuse
            partners more strongly than the topology survey measured —
            degradation that *only* manifests in shared cells.
        dark_nodes: Nodes that are powered off: their transmissions
            deliver nothing and they contribute no interference.
        extra_interferers: Additional external interferers active for
            this run, on top of any the simulator was built with.
        extra_interferer_rssi_dbm: ``(len(extra_interferers), num_nodes)``
            received in-band power rows matching ``extra_interferers``.
    """

    pair_attenuation_db: Dict[Pair, float] = field(default_factory=dict)
    interference_boost_db: float = 0.0
    dark_nodes: FrozenSet[int] = frozenset()
    extra_interferers: Tuple[WifiInterferer, ...] = ()
    extra_interferer_rssi_dbm: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.extra_interferers:
            if self.extra_interferer_rssi_dbm is None:
                raise ValueError("extra_interferer_rssi_dbm is required "
                                 "when extra_interferers are given")
            if (self.extra_interferer_rssi_dbm.shape[0]
                    != len(self.extra_interferers)):
                raise ValueError(
                    "extra_interferer_rssi_dbm has "
                    f"{self.extra_interferer_rssi_dbm.shape[0]} rows for "
                    f"{len(self.extra_interferers)} interferers")

    def is_clean(self) -> bool:
        """True when the overlay mutates nothing."""
        return (not self.pair_attenuation_db
                and self.interference_boost_db == 0.0
                and not self.dark_nodes
                and not self.extra_interferers)

    def describe(self) -> str:
        """Short human-readable summary (for epoch reports)."""
        parts = []
        if self.pair_attenuation_db:
            pairs = len(self.pair_attenuation_db) // 2 or 1
            parts.append(f"degraded_pairs={pairs}")
        if self.interference_boost_db:
            parts.append(f"reuse_boost={self.interference_boost_db:+.1f}dB")
        if self.dark_nodes:
            parts.append(f"dark_nodes={sorted(self.dark_nodes)}")
        if self.extra_interferers:
            parts.append(f"interferers={len(self.extra_interferers)}")
        return ",".join(parts) if parts else "clean"


#: The no-op overlay (shared instance; Conditions is frozen).
CLEAN = Conditions()
