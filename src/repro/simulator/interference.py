"""External interference sources for the simulator.

The paper's detection experiments (Section VII-E) inject interference
with three pairs of Raspberry Pis — one pair per testbed floor — sending
1 Mbps UDP over WiFi channel 1, which overlaps 802.15.4 channels 11-14.
We model each interferer as a duty-cycled wideband transmitter at a fixed
position: in any slot where it is active, it adds its received power (at
each WSAN receiver) to the interference term of the SINR on every
overlapping 802.15.4 channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.mac.channels import channels_overlapping_wifi
from repro.network.node import Position
from repro.propagation.pathloss import LogDistancePathLoss
from repro.testbeds.layout import FloorPlan

#: Fraction of a 22 MHz WiFi signal's power falling inside one 2 MHz
#: 802.15.4 channel, in dB (10 * log10(2 / 22)).
WIFI_INBAND_FRACTION_DB = -10.4


@dataclass(frozen=True)
class WifiInterferer:
    """A WiFi interferer at a fixed position.

    Attributes:
        position: Transmitter location.
        wifi_channel: 2.4 GHz WiFi channel (1-13).
        tx_power_dbm: Radiated power (typical consumer device ≈ 15 dBm).
        duty_cycle: Probability the interferer transmits during any given
            10 ms slot.  1 Mbps UDP over a ~20 Mbps link plus protocol
            bursts is modeled as a moderate duty cycle.
    """

    position: Position
    wifi_channel: int = 1
    tx_power_dbm: float = 15.0
    duty_cycle: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in [0, 1]")

    def affected_channels(self) -> List[int]:
        """802.15.4 channels whose band this interferer pollutes."""
        return channels_overlapping_wifi(self.wifi_channel)

    def inband_tx_power_dbm(self) -> float:
        """Effective power landing inside one 802.15.4 channel."""
        return self.tx_power_dbm + WIFI_INBAND_FRACTION_DB


def place_interferer_pairs(plan: FloorPlan,
                           wifi_channel: int = 1,
                           tx_power_dbm: float = 15.0,
                           duty_cycle: float = 0.4) -> List[WifiInterferer]:
    """One interferer per floor, at the floor center (paper's setup).

    The paper uses one Raspberry-Pi *pair* per floor; the interference a
    WSAN node sees is dominated by the transmitting side, so each pair is
    modeled as a single transmitter at the floor's center.
    """
    interferers = []
    for floor in range(plan.num_floors):
        position = Position(plan.floor_width_m / 2.0,
                            plan.floor_depth_m / 2.0,
                            floor * plan.floor_height_m)
        interferers.append(WifiInterferer(
            position=position, wifi_channel=wifi_channel,
            tx_power_dbm=tx_power_dbm, duty_cycle=duty_cycle))
    return interferers


def interferer_rssi_matrix(interferers: Sequence[WifiInterferer],
                           node_positions: np.ndarray,
                           plan: FloorPlan,
                           pathloss: LogDistancePathLoss,
                           rng: np.random.Generator) -> np.ndarray:
    """Received in-band power of each interferer at each node, in dBm.

    Shape ``(num_interferers, num_nodes)``.  Includes a static shadowing
    draw per (interferer, node) pair.
    """
    num_interferers = len(interferers)
    num_nodes = node_positions.shape[0]
    rssi = np.empty((num_interferers, num_nodes))
    for i, interferer in enumerate(interferers):
        source = interferer.position
        source_floor = plan.floor_of(source)
        for node in range(num_nodes):
            target = Position(*node_positions[node])
            floors = abs(plan.floor_of(target) - source_floor)
            shadowing = float(pathloss.draw_shadowing(rng))
            rssi[i, node] = (interferer.inband_tx_power_dbm()
                             - pathloss.path_loss_db(
                                 source.distance_to(target), floors,
                                 shadowing))
    return rssi
