"""Slot-driven discrete-event execution of a TSCH schedule.

The simulator replays a computed schedule against the ground-truth RF
environment of a synthetic testbed:

* Channel hopping is applied per slot (``logical = (ASN + offset) mod M``),
  so a cell visits different physical channels in different repetitions.
* A scheduled transmission is *active* only when its packet is actually
  waiting at the sender — if the primary attempt on a hop succeeded, the
  reserved retransmission cell stays silent (source routing semantics).
* Reception is SINR-based: concurrent same-channel transmitters and any
  active WiFi interferers add power at the receiver, and the
  802.15.4 PRR curve (capture effect included) decides success.
* An optional :class:`~repro.simulator.conditions.Conditions` overlay
  mutates the environment for one run — extra interferers, per-pair
  attenuation, amplified reuse interference, dark nodes — which is how
  the network manager injects faults between health-report epochs.

Two engines execute the same model (``engine="slot" | "event" | "auto"``):

* **slot** — the pure-python oracle in this module: one repetition at a
  time, one entry at a time.
* **event** — the batched engine in :mod:`repro.simulator.events`: all
  repetitions advance together through vectorized numpy passes over the
  scheduled slots.

Both consume the same pinned draw plan (:class:`repro.simulator.events.
DrawPlan`): repetition ``g = start_repetition + r`` owns the substream
``np.random.default_rng([seed, g])`` and every draw has a fixed,
outcome-independent position, so the engines agree bit-for-bit on stats
and a run may be split across epochs (or batch chunks) without changing
a single outcome.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import Schedule
from repro.flows.flow import FlowSet
from repro.mac.channels import ChannelMap
from repro.obs import recorder as _obs
from repro.obs.profiling import timed as _timed
from repro.simulator.conditions import Conditions
from repro.simulator.events import (
    DrawPlan,
    build_draw_plan,
    repetition_draws,
    run_event_batched,
)
from repro.simulator.interference import WifiInterferer
from repro.propagation.prr_model import get_prr_curve
from repro.simulator.radio import sinr_at_receiver
from repro.simulator.stats import SimulationStats
from repro.testbeds.synth import RadioEnvironment

#: Engine names accepted by :meth:`TschSimulator.run` and
#: :class:`SimulationConfig.engine`.
ENGINE_SLOT = "slot"
ENGINE_EVENT = "event"
ENGINE_AUTO = "auto"
ENGINES = (ENGINE_SLOT, ENGINE_EVENT, ENGINE_AUTO)

#: Below this many repetitions the batched engine's per-slot array setup
#: costs more than it saves (measured breakeven is 3-4 repetitions on
#: WUSTL-sized schedules at 20-80 flows); ``auto`` keeps short probes on
#: the python oracle.
EVENT_MIN_REPETITIONS = 4


def resolve_engine(engine: str, repetitions: int) -> str:
    """Resolve an engine request to a concrete engine name.

    ``auto`` batches whenever the run has enough repetitions to amortize
    array setup; explicit names pass through.
    """
    if engine == ENGINE_SLOT or engine == ENGINE_EVENT:
        return engine
    if engine != ENGINE_AUTO:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}")
    if repetitions >= EVENT_MIN_REPETITIONS:
        return ENGINE_EVENT
    return ENGINE_SLOT


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for schedule execution.

    Attributes:
        seed: Seed for all stochastic draws (fading, reception, interferer
            activity).  Repetition ``g`` draws from the substream
            ``default_rng([seed, g])`` where ``g`` is the *global*
            repetition index (``start_repetition + r``), so outcomes
            depend only on ``(seed, g)`` — not on how a run is split
            across epochs or batches.
        fast_fading_sigma_db: Per-attempt multipath fading applied to
            every signal and interference power.
        slow_fading_sigma_db: Per-repetition, per-node-pair gain drift —
            links drift between the topology-collection phase and run
            time, over timescales longer than one hyperperiod.
        frame_bytes: Frame size for the PRR lookup (defaults to the
            environment's).
        engine: Execution engine — ``"slot"`` (python oracle),
            ``"event"`` (batched numpy), or ``"auto"`` (pick by
            repetition count).  Engines produce bit-identical stats;
            this only trades wall time.

    Consistency contract: the testbed's *measured* PRRs are expectations
    of the raw 802.15.4 curve over fading
    (:class:`repro.propagation.prr_model.PrrCurve` smoothing), so the
    environment's ``grey_sigma_db`` should equal
    ``sqrt(fast² + slow²)`` of the simulation config.  The defaults
    (3.0, 2.0 → 3.6) are matched to
    :class:`repro.testbeds.synth.SynthesisParams`.  Under that contract a
    link simulated in clean air converges to its measured PRR.
    """

    seed: int = 0
    fast_fading_sigma_db: float = 3.0
    slow_fading_sigma_db: float = 2.0
    frame_bytes: Optional[int] = None
    engine: str = ENGINE_AUTO

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")

    def total_fading_sigma_db(self) -> float:
        """Aggregate long-run fading spread (for the consistency contract)."""
        return float(np.hypot(self.fast_fading_sigma_db,
                              self.slow_fading_sigma_db))


@dataclass(frozen=True)
class _CompiledEntry:
    """A scheduled transmission, pre-resolved for the hot loop."""

    sender: int
    receiver: int
    offset: int
    flow_id: int
    instance: int
    hop_index: int
    shared_cell: bool


#: Compiled-entry cache: schedule -> (entry count, compiled dict).  The
#: manager loop re-instantiates a simulator every epoch (conditions
#: change) against the *same* schedule object; compiling once per
#: schedule instead of once per simulator keeps the epoch loop cheap.
#: Keyed weakly so dropped schedules free their compilation, and guarded
#: by the entry count so a mutated schedule (``Schedule.add`` only ever
#: appends) recompiles instead of serving stale cells.  A reschedule
#: produces a brand-new Schedule object, which misses the cache by
#: identity — invalidation is automatic.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[Schedule, Tuple[int, Dict[int, List[_CompiledEntry]]]]" = (
    weakref.WeakKeyDictionary())

#: Draw-plan cache: schedule -> {(entry count, interferer count): plan}.
#: The plan depends only on the compiled entries and how many interferers
#: the simulator carries (conditions may add some), so epochs that differ
#: only in attenuation/dark-node overlays share one plan.
_PLAN_CACHE: "weakref.WeakKeyDictionary[Schedule, Dict[Tuple[int, int], DrawPlan]]" = (
    weakref.WeakKeyDictionary())


def _compile(schedule: Schedule) -> Dict[int, List[_CompiledEntry]]:
    """Pre-resolve schedule entries per slot for the hot loop."""
    compiled: Dict[int, List[_CompiledEntry]] = {}
    shared_cells = {(s, c) for s, c, txs in schedule.occupied_cells()
                    if len(txs) > 1}
    for slot, entries in schedule.entries_by_slot().items():
        compiled[slot] = [
            _CompiledEntry(
                sender=e.request.sender,
                receiver=e.request.receiver,
                offset=e.offset,
                flow_id=e.request.flow_id,
                instance=e.request.instance,
                hop_index=e.request.hop_index,
                shared_cell=(slot, e.offset) in shared_cells,
            )
            for e in entries
        ]
    return compiled


def compiled_entries(schedule: Schedule) -> Dict[int, List[_CompiledEntry]]:
    """The schedule's compiled per-slot entries, cached across simulators."""
    cached = _COMPILE_CACHE.get(schedule)
    if cached is not None and cached[0] == len(schedule):
        return cached[1]
    compiled = _compile(schedule)
    _COMPILE_CACHE[schedule] = (len(schedule), compiled)
    return compiled


def _draw_plan(schedule: Schedule,
               compiled: Dict[int, List[_CompiledEntry]],
               num_interferers: int) -> DrawPlan:
    """The schedule's draw plan, cached alongside the compilation."""
    plans = _PLAN_CACHE.get(schedule)
    if plans is None:
        plans = {}
        _PLAN_CACHE[schedule] = plans
    key = (len(schedule), num_interferers)
    plan = plans.get(key)
    if plan is None:
        plan = build_draw_plan(compiled, num_interferers)
        plans[key] = plan
    return plan


class TschSimulator:
    """Executes a schedule repeatedly and collects delivery statistics.

    Args:
        schedule: The computed transmission schedule.
        flow_set: The routed flows the schedule serves.
        environment: Ground-truth RF environment of the testbed.
        channel_map: The channels the network actually hops over (the
            restricted map used when building the schedule, e.g. channels
            11-14 for the reliability experiments).
        interferers: Optional external WiFi interferers.
        interferer_rssi_dbm: ``(num_interferers, num_nodes)`` received
            in-band power of each interferer at each node; required when
            ``interferers`` is non-empty (see
            :func:`repro.simulator.interference.interferer_rssi_matrix`).
        config: Execution parameters.
        conditions: Optional environment overlay for this simulator's
            runs (fault injection; see
            :mod:`repro.simulator.conditions`).  ``None`` keeps the
            pristine environment and the exact legacy behaviour.
    """

    def __init__(self, schedule: Schedule, flow_set: FlowSet,
                 environment: RadioEnvironment, channel_map: ChannelMap,
                 interferers: Sequence[WifiInterferer] = (),
                 interferer_rssi_dbm: Optional[np.ndarray] = None,
                 config: SimulationConfig = SimulationConfig(),
                 conditions: Optional[Conditions] = None):
        if interferers and interferer_rssi_dbm is None:
            raise ValueError(
                "interferer_rssi_dbm is required when interferers are given")
        if interferer_rssi_dbm is not None and interferers:
            expected = (len(interferers), environment.num_nodes)
            if interferer_rssi_dbm.shape != expected:
                raise ValueError(
                    f"interferer_rssi_dbm has shape "
                    f"{interferer_rssi_dbm.shape}, expected {expected}")

        self.schedule = schedule
        self.flow_set = flow_set
        self.environment = environment
        self.channel_map = channel_map
        self.config = config
        self.conditions = conditions if conditions is not None else Conditions()

        # Merge condition-injected interferers behind the base ones so
        # the per-slot activity draws stay in a deterministic order.
        self.interferers = (list(interferers)
                            + list(self.conditions.extra_interferers))
        extra_rssi = self.conditions.extra_interferer_rssi_dbm
        if extra_rssi is not None and interferer_rssi_dbm is not None:
            self.interferer_rssi_dbm = np.vstack(
                [interferer_rssi_dbm, extra_rssi])
        elif extra_rssi is not None:
            self.interferer_rssi_dbm = extra_rssi
        else:
            self.interferer_rssi_dbm = interferer_rssi_dbm

        self._hyperperiod = flow_set.hyperperiod()
        self._num_offsets = schedule.num_offsets
        self._flow_hops = {f.flow_id: f.num_hops for f in flow_set}
        self._instances_per_flow = {
            f.flow_id: self._hyperperiod // f.period_slots for f in flow_set}
        # The raw (unsmoothed) curve: fading is drawn explicitly per
        # attempt, so the smoothed "measured" curve emerges in expectation.
        frame_bytes = config.frame_bytes or environment.frame_bytes
        self._lookup = get_prr_curve(frame_bytes, 0.0)

        # Physical channel -> index into the environment's RSSI tensor.
        env_index = environment.channel_map.index_map()
        self._env_channel_index = {
            ch: env_index[ch] for ch in channel_map}
        # Same mapping keyed by logical channel index, in array form for
        # the batched engine.
        self._env_of_logical = np.array(
            [env_index[channel_map.physical(logical)]
             for logical in range(len(channel_map))], dtype=np.intp)

        # Which 802.15.4 channels each interferer pollutes.
        self._interferer_channels = [set(i.affected_channels())
                                     for i in self.interferers]

        self._compiled = compiled_entries(schedule)
        self._plan = _draw_plan(schedule, self._compiled,
                                len(self.interferers))
        self._events = None  # lazy batched compilation

    # -- shared-model views consumed by the event engine ---------------

    @property
    def compiled(self) -> Dict[int, List[_CompiledEntry]]:
        """Per-slot compiled entries (the event timeline)."""
        return self._compiled

    @property
    def draw_plan(self) -> DrawPlan:
        """The pinned draw layout both engines index into."""
        return self._plan

    @property
    def hyperperiod(self) -> int:
        """Slots per repetition."""
        return self._hyperperiod

    @property
    def flow_hops(self) -> Dict[int, int]:
        """Hops per flow (delivery happens at the last one)."""
        return self._flow_hops

    @property
    def instances_per_flow(self) -> Dict[int, int]:
        """Released packet instances per flow per repetition."""
        return self._instances_per_flow

    @property
    def lookup(self):
        """The raw SINR -> PRR curve."""
        return self._lookup

    @property
    def env_of_logical(self) -> np.ndarray:
        """Logical channel index -> environment RSSI channel index."""
        return self._env_of_logical

    @property
    def interferer_channel_sets(self) -> List[set]:
        """Per-interferer sets of polluted physical channels."""
        return self._interferer_channels

    def event_tables(self):
        """Batched per-slot event arrays, compiled on first use."""
        if self._events is None:
            from repro.simulator.events import compile_events
            self._events = compile_events(self)
        return self._events

    # -- execution ------------------------------------------------------

    def run(self, repetitions: int = 100,
            start_repetition: int = 0,
            engine: Optional[str] = None,
            chunk_reps: Optional[int] = None) -> SimulationStats:
        """Execute the schedule ``repetitions`` times.

        Each repetition replays one full hyperperiod with a fresh release
        of every flow instance; the ASN keeps advancing across
        repetitions, so channel hopping visits different physical channels
        each time (as on the real network).

        Args:
            repetitions: Hyperperiods to execute.
            start_repetition: Global repetition index of the first
                hyperperiod.  The manager loop advances this across
                epochs so the ASN (and hence the hop pattern) keeps
                progressing even though each epoch builds a fresh
                simulator.  Repetition substreams are keyed on the
                global index, so splitting a run across epochs changes
                nothing.
            engine: Override the config's execution engine for this run
                (``"slot"``, ``"event"``, or ``"auto"``).
            chunk_reps: Batched-engine repetitions per chunk (memory
                knob; never changes results).  Ignored by the slot
                engine.
        """
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        resolved = resolve_engine(
            engine if engine is not None else self.config.engine,
            repetitions)
        with _timed("phase.simulate"):
            if _obs.ENABLED:
                _obs.RECORDER.count(f"sim.runs.{resolved}")
            if resolved == ENGINE_EVENT:
                return run_event_batched(self, repetitions,
                                         start_repetition,
                                         chunk_reps=chunk_reps)
            return self._run(repetitions, start_repetition)

    def _run(self, repetitions: int, start_repetition: int) -> SimulationStats:
        """The slot-driven python oracle.

        Consumes the pinned draw plan positionally — no inline RNG calls
        — so its per-repetition outcomes are exactly reproducible by the
        batched event engine.
        """
        plan = self._plan
        stats = SimulationStats()
        num_logical = len(self.channel_map)
        fading_sigma = self.config.fast_fading_sigma_db
        rssi = self.environment.rssi_dbm
        noise = self.environment.noise_floor_dbm

        slow_sigma = self.config.slow_fading_sigma_db
        attenuation = self.conditions.pair_attenuation_db
        boost = self.conditions.interference_boost_db
        dark = self.conditions.dark_nodes
        num_interferers = len(self.interferers)
        duty_cycles = [i.duty_cycle for i in self.interferers]

        for repetition in range(repetitions):
            normals, uniforms = repetition_draws(
                plan, self.config.seed, start_repetition + repetition)
            record = stats.start_repetition()
            progress: Dict[Tuple[int, int], int] = {}
            # Per-repetition tallies for the observability layer; plain
            # local ints so the disabled path costs nothing measurable.
            recorder = _obs.RECORDER if _obs.ENABLED else None
            rep_attempts = rep_successes = rep_deliveries = 0
            link_outcomes: Dict[Tuple[int, int], List[int]] = {}

            for flow_id, count in self._instances_per_flow.items():
                stats.record_release(flow_id, count)

            base_asn = (start_repetition + repetition) * self._hyperperiod
            for slot_pos, slot in enumerate(plan.slots):
                entries = self._compiled[slot]
                active_flags = [
                    progress.get((entry.flow_id, entry.instance), 0)
                    == entry.hop_index
                    for entry in entries
                ]
                if not any(active_flags):
                    continue
                asn = base_asn + slot

                uniform_base = plan.uniform_offsets[slot_pos]
                active_interferers = [
                    i for i in range(num_interferers)
                    if uniforms[uniform_base + i] < duty_cycles[i]
                ]
                logicals = [(asn + entry.offset) % num_logical
                            for entry in entries]

                for entry_pos, entry in enumerate(entries):
                    if not active_flags[entry_pos]:
                        continue
                    link = (entry.sender, entry.receiver)
                    if entry.sender in dark:
                        # A powered-off sender never puts the frame on
                        # the air: the attempt fails without radiating.
                        # It is still an attempt, so the observability
                        # tallies must count it exactly like the stats
                        # record does (a dark *receiver* flows through
                        # the normal path below and is counted in both).
                        record.record(link, entry.shared_cell, False)
                        if recorder is not None:
                            rep_attempts += 1
                            link_outcomes.setdefault(link, [0, 0])[0] += 1
                        continue
                    logical = logicals[entry_pos]
                    channel = self.channel_map.physical(logical)
                    env_channel = self._env_channel_index[channel]
                    signal = (rssi[entry.sender, entry.receiver, env_channel]
                              + slow_sigma * normals[
                                  plan.drift_index(entry.sender,
                                                   entry.receiver)]
                              + fading_sigma * normals[
                                  plan.signal_fast_index(slot_pos,
                                                         entry_pos)]
                              - attenuation.get(link, 0.0))
                    interference = []
                    for other_pos, other in enumerate(entries):
                        if (other_pos == entry_pos
                                or not active_flags[other_pos]
                                or other.sender in dark
                                or logicals[other_pos] != logical):
                            continue
                        interference.append(
                            rssi[other.sender, entry.receiver, env_channel]
                            + slow_sigma * normals[
                                plan.drift_index(other.sender,
                                                 entry.receiver)]
                            + fading_sigma * normals[
                                plan.interference_fast_index(
                                    slot_pos, entry_pos, other_pos)]
                            + boost
                            - attenuation.get(
                                (other.sender, entry.receiver), 0.0))
                    for index in active_interferers:
                        if channel in self._interferer_channels[index]:
                            interference.append(
                                self.interferer_rssi_dbm[
                                    index, entry.receiver]
                                + fading_sigma * normals[
                                    plan.interferer_fast_index(
                                        slot_pos, index, entry_pos)])

                    sinr = sinr_at_receiver(signal, noise, interference)
                    if entry.receiver in dark:
                        success = False
                    else:
                        success = bool(
                            uniforms[plan.reception_uniform_index(
                                slot_pos, entry_pos)]
                            < self._lookup(sinr))
                    record.record(link, entry.shared_cell, success,
                                  channel=channel)
                    if recorder is not None:
                        rep_attempts += 1
                        rep_successes += success
                        tally = link_outcomes.setdefault(link, [0, 0])
                        tally[0] += 1
                        tally[1] += success
                    if success:
                        key = (entry.flow_id, entry.instance)
                        progress[key] = entry.hop_index + 1
                        if progress[key] == self._flow_hops[entry.flow_id]:
                            stats.record_delivery(entry.flow_id)
                            if recorder is not None:
                                rep_deliveries += 1

            if recorder is not None:
                recorder.count("sim.repetitions")
                recorder.count("sim.attempts", rep_attempts)
                recorder.count("sim.successes", rep_successes)
                recorder.count("sim.deliveries", rep_deliveries)
                recorder.event(
                    "sim_repetition", repetition=repetition,
                    attempts=rep_attempts, successes=rep_successes,
                    deliveries=rep_deliveries,
                    links={f"{s}->{r}": counts for (s, r), counts
                           in sorted(link_outcomes.items())})
        return stats
