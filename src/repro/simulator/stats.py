"""Statistics collected while executing a schedule.

Two views matter to the paper's evaluation:

* **End-to-end**: per-flow Packet Delivery Ratio (PDR) — the fraction of
  released packets that reached the destination (Fig. 8).
* **Per-link**: PRR of each link, split between transmissions scheduled
  in *shared* cells (channel reuse) and in *contention-free* cells, per
  schedule repetition — the raw material of the K-S detection policy
  (Figs. 10-11).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

Link = Tuple[int, int]


@dataclass
class AttemptCounter:
    """Transmission attempts and successes over some scope."""

    attempts: int = 0
    successes: int = 0

    def record(self, success: bool) -> None:
        """Record one attempt."""
        self.attempts += 1
        if success:
            self.successes += 1

    def merge(self, other: "AttemptCounter") -> None:
        """Accumulate another counter into this one."""
        self.attempts += other.attempts
        self.successes += other.successes

    @property
    def prr(self) -> Optional[float]:
        """Success ratio, or None when no attempts were made."""
        if self.attempts == 0:
            return None
        return self.successes / self.attempts


@dataclass
class RepetitionRecord:
    """Per-link counters for one execution of the schedule."""

    reuse: Dict[Link, AttemptCounter] = field(
        default_factory=lambda: defaultdict(AttemptCounter))
    contention_free: Dict[Link, AttemptCounter] = field(
        default_factory=lambda: defaultdict(AttemptCounter))
    channels: Dict[int, AttemptCounter] = field(
        default_factory=lambda: defaultdict(AttemptCounter))

    def record(self, link: Link, shared_cell: bool, success: bool,
               channel: Optional[int] = None) -> None:
        """Record one attempt on a link.

        Args:
            link: The directed link.
            shared_cell: Whether the cell is shared (channel reuse).
            success: Whether the frame was received.
            channel: Physical channel the attempt used, when it went on
                the air (None for attempts that never radiated, e.g. a
                powered-off sender) — feeds the per-channel view the
                network manager's blacklist policy consumes.
        """
        bucket = self.reuse if shared_cell else self.contention_free
        bucket[link].record(success)
        if channel is not None:
            self.channels[channel].record(success)


class SimulationStats:
    """Aggregated results of repeatedly executing a schedule."""

    def __init__(self):
        self.flow_released: Dict[int, int] = defaultdict(int)
        self.flow_delivered: Dict[int, int] = defaultdict(int)
        self.repetitions: List[RepetitionRecord] = []

    # ------------------------------------------------------------------
    # Recording (engine-facing)
    # ------------------------------------------------------------------

    def start_repetition(self) -> RepetitionRecord:
        """Open a new repetition record and return it."""
        record = RepetitionRecord()
        self.repetitions.append(record)
        return record

    def record_release(self, flow_id: int, count: int = 1) -> None:
        """Count released packet instances for a flow."""
        self.flow_released[flow_id] += count

    def record_delivery(self, flow_id: int, count: int = 1) -> None:
        """Count delivered packet instances for a flow."""
        self.flow_delivered[flow_id] += count

    # ------------------------------------------------------------------
    # End-to-end metrics
    # ------------------------------------------------------------------

    def pdr_per_flow(self) -> Dict[int, float]:
        """Packet delivery ratio of every flow."""
        result = {}
        for flow_id, released in self.flow_released.items():
            delivered = self.flow_delivered.get(flow_id, 0)
            result[flow_id] = delivered / released if released else 0.0
        return result

    def pdr_values(self) -> List[float]:
        """All per-flow PDRs (the population behind the paper's box plots)."""
        return list(self.pdr_per_flow().values())

    def median_pdr(self) -> float:
        """Median per-flow PDR."""
        values = sorted(self.pdr_values())
        if not values:
            return 0.0
        middle = len(values) // 2
        if len(values) % 2:
            return values[middle]
        return 0.5 * (values[middle - 1] + values[middle])

    def worst_pdr(self) -> float:
        """Worst-case per-flow PDR (the paper's key reliability metric)."""
        values = self.pdr_values()
        return min(values) if values else 0.0

    # ------------------------------------------------------------------
    # Per-link metrics
    # ------------------------------------------------------------------

    def links_seen(self) -> List[Link]:
        """Every link that transmitted at least once."""
        links = set()
        for record in self.repetitions:
            links.update(record.reuse)
            links.update(record.contention_free)
        return sorted(links)

    def link_prr_samples(self, link: Link, shared_cell: bool,
                         repetition_range: Optional[Tuple[int, int]] = None,
                         ) -> List[float]:
        """Per-repetition PRR samples for a link in one cell category.

        Args:
            link: The directed link.
            shared_cell: True for reuse-slot samples, False for
                contention-free samples.
            repetition_range: Optional ``(start, end)`` slice of
                repetitions (end exclusive) — used to form epochs.

        Returns:
            One PRR value per repetition in which the link transmitted in
            that category.
        """
        start, end = repetition_range or (0, len(self.repetitions))
        samples = []
        for record in self.repetitions[start:end]:
            bucket = record.reuse if shared_cell else record.contention_free
            counter = bucket.get(link)
            if counter is not None and counter.attempts > 0:
                samples.append(counter.successes / counter.attempts)
        return samples

    def overall_link_prr(self, link: Link, shared_cell: bool,
                         repetition_range: Optional[Tuple[int, int]] = None,
                         ) -> Optional[float]:
        """Pooled PRR of a link in one cell category."""
        start, end = repetition_range or (0, len(self.repetitions))
        total = AttemptCounter()
        for record in self.repetitions[start:end]:
            bucket = record.reuse if shared_cell else record.contention_free
            counter = bucket.get(link)
            if counter is not None:
                total.merge(counter)
        return total.prr

    # ------------------------------------------------------------------
    # Per-channel metrics (network-manager view)
    # ------------------------------------------------------------------

    def channel_counters(self, repetition_range: Optional[Tuple[int, int]]
                         = None) -> Dict[int, AttemptCounter]:
        """Pooled attempt counters per physical channel."""
        start, end = repetition_range or (0, len(self.repetitions))
        totals: Dict[int, AttemptCounter] = defaultdict(AttemptCounter)
        for record in self.repetitions[start:end]:
            for channel, counter in record.channels.items():
                totals[channel].merge(counter)
        return dict(totals)

    def channel_prr(self, repetition_range: Optional[Tuple[int, int]] = None,
                    ) -> Dict[int, float]:
        """Pooled PRR per physical channel (channels with attempts only).

        This is the view a WirelessHART network manager derives from
        health reports to drive channel blacklisting: a channel whose
        PRR collapses while others hold is suffering channel-specific
        (external) interference.
        """
        return {channel: counter.prr
                for channel, counter in
                sorted(self.channel_counters(repetition_range).items())
                if counter.attempts > 0}


class BatchedAccumulator:
    """Vectorized per-repetition counters for the batched event engine.

    The event engine (:mod:`repro.simulator.events`) executes all
    Monte-Carlo repetitions of a run at once, so instead of appending one
    :class:`RepetitionRecord` at a time it accumulates whole-run integer
    arrays — one attempt/success vector of length ``repetitions`` per
    (link, cell-category), an ``(repetitions, channels)`` matrix for the
    per-channel view, and one delivery vector per flow.
    :meth:`reduce` folds those arrays back into a
    :class:`SimulationStats` that is bit-identical to the one the
    slot-driven oracle builds record-by-record: a (link, category) or
    channel key appears in a repetition's record exactly when that
    repetition made at least one attempt there, mirroring the oracle's
    on-first-attempt ``defaultdict`` insertion.

    Attributes:
        channel_attempts: ``(repetitions, len(channels))`` attempt counts
            indexed by *logical* channel (position in ``channels``).
        channel_successes: Success counts, same shape/indexing.
    """

    def __init__(self, repetitions: int, channels: Sequence[int]):
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        self.repetitions = repetitions
        self.channels = tuple(channels)
        self.channel_attempts = np.zeros(
            (repetitions, len(self.channels)), dtype=np.int64)
        self.channel_successes = np.zeros(
            (repetitions, len(self.channels)), dtype=np.int64)
        self._link_attempts: Dict[Tuple[Link, bool], np.ndarray] = {}
        self._link_successes: Dict[Tuple[Link, bool], np.ndarray] = {}
        self._released: Dict[int, int] = {}
        self._delivered: Dict[int, np.ndarray] = {}

    def link_counters(self, link: Link,
                      shared_cell: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Per-repetition (attempts, successes) arrays for a link/category,
        created on first touch."""
        key = (link, shared_cell)
        attempts = self._link_attempts.get(key)
        if attempts is None:
            attempts = np.zeros(self.repetitions, dtype=np.int64)
            self._link_attempts[key] = attempts
            self._link_successes[key] = np.zeros(self.repetitions,
                                                 dtype=np.int64)
        return attempts, self._link_successes[key]

    def flow_delivery_counter(self, flow_id: int) -> np.ndarray:
        """Per-repetition delivery counts for a flow, created on first
        touch."""
        delivered = self._delivered.get(flow_id)
        if delivered is None:
            delivered = np.zeros(self.repetitions, dtype=np.int64)
            self._delivered[flow_id] = delivered
        return delivered

    def record_release(self, flow_id: int, count_per_repetition: int) -> None:
        """Register a flow's per-repetition release count."""
        self._released[flow_id] = (self._released.get(flow_id, 0)
                                   + count_per_repetition)

    # -- whole-run views (observability reconstruction) ----------------

    def attempts_per_repetition(self) -> np.ndarray:
        """Total attempts per repetition, across every link/category."""
        total = np.zeros(self.repetitions, dtype=np.int64)
        for attempts in self._link_attempts.values():
            total += attempts
        return total

    def successes_per_repetition(self) -> np.ndarray:
        """Total successes per repetition."""
        total = np.zeros(self.repetitions, dtype=np.int64)
        for successes in self._link_successes.values():
            total += successes
        return total

    def deliveries_per_repetition(self) -> np.ndarray:
        """Total end-to-end deliveries per repetition."""
        total = np.zeros(self.repetitions, dtype=np.int64)
        for delivered in self._delivered.values():
            total += delivered
        return total

    def combined_link_outcomes(self) -> Dict[Link,
                                             Tuple[np.ndarray, np.ndarray]]:
        """Per-link (attempts, successes) arrays pooled across cell
        categories — the shape of the oracle's per-repetition obs tally."""
        combined: Dict[Link, Tuple[np.ndarray, np.ndarray]] = {}
        for (link, _), attempts in self._link_attempts.items():
            successes = self._link_successes[(link, _)]
            if link in combined:
                combined[link] = (combined[link][0] + attempts,
                                  combined[link][1] + successes)
            else:
                combined[link] = (attempts.copy(), successes.copy())
        return combined

    # -- reduction ------------------------------------------------------

    def reduce(self) -> SimulationStats:
        """Fold the arrays into a record-per-repetition
        :class:`SimulationStats`."""
        stats = SimulationStats()
        for flow_id, count in self._released.items():
            stats.record_release(flow_id, count * self.repetitions)
        for flow_id, delivered in self._delivered.items():
            total = int(delivered.sum())
            if total:
                stats.record_delivery(flow_id, total)
        for repetition in range(self.repetitions):
            record = stats.start_repetition()
            for (link, shared_cell), attempts in self._link_attempts.items():
                count = int(attempts[repetition])
                if count:
                    bucket = (record.reuse if shared_cell
                              else record.contention_free)
                    bucket[link] = AttemptCounter(
                        count,
                        int(self._link_successes[(link, shared_cell)]
                            [repetition]))
            for index, channel in enumerate(self.channels):
                count = int(self.channel_attempts[repetition, index])
                if count:
                    record.channels[channel] = AttemptCounter(
                        count,
                        int(self.channel_successes[repetition, index]))
        return stats
