"""Windowed time series: the temporal half of the observability layer.

The metrics registry (:mod:`repro.obs.metrics`) answers "how much,
total?"; this module answers "how has it moved?".  A
:class:`TimeSeriesStore` holds named series of ``(t, value)`` samples —
``t`` is whatever discrete clock the producer uses (manager epochs,
ASN windows, sweep points) — with bounded retention per series: when a
series overflows, adjacent samples are pairwise-averaged and the
series' ``stride`` doubles, so old history coarsens instead of
disappearing and memory stays O(retention) no matter how long a run is.

Persistence mirrors the metrics-snapshot conventions: one JSONL record
per series (``{"kind": "series", "name": ..., "stride": ...,
"points": [[t, v], ...]}``) plus a ``ts_meta`` trailer accounting for
retention and downsampling, written via :mod:`repro.io`.  Dumps merge
(:meth:`TimeSeriesStore.merge_records`) like snapshots do, so multiple
runs (or a resumed run) fold into one store.

Producers reach the store through the recorder idiom::

    from repro.obs import recorder as _obs
    ...
    if _obs.ENABLED:
        ts = _obs.RECORDER.timeseries
        if ts is not None:
            ts.record("manager.median_pdr", epoch, median)

Like decision provenance, the store is opt-in on top of an enabled
recorder — and like trace events, points recorded inside
:func:`repro.experiments.parallel.parallel_map` *worker* processes are
not shipped back to the parent (only metrics snapshots are); record
series from the orchestrating process.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default per-series retention (samples kept before downsampling).
DEFAULT_RETENTION = 512


class Series:
    """One named series of ``(t, value)`` samples with bounded retention.

    Attributes:
        name: Dotted series name (``slo.flow.3.burn_fast``).
        retention: Maximum samples held; exceeding it triggers a
            pairwise-average downsample.
        stride: How many raw samples each held sample represents
            (1 until the first downsample, then doubles each time).
    """

    __slots__ = ("name", "retention", "stride", "points")

    def __init__(self, name: str, retention: int = DEFAULT_RETENTION,
                 stride: int = 1):
        if retention < 2:
            raise ValueError("retention must be at least 2")
        if stride < 1:
            raise ValueError("stride must be positive")
        self.name = name
        self.retention = retention
        self.stride = stride
        self.points: List[Tuple[float, float]] = []

    def add(self, t: float, value: float) -> None:
        """Append one sample, downsampling when retention overflows."""
        self.points.append((float(t), float(value)))
        if len(self.points) > self.retention:
            self._downsample()

    def _downsample(self) -> None:
        """Pairwise-average the series, doubling its stride.

        Each kept sample takes the mean value of an adjacent pair and
        the *last* pair member's ``t`` (so the series' most recent
        timestamp survives verbatim); a trailing odd sample is kept
        as-is.
        """
        merged: List[Tuple[float, float]] = []
        points = self.points
        for index in range(0, len(points) - 1, 2):
            (_, v0), (t1, v1) = points[index], points[index + 1]
            merged.append((t1, 0.5 * (v0 + v1)))
        if len(points) % 2:
            merged.append(points[-1])
        self.points = merged
        self.stride *= 2

    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent ``(t, value)``, or None when empty."""
        return self.points[-1] if self.points else None

    def values(self) -> List[float]:
        """All held values, oldest first."""
        return [v for _, v in self.points]

    def tail(self, n: int) -> List[float]:
        """The most recent ``n`` values (fewer when the series is short)."""
        return [v for _, v in self.points[-n:]]

    def to_record(self) -> Dict:
        """One JSONL-ready record for this series."""
        return {
            "kind": "series",
            "name": self.name,
            "retention": self.retention,
            "stride": self.stride,
            "points": [[t, v] for t, v in self.points],
        }


class TimeSeriesStore:
    """A named collection of :class:`Series` with JSONL persistence.

    Args:
        retention: Per-series retention for series this store creates.
    """

    def __init__(self, retention: int = DEFAULT_RETENTION):
        if retention < 2:
            raise ValueError("retention must be at least 2")
        self.retention = retention
        self._series: Dict[str, Series] = {}

    def __len__(self) -> int:
        return len(self._series)

    def record(self, name: str, t: float, value: float) -> None:
        """Append one sample to series ``name`` (created on first use)."""
        self.series(name).add(t, value)

    def series(self, name: str) -> Series:
        """Get or create the series ``name``."""
        handle = self._series.get(name)
        if handle is None:
            handle = self._series[name] = Series(name, self.retention)
        return handle

    def get(self, name: str) -> Optional[Series]:
        """The series ``name``, or None when never recorded."""
        return self._series.get(name)

    def names(self) -> List[str]:
        """Sorted names of all series."""
        return sorted(self._series)

    def downsampled_series(self) -> int:
        """How many series have coarsened history (stride > 1)."""
        return sum(1 for s in self._series.values() if s.stride > 1)

    # ------------------------------------------------------------------
    # Persistence (mirrors metrics snapshot save / merge)
    # ------------------------------------------------------------------

    def to_records(self) -> List[Dict]:
        """All series as JSONL-ready records plus a ``ts_meta`` trailer.

        The trailer — ``{"kind": "ts_meta", "series": N, "retention": R,
        "downsampled": D}`` — makes a dump honest about coarsened
        history, the same contract as the tracer's ``trace_meta``.
        """
        records = [self._series[name].to_record()
                   for name in sorted(self._series)]
        records.append({
            "kind": "ts_meta",
            "series": len(self._series),
            "retention": self.retention,
            "downsampled": self.downsampled_series(),
        })
        return records

    def export_jsonl(self, path) -> int:
        """Write all series as JSON Lines via :mod:`repro.io`.

        Returns:
            The number of series written (the trailer excluded).
        """
        # Imported lazily: repro.io pulls in the core model, which
        # imports repro.obs for instrumentation.
        from repro.io import save_jsonl

        return save_jsonl(self.to_records(), path) - 1

    def merge_records(self, records: Iterable[Dict]) -> None:
        """Fold a dump's series records into this store.

        Same-name series concatenate by ``t`` (sorted, later record
        wins on an exact ``t`` collision) and keep the coarser stride;
        retention still applies, so merging can itself downsample.
        Non-``series`` records (the trailer) are ignored.
        """
        for record in records:
            if record.get("kind") != "series":
                continue
            series = self.series(record["name"])
            by_t = {t: v for t, v in series.points}
            for t, v in record.get("points", []):
                by_t[float(t)] = float(v)
            series.points = sorted(by_t.items())
            series.stride = max(series.stride,
                                int(record.get("stride", 1)))
            while len(series.points) > series.retention:
                series._downsample()

    @staticmethod
    def from_records(records: Iterable[Dict],
                     retention: int = DEFAULT_RETENTION,
                     ) -> "TimeSeriesStore":
        """Rebuild a store from records written by :meth:`to_records`."""
        store = TimeSeriesStore(retention=retention)
        store.merge_records(records)
        return store

    @staticmethod
    def load_jsonl(path) -> "TimeSeriesStore":
        """Load a dump written by :meth:`export_jsonl`."""
        from repro.io import load_jsonl

        records = load_jsonl(path)
        retention = DEFAULT_RETENTION
        for record in records:
            if record.get("kind") == "ts_meta":
                retention = int(record.get("retention", DEFAULT_RETENTION))
        return TimeSeriesStore.from_records(records, retention=retention)
