"""OpenMetrics / Prometheus text exposition for metrics and series.

The registry's dotted flat names (``scheduler.slots_scanned``) become
Prometheus names under a ``repro_`` prefix with dots mapped to
underscores (``repro_scheduler_slots_scanned_total``).  Counters gain
the conventional ``_total`` suffix; histograms render cumulative
``le``-labeled buckets plus ``+Inf``, ``_sum`` and ``_count``, exactly
as Prometheus expects, so bucket-resolution quantiles computed by a
scraper match :meth:`repro.obs.metrics.Histogram.quantile`.

Time-series stores add *labeled* families: series following the
conventions the manager records —

======================================  ============================
series name                             exposed as
======================================  ============================
``slo.flow.<id>.pdr``                   ``repro_slo_pdr{flow="id"}``
``slo.flow.<id>.burn_fast``             ``repro_slo_burn_fast{...}``
``slo.flow.<id>.burn_slow``             ``repro_slo_burn_slow{...}``
``channel.<ch>.prr``                    ``repro_channel_prr{channel="ch"}``
``flow.<id>.pdr``                       ``repro_flow_pdr{flow="id"}``
anything else                           ``repro_ts_<sanitized>``
======================================  ============================

— each exposing the series' *latest* value as a gauge (the exposition
is a point-in-time scrape surface; history stays in the JSONL dump).
A series prefix (``reschedule/slo.flow...``) becomes a ``run`` label.

Two snapshot-side conventions are lifted into labeled families too:
``span.<stage>.seconds`` histograms (request-stage latency recorded by
the span layer) merge into one ``repro_stage_seconds{stage="..."}``
histogram family, and ``service.cache.<kind>.<verdict>`` counters
(artifact-cache lookups) merge into
``repro_service_cache_lookups_total{kind="...",verdict="..."}`` — so a
dashboard can rate() and histogram_quantile() across stages and cache
kinds without regex-relabeling dotted names.

There is deliberately no HTTP server here: ``repro metrics export
--openmetrics`` writes the exposition to a file or stdout, which the
Prometheus node-exporter textfile collector (or a test) picks up.
:func:`parse_openmetrics` is the strict validator CI runs against the
export — it rejects malformed lines with line numbers rather than
best-effort-parsing them.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Snapshot-side names lifted into labeled families.
_CACHE_COUNTER = re.compile(
    r"^service\.cache\.(?P<kind>[a-z_]+)\.(?P<verdict>hit|miss)$")
_STAGE_HISTOGRAM = re.compile(r"^span\.(?P<stage>[a-z_.]+)\.seconds$")

#: Series-name patterns lifted into labeled families.
_LABELED_SERIES = (
    (re.compile(r"^slo\.flow\.(?P<flow>\d+)\.(?P<field>pdr|burn_fast|burn_slow)$"),
     "repro_slo_{field}", "flow"),
    (re.compile(r"^flow\.(?P<flow>\d+)\.(?P<field>pdr)$"),
     "repro_flow_{field}", "flow"),
    (re.compile(r"^channel\.(?P<channel>\d+)\.(?P<field>prr)$"),
     "repro_channel_{field}", "channel"),
)


def sanitize_name(name: str) -> str:
    """Map a dotted metric name to a legal Prometheus name."""
    cleaned = _SANITIZE.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    """Render a sample value (integral floats without the ``.0``)."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class _Family:
    """One metric family: TYPE header plus its sample lines."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: List[str] = []

    def add(self, value: float, labels: Optional[Dict[str, str]] = None,
            suffix: str = "") -> None:
        label_str = ""
        if labels:
            parts = ",".join(f'{k}="{_escape_label(v)}"'
                             for k, v in sorted(labels.items()))
            label_str = "{" + parts + "}"
        self.samples.append(
            f"{self.name}{suffix}{label_str} {_format_value(value)}")

    def lines(self) -> List[str]:
        out = [f"# HELP {self.name} {self.help}",
               f"# TYPE {self.name} {self.kind}"]
        out.extend(self.samples)
        return out


def _split_series_prefix(name: str) -> Tuple[str, str]:
    """Split an optional ``run/`` prefix off a series name."""
    if "/" in name:
        prefix, rest = name.split("/", 1)
        return prefix, rest
    return "", name


def render_openmetrics(snapshot: Dict, timeseries=None) -> str:
    """Render a metrics snapshot (and optional series) as OpenMetrics.

    Args:
        snapshot: A :meth:`MetricsRegistry.snapshot` dict.
        timeseries: Optional :class:`TimeSeriesStore`; each series'
            latest value is exposed per the module's naming table.

    Returns:
        The exposition text, ``# EOF``-terminated.
    """
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str, help_text: str) -> _Family:
        existing = families.get(name)
        if existing is None:
            existing = families[name] = _Family(name, kind, help_text)
        elif existing.kind != kind:
            raise ValueError(
                f"family {name!r} declared as both {existing.kind} "
                f"and {kind}")
        return existing

    for name, value in snapshot.get("counters", {}).items():
        cache = _CACHE_COUNTER.match(name)
        if cache:
            fam = family("repro_service_cache_lookups_total", "counter",
                         "Artifact-cache lookups by kind and verdict")
            fam.add(float(value), {"kind": cache.group("kind"),
                                   "verdict": cache.group("verdict")})
            continue
        fam = family(f"repro_{sanitize_name(name)}_total", "counter",
                     f"Counter {name}")
        fam.add(float(value))

    for name, value in snapshot.get("gauges", {}).items():
        fam = family(f"repro_{sanitize_name(name)}", "gauge",
                     f"Gauge {name}")
        fam.add(float(value))

    for name, data in snapshot.get("histograms", {}).items():
        stage = _STAGE_HISTOGRAM.match(name)
        if stage:
            fam = family("repro_stage_seconds", "histogram",
                         "Request-stage latency by span name")
            labels = {"stage": stage.group("stage")}
        else:
            fam = family(f"repro_{sanitize_name(name)}", "histogram",
                         f"Histogram {name}")
            labels = {}
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += int(count)
            fam.add(cumulative,
                    dict(labels, le=_format_value(float(bound))),
                    suffix="_bucket")
        fam.add(int(data["count"]), dict(labels, le="+Inf"),
                suffix="_bucket")
        fam.add(float(data["sum"]), labels or None, suffix="_sum")
        fam.add(int(data["count"]), labels or None, suffix="_count")

    if timeseries is not None:
        for series_name in timeseries.names():
            series = timeseries.get(series_name)
            last = series.last()
            if last is None:
                continue
            _, value = last
            run, bare = _split_series_prefix(series_name)
            labels: Dict[str, str] = {"run": run} if run else {}
            for pattern, template, label_key in _LABELED_SERIES:
                match = pattern.match(bare)
                if match:
                    fam = family(
                        template.format(field=match.group("field")),
                        "gauge",
                        f"Latest sample of {label_key}-labeled series")
                    labels[label_key] = match.group(label_key)
                    fam.add(value, labels)
                    break
            else:
                fam = family(f"repro_ts_{sanitize_name(bare)}", "gauge",
                             f"Latest sample of series {bare}")
                fam.add(value, labels or None)

    lines: List[str] = []
    for name in sorted(families):
        lines.extend(families[name].lines())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Strict parsing (the CI validation step)
# ----------------------------------------------------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>[0-9.+-eE]+))?$")
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"$')
_VALID_KINDS = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped", "info"})


def _parse_labels(raw: str, lineno: int) -> Dict[str, str]:
    body = raw[1:-1].strip()
    if not body:
        return {}
    labels: Dict[str, str] = {}
    for part in _split_label_parts(body, lineno):
        match = _LABEL.match(part)
        if not match:
            raise ValueError(f"line {lineno}: malformed label {part!r}")
        labels[match.group("key")] = match.group("val")
    return labels


def _split_label_parts(body: str, lineno: int) -> List[str]:
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    parts, current, in_quote, escaped = [], [], False, False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quote = not in_quote
        elif ch == "," and not in_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quote:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        parts.append("".join(current))
    return parts


def _parse_value(raw: str, lineno: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"line {lineno}: bad sample value {raw!r}")


def parse_openmetrics(text: str) -> Dict[str, Dict]:
    """Strictly parse an exposition produced by :func:`render_openmetrics`.

    Enforces: a single trailing ``# EOF``; every sample preceded by a
    ``# TYPE`` declaration whose family name prefixes the sample name;
    well-formed labels; parseable values; no duplicate TYPE lines.

    Returns:
        ``{family: {"type": kind, "help": text, "samples":
        [(name, labels, value), ...]}}``.

    Raises:
        ValueError: On any malformed line, with its line number.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    families: Dict[str, Dict] = {}
    current: Optional[str] = None
    for lineno, line in enumerate(lines[:-1], start=1):
        if line == "# EOF":
            raise ValueError(f"line {lineno}: '# EOF' before end of text")
        if not line:
            raise ValueError(f"line {lineno}: blank line in exposition")
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            if not _NAME_OK.match(name):
                raise ValueError(f"line {lineno}: bad HELP name {name!r}")
            families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            if not _NAME_OK.match(name):
                raise ValueError(f"line {lineno}: bad TYPE name {name!r}")
            if kind not in _VALID_KINDS:
                raise ValueError(
                    f"line {lineno}: unknown metric type {kind!r}")
            entry = families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            if entry["type"] is not None:
                raise ValueError(
                    f"line {lineno}: duplicate TYPE for {name!r}")
            entry["type"] = kind
            current = name
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unrecognized comment {line!r}")
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        if current is None or not name.startswith(current):
            raise ValueError(
                f"line {lineno}: sample {name!r} outside a TYPE'd family")
        labels = (_parse_labels(match.group("labels"), lineno)
                  if match.group("labels") else {})
        value = _parse_value(match.group("value"), lineno)
        families[current]["samples"].append((name, labels, value))
    for name, entry in families.items():
        if entry["type"] is None:
            raise ValueError(f"family {name!r} has HELP but no TYPE")
        if not entry["samples"]:
            raise ValueError(f"family {name!r} declared but has no samples")
    return families
