"""`repro top`: a dependency-free ASCII observatory over a run's series.

Renders, from a :class:`repro.obs.timeseries.TimeSeriesStore` dump (and
optionally a metrics snapshot), a terminal dashboard with:

* a header panel (series counts, retention/downsampling honesty),
* the manager panel (median/worst PDR sparklines, epoch outcomes),
* a per-flow SLO table — state gauge, current PDR, fast/slow burn
  rates, and a burn-rate sparkline — alert/warn flows sorted first,
* per-channel PRR bars,
* a recorder/tracer health panel from the metrics snapshot.

Everything is plain ``str`` manipulation: no curses, no ANSI colors,
no third-party dependencies, so ``repro top --once`` is pipeable and
CI-safe.  The live mode in :mod:`repro.cli` simply re-reads the JSONL
dump and re-renders on an interval.

Sparklines use the eight-level Unicode block ramp ``▁▂▃▄▅▆▇█``
(degrading to ``.:-=+*#@`` under ``ascii_only``), scaled to the
series' own min/max so shape survives whatever the absolute levels
are.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import quantile_from_buckets
from repro.obs.slo import (STATE_ALERT, STATE_OK, STATE_WARN, SloConfig,
                           severity)

#: Eight-level ramp for sparklines.
SPARK_CHARS = "▁▂▃▄▅▆▇█"
#: Pure-ASCII fallback ramp.
SPARK_ASCII = ".:-=+*#@"

_FLOW_SERIES = re.compile(r"^slo\.flow\.(?P<flow>\d+)\.pdr$")
_CHANNEL_SERIES = re.compile(r"^channel\.(?P<channel>\d+)\.prr$")

#: Per-state marker shown in the SLO gauge column.
STATE_MARK = {STATE_OK: "  ok  ", STATE_WARN: " WARN ",
              STATE_ALERT: "ALERT!"}


def sparkline(values: Sequence[float], width: int = 24,
              ascii_only: bool = False) -> str:
    """Render the last ``width`` values as a fixed-height sparkline.

    Values are min/max-normalized over the rendered window; a flat
    series renders at mid-ramp.  Empty input gives an empty string.
    """
    ramp = SPARK_ASCII if ascii_only else SPARK_CHARS
    window = list(values)[-width:]
    if not window:
        return ""
    lo, hi = min(window), max(window)
    if hi - lo < 1e-12:
        return ramp[len(ramp) // 2] * len(window)
    span = hi - lo
    out = []
    for value in window:
        level = int((value - lo) / span * (len(ramp) - 1) + 0.5)
        out.append(ramp[level])
    return "".join(out)


def bar(value: float, width: int = 20, ascii_only: bool = False) -> str:
    """A horizontal [0, 1] gauge bar, e.g. ``[########----]``."""
    value = min(1.0, max(0.0, value))
    filled = int(value * width + 0.5)
    fill_char = "#" if ascii_only else "█"
    rest_char = "-" if ascii_only else "░"
    return "[" + fill_char * filled + rest_char * (width - filled) + "]"


def _fmt(value: Optional[float], digits: int = 3) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def _panel(title: str, lines: List[str], width: int) -> List[str]:
    header = f"── {title} " + "─" * max(0, width - len(title) - 4)
    return [header] + (lines if lines else ["  (no data)"])


def _flow_states(timeseries, slo_config: SloConfig,
                 ) -> List[Dict]:
    """Reconstruct each flow's latest SLO standing from its series."""
    flows: List[Dict] = []
    for name in timeseries.names():
        match = _FLOW_SERIES.match(name)
        if not match:
            continue
        flow_id = int(match.group("flow"))
        prefix = f"slo.flow.{flow_id}."
        pdr = timeseries.get(prefix + "pdr")
        fast = timeseries.get(prefix + "burn_fast")
        slow = timeseries.get(prefix + "burn_slow")
        last_fast = fast.last()[1] if fast and fast.last() else 0.0
        last_slow = slow.last()[1] if slow and slow.last() else 0.0
        threshold = slo_config.burn_threshold
        if last_fast >= threshold and last_slow >= threshold:
            state = STATE_ALERT
        elif last_fast >= threshold:
            state = STATE_WARN
        else:
            state = STATE_OK
        flows.append({
            "flow": flow_id,
            "pdr": pdr.last()[1] if pdr and pdr.last() else None,
            "burn_fast": last_fast,
            "burn_slow": last_slow,
            "state": state,
            "spark": fast.values() if fast else [],
        })
    return flows


def render_top(timeseries, snapshot: Optional[Dict] = None,
               slo_config: Optional[SloConfig] = None,
               max_flows: int = 12, width: int = 76,
               ascii_only: bool = False,
               source: str = "") -> str:
    """Render the full dashboard as one string.

    Args:
        timeseries: A :class:`TimeSeriesStore` (usually loaded from the
            run's ``--timeseries`` JSONL dump).
        snapshot: Optional metrics snapshot for the health panel.
        slo_config: Threshold used to re-derive flow states from burn
            series (defaults to :class:`SloConfig` defaults).
        max_flows: Table rows; worst flows (by state severity, then
            fast burn) are kept, the rest are summarized.
        width: Target panel width in characters.
        ascii_only: Degrade sparklines/bars to pure ASCII.
        source: Shown in the header (e.g. the dump path).
    """
    slo_config = slo_config if slo_config is not None else SloConfig()
    lines: List[str] = []

    # -- header ---------------------------------------------------------
    header = [f"  series: {len(timeseries)}"
              f"   retention: {timeseries.retention}"
              f"   downsampled: {timeseries.downsampled_series()}"]
    if source:
        header.insert(0, f"  source: {source}")
    lines += _panel("repro top", header, width)

    # -- manager panel ----------------------------------------------------
    manager_lines: List[str] = []
    for label, series_name in (("median PDR", "manager.median_pdr"),
                               ("worst  PDR", "manager.worst_pdr")):
        series = timeseries.get(series_name)
        if series is None or not series.points:
            continue
        t, value = series.last()
        manager_lines.append(
            f"  {label}  {_fmt(value)}  "
            f"{sparkline(series.values(), ascii_only=ascii_only)}"
            f"  (epoch {int(t)})")
    actions = timeseries.get("manager.actions")
    alerts = timeseries.get("manager.slo_alerting")
    if actions is not None and actions.points:
        total = sum(actions.values())
        manager_lines.append(
            f"  actions    {int(total):>5}  "
            f"{sparkline(actions.values(), ascii_only=ascii_only)}")
    if alerts is not None and alerts.points:
        manager_lines.append(
            f"  slo alerts {int(alerts.last()[1]):>5}  "
            f"{sparkline(alerts.values(), ascii_only=ascii_only)}")
    lines += _panel("manager", manager_lines, width)

    # -- per-flow SLO table ----------------------------------------------
    flows = _flow_states(timeseries, slo_config)
    flows.sort(key=lambda f: (-severity(f["state"]), -f["burn_fast"],
                              f["flow"]))
    table: List[str] = []
    if flows:
        table.append("   flow  state    pdr    burn5  burn30  "
                     "fast-burn trend")
        for entry in flows[:max_flows]:
            table.append(
                f"  {entry['flow']:>5}  {STATE_MARK[entry['state']]}"
                f"  {_fmt(entry['pdr'])}"
                f"  {entry['burn_fast']:>5.2f}  {entry['burn_slow']:>6.2f}"
                f"  {sparkline(entry['spark'], ascii_only=ascii_only)}")
        hidden = flows[max_flows:]
        if hidden:
            hot = sum(1 for f in hidden if f["state"] != STATE_OK)
            table.append(f"  … {len(hidden)} more flows "
                         f"({hot} warn/alert) not shown")
        tally = {STATE_OK: 0, STATE_WARN: 0, STATE_ALERT: 0}
        for entry in flows:
            tally[entry["state"]] += 1
        table.append(f"  totals: {tally[STATE_ALERT]} alert, "
                     f"{tally[STATE_WARN]} warn, {tally[STATE_OK]} ok "
                     f"(target PDR {slo_config.target_pdr}, "
                     f"burn threshold {slo_config.burn_threshold})")
    lines += _panel(
        f"flow SLOs ({len(flows)} flows)", table, width)

    # -- per-channel PRR --------------------------------------------------
    channel_lines: List[str] = []
    for name in timeseries.names():
        match = _CHANNEL_SERIES.match(name)
        if not match:
            continue
        series = timeseries.get(name)
        last = series.last()
        if last is None:
            continue
        value = last[1]
        channel_lines.append(
            f"  ch {int(match.group('channel')):>2}  "
            f"{bar(value, ascii_only=ascii_only)} {_fmt(value)}  "
            f"{sparkline(series.values(), width=16, ascii_only=ascii_only)}")
    lines += _panel("channel PRR", channel_lines, width)

    # -- scheduling-service batches ---------------------------------------
    # `repro serve --timeseries` workers sample service.* per ledger
    # batch; the panel only appears when such series exist, so manager
    # dumps render exactly as before.
    service_lines: List[str] = []
    for name in sorted(timeseries.names()):
        if not name.startswith("service."):
            continue
        series = timeseries.get(name)
        last = series.last()
        if last is None:
            continue
        service_lines.append(
            f"  {name[len('service.'):]:<16} {_fmt(last[1]):>8}  "
            f"{sparkline(series.values(), width=16, ascii_only=ascii_only)}")
    if service_lines:
        lines += _panel("service (per batch)", service_lines, width)

    # -- request-stage breakdown ------------------------------------------
    # Span-layer side histograms (span.<stage>.seconds) land in the
    # metrics snapshot; like the service panel, this one only appears
    # when a span-recording run produced them.  The bar is each stage's
    # share of total recorded stage time.
    stage_rows = []
    for name, data in (snapshot or {}).get("histograms", {}).items():
        if not (name.startswith("span.") and name.endswith(".seconds")):
            continue
        stage = name[len("span."):-len(".seconds")]
        p99 = quantile_from_buckets(data["buckets"], data["counts"], 0.99)
        stage_rows.append((stage, int(data["count"]),
                           float(data["sum"]), p99))
    if stage_rows:
        stage_rows.sort(key=lambda row: (-row[2], row[0]))
        grand_total = sum(row[2] for row in stage_rows) or 1.0
        stage_lines = []
        for stage, count, total, p99 in stage_rows:
            mean_ms = 1000.0 * total / count if count else 0.0
            p99_ms = 1000.0 * p99 if p99 is not None else 0.0
            stage_lines.append(
                f"  {stage:<18} {count:>6}  mean {mean_ms:>8.2f} ms"
                f"  p99 {p99_ms:>8.2f} ms  "
                f"{bar(total / grand_total, width=12, ascii_only=ascii_only)}")
        lines += _panel("request stages", stage_lines, width)

    # -- recorder / tracer health ----------------------------------------
    health_lines: List[str] = []
    if snapshot is not None:
        counters = snapshot.get("counters", {})
        interesting = (
            ("slo.alerts", "slo alerts"),
            ("slo.warns", "slo warns"),
            ("manager.epochs", "manager epochs"),
            ("manager.actions_applied", "actions applied"),
            ("manager.rollbacks", "rollbacks"),
            ("detection.ks_rejections", "K-S rejections"),
        )
        for key, label in interesting:
            if key in counters:
                health_lines.append(
                    f"  {label:<16} {counters[key]:>10.0f}")
        if not health_lines and counters:
            health_lines.append(f"  {len(counters)} counters recorded")
    lines += _panel("health", health_lines, width)

    return "\n".join(lines) + "\n"
