"""ASCII superframe Gantt: slots × channel offsets, plus flow windows.

``repro timeline`` renders a saved schedule as a character grid — one
row per channel offset, one column per slot::

    offset 0 |##2.#...|
    offset 1 |#..#....|
              0    5

``.`` is an empty cell, ``#`` a cell holding one transmission, and a
digit (``2``-``9``, ``+`` beyond) the occupant count of a *reuse* cell —
the paper's shared cells stand out at a glance.  With a flow set, each
flow gets a release→deadline window row underneath (``-`` inside the
window, ``#`` where one of its transmissions is placed), making missed
laxity and tight instances visible next to the grid that caused them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schedule import Schedule
    from repro.flows.flow import FlowSet

#: Grid glyphs: empty cell, exclusive cell, reuse-cell counts.
EMPTY, SINGLE, MANY = ".", "#", "+"


def _cell_char(count: int) -> str:
    if count == 0:
        return EMPTY
    if count == 1:
        return SINGLE
    return str(count) if count <= 9 else MANY


def _ruler(start: int, end: int) -> str:
    """Tick labels every 5 slots, aligned under the grid columns."""
    width = end - start + 1
    chars = [" "] * width
    for column in range(width):
        slot = start + column
        if slot % 5 == 0:
            label = str(slot)
            if column + len(label) <= width:
                for k, ch in enumerate(label):
                    if chars[column + k] == " ":
                        chars[column + k] = ch
    return "".join(chars)


def render_timeline(schedule: "Schedule",
                    flow_set: Optional["FlowSet"] = None,
                    start: int = 0, end: Optional[int] = None,
                    ) -> str:
    """Render the schedule grid (and flow windows) as text.

    Args:
        schedule: The schedule to draw.
        flow_set: When given, append one release→deadline window row per
            flow instance overlapping the slot range.
        start: First slot column (inclusive).
        end: Last slot column (inclusive); defaults to the makespan's
            last occupied slot (or ``start`` for an empty schedule).
    """
    if end is None:
        end = max(schedule.makespan() - 1, start)
    end = min(end, schedule.num_slots - 1)
    start = max(0, start)
    if start > end:
        raise ValueError(f"empty slot range [{start}, {end}]")

    counts = schedule.occupancy()[0]
    label_width = len(f"offset {schedule.num_offsets - 1}")
    lines: List[str] = [
        f"slots {start}..{end} of {schedule.num_slots}, "
        f"{schedule.num_offsets} offsets, "
        f"{len(schedule)} transmissions, "
        f"{schedule.num_reused_cells()} reuse cells"]
    for offset in range(schedule.num_offsets):
        row = "".join(_cell_char(int(counts[slot, offset]))
                      for slot in range(start, end + 1))
        lines.append(f"{f'offset {offset}':>{label_width}} |{row}|")
    lines.append(" " * (label_width + 2) + _ruler(start, end))

    reused = [(s, c, txs) for s, c, txs in schedule.reused_cells()
              if start <= s <= end]
    if reused:
        lines.append("reuse cells:")
        for slot, offset, transmissions in reused:
            links = ", ".join(
                f"({t.request.sender} -> {t.request.receiver})"
                for t in transmissions)
            lines.append(f"  slot {slot} offset {offset}: {links}")

    if flow_set is not None:
        lines.append("flow windows (- window, # placement):")
        by_flow: dict = {}
        for entry in schedule.entries:
            by_flow.setdefault(entry.request.flow_id, []).append(entry)
        for flow in flow_set:
            row = [" "] * (end - start + 1)
            hyperperiod = schedule.num_slots
            for instance in flow.instances(hyperperiod):
                release = instance.release_slot
                deadline = min(instance.deadline_slot, end)
                for slot in range(max(release, start), deadline + 1):
                    row[slot - start] = "-"
            for entry in by_flow.get(flow.flow_id, []):
                if start <= entry.slot <= end:
                    row[entry.slot - start] = SINGLE
            lines.append(f"{f'flow {flow.flow_id}':>{label_width}} "
                         f"|{''.join(row)}|")
    return "\n".join(lines)


def parse_slot_range(text: str) -> tuple:
    """Parse ``"A:B"`` / ``"A:"`` / ``":B"`` into (start, end-or-None)."""
    if ":" not in text:
        value = int(text)
        return value, value
    left, _, right = text.partition(":")
    start = int(left) if left else 0
    end = int(right) if right else None
    return start, end
