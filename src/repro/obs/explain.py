"""Answer "why is / isn't this transmission in this cell?" from artifacts.

``repro explain`` loads a saved schedule + topology and re-derives, for
one link and one slot, the exact Section V-A constraint chain a
``findSlot`` scan would walk there: the transmission-conflict check
(node-busy), then the per-offset channel constraint — channel-busy for
ρ = ∞, or the min-reuse-distance threshold for finite ρ, *naming the
blocking occupant* and its hop distance.  The same classifier backs the
decision-provenance recorder (:mod:`repro.obs.provenance`), so what
``explain`` prints offline is what the scheduler recorded live.

When a provenance dump is supplied, the recorded decisions for the link
(probes, laxity evaluations, ρ-descent) are rendered after the derived
verdicts — the derived chain says what the *final* schedule state
implies; the recorded decision says what the scheduler actually saw
mid-construction.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.provenance import (
    ACCEPT,
    REASON_CHANNEL_BUSY,
    REASON_NODE_BUSY,
    REASON_REUSE_DISTANCE,
    REASON_WINDOW,
    offset_verdicts,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schedule import Schedule
    from repro.network.graphs import ChannelReuseGraph


def _rho_label(rho: float) -> str:
    return "inf (no reuse)" if rho == math.inf else str(int(rho))


def explain_cell(schedule: "Schedule", reuse_graph: "ChannelReuseGraph",
                 sender: int, receiver: int, slot: int, rho: float,
                 ) -> List[str]:
    """The constraint chain for link ``(sender, receiver)`` at one slot.

    Returns printable lines: where the link actually landed, whether the
    queried slot passes the transmission-conflict check, and the
    per-offset channel-constraint verdicts at hop count ``rho`` —
    naming the blocking occupant and its reuse-graph distance for every
    rejected offset.
    """
    lines: List[str] = [
        f"link ({sender} -> {receiver}) at slot {slot}, "
        f"rho = {_rho_label(rho)}"]

    placements = [entry for entry in schedule.entries
                  if entry.request.sender == sender
                  and entry.request.receiver == receiver]
    here = [entry for entry in placements if entry.slot == slot]
    if here:
        for entry in here:
            sharing = [other for other in
                       schedule.cell(entry.slot, entry.offset)
                       if other is not entry]
            where = f"offset {entry.offset}"
            if sharing:
                others = ", ".join(
                    f"({o.request.sender} -> {o.request.receiver})"
                    for o in sharing)
                where += f", sharing the cell with {others}"
            lines.append(
                f"  SCHEDULED here at {where} "
                f"(flow {entry.request.flow_id}, hop "
                f"{entry.request.hop_index}, attempt "
                f"{entry.request.attempt})")
    elif placements:
        spots = ", ".join(f"slot {e.slot} offset {e.offset}"
                          for e in placements[:6])
        suffix = ", ..." if len(placements) > 6 else ""
        lines.append(f"  not scheduled here; the link occupies: "
                     f"{spots}{suffix}")
    else:
        lines.append("  the link appears nowhere in this schedule")

    # Transmission-conflict constraint (Section V-A, conflict freedom).
    blockers = [entry for entry in schedule.slot_transmissions(slot)
                if not (entry.request.sender == sender
                        and entry.request.receiver == receiver)
                and {entry.request.sender, entry.request.receiver}
                & {sender, receiver}]
    if blockers:
        for entry in blockers:
            shared = sorted({entry.request.sender, entry.request.receiver}
                            & {sender, receiver})
            nodes = " and ".join(f"node {n}" for n in shared)
            lines.append(
                f"  {REASON_NODE_BUSY}: {nodes} already active in "
                f"({entry.request.sender} -> {entry.request.receiver}) "
                f"@ offset {entry.offset} (flow {entry.request.flow_id})")
        lines.append(f"  verdict: slot {slot} REJECTED "
                     f"({REASON_NODE_BUSY}) — findSlot skips it at any rho")
        return lines

    lines.append("  no transmission conflict: no other link occupies "
                 f"either endpoint in slot {slot}")
    if here:
        lines.append("  (channel verdicts below treat the link's own "
                     "placement as an occupant)")

    # Channel constraint, offset by offset.
    verdicts = offset_verdicts(schedule, reuse_graph, sender, receiver,
                               slot, rho)
    feasible = [v["offset"] for v in verdicts if v["verdict"] == ACCEPT]
    for verdict in verdicts:
        offset = verdict["offset"]
        if verdict["verdict"] == ACCEPT:
            note = ("free" if verdict["load"] == 0
                    else f"reusable, load {verdict['load']}")
            lines.append(f"  offset {offset}: feasible ({note})")
        elif verdict["verdict"] == REASON_CHANNEL_BUSY:
            occupants = ", ".join(
                f"({e.request.sender} -> {e.request.receiver})"
                for e in schedule.cell(slot, offset))
            lines.append(f"  offset {offset}: {REASON_CHANNEL_BUSY} — "
                         f"occupied by {occupants} and rho = inf forbids "
                         f"sharing")
        else:
            x, y = verdict["blocker"]
            lines.append(
                f"  offset {offset}: {REASON_REUSE_DISTANCE} — occupant "
                f"({x} -> {y}) is {verdict['distance']} hop(s) away on "
                f"the reuse graph, closer than rho = {_rho_label(rho)}")
    if feasible:
        lines.append(f"  verdict: slot {slot} FEASIBLE at offsets "
                     f"{feasible}")
    else:
        reason = (REASON_CHANNEL_BUSY if rho == math.inf
                  else REASON_REUSE_DISTANCE)
        lines.append(f"  verdict: slot {slot} REJECTED ({reason}) — "
                     f"no offset satisfies the channel constraint")
    return lines


def format_decision(record: Dict) -> List[str]:
    """Printable lines for one recorded provenance decision."""
    placed = record.get("placed")
    outcome = (f"placed at slot {placed[0]} offset {placed[1]}"
               f"{' (reused cell)' if record.get('reused') else ''}"
               if placed else "REJECTED (deadline exhausted)")
    lines = [
        f"decision #{record['id']} [{record['policy']}] "
        f"flow {record['flow']} instance {record['instance']} "
        f"hop {record['hop']} attempt {record['attempt']}: {outcome}",
        f"  window: release {record['release']}, earliest "
        f"{record['earliest']}, deadline {record['deadline']}"
        + (" (precedence-bound)" if "precedence_bound" in record else ""),
    ]
    for probe in record.get("probes", []):
        rho = "inf" if probe["rho"] is None else probe["rho"]
        chain = ", ".join(f"{reason} x{count}"
                          for reason, count in probe.get("chain", []))
        result = probe.get("result")
        hit = (f"-> slot {result[0]} offset {result[1]}" if result
               else f"-> none ({probe.get('exhausted', REASON_WINDOW)})")
        lines.append(f"  probe rho={rho}: [{chain or 'empty window'}] {hit}")
    for entry in record.get("laxity", []):
        rho = "inf" if entry["rho"] is None else entry["rho"]
        lines.append(f"  laxity @ slot {entry['slot']} (rho={rho}): "
                     f"{entry['laxity']}")
    for step in record.get("descent", []):
        src = "inf" if step["from"] is None else step["from"]
        lines.append(f"  rho descent: {src} -> {step['to']}")
    return lines


def format_blast(record: Dict,
                 evicted: Optional[List[Dict]] = None) -> List[str]:
    """Printable lines for one recorded repair blast radius.

    ``evicted`` restricts the per-cell lines to a subset (e.g. the
    evictions touching one link); the header always reports the full
    blast size so a filtered view still shows the repair's true scope.
    """
    full = record.get("evicted", [])
    items = full if evicted is None else evicted
    lines = [f"blast #{record['id']} [{record.get('change', '?')}]: "
             f"{len(full)} cell(s) evicted for repair"]
    for item in items:
        lines.append(
            f"  evicted slot {item['slot']} offset {item['offset']}: "
            f"flow {item['flow']} instance {item['instance']} "
            f"hop {item['hop']} attempt {item['attempt']} "
            f"{item['sender']}->{item['receiver']} ({item['reason']})")
    return lines


def explain_from_provenance(records: List[Dict], sender: int,
                            receiver: int,
                            slot: Optional[int] = None) -> List[str]:
    """Recorded decisions for a link (optionally only those naming a slot).

    ``slot`` filters to decisions whose final placement or probe results
    touch that slot.  Repair blast records are included when they evict
    a transmission of the link (at the slot, when given) — the eviction
    explains why a later ``+repair`` decision re-placed the hop.
    """
    lines: List[str] = []
    for record in records:
        if record.get("kind") == "blast":
            matching = [
                item for item in record.get("evicted", [])
                if (item.get("sender"), item.get("receiver"))
                == (sender, receiver)
                and (slot is None or item.get("slot") == slot)]
            if matching:
                lines.extend(format_blast(record, matching))
            continue
        if record.get("kind") != "decision":
            continue
        if (record.get("sender"), record.get("receiver")) != (sender,
                                                              receiver):
            continue
        if slot is not None:
            touched = set()
            placed = record.get("placed")
            if placed:
                touched.add(placed[0])
            for probe in record.get("probes", []):
                if probe.get("result"):
                    touched.add(probe["result"][0])
            if slot not in touched:
                continue
        lines.extend(format_decision(record))
    return lines
