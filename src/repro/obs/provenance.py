"""Decision provenance: *why* the scheduler placed (or rejected) each cell.

The metrics registry and trace ring (PR 1) record *what* the scheduler
did; this module records *why*.  A :class:`ProvenanceRecorder` attached
to the live :class:`~repro.obs.recorder.Recorder` captures, per placed
transmission, one **decision record**:

* the request identity and its admission window (release, precedence
  bound, deadline);
* every ``findSlot`` **probe** the policy ran — for RC, one per ρ of the
  Algorithm-1 descent — each with the candidate slots examined and the
  *first* Section V-A constraint that rejected each candidate
  (``node-busy``, ``channel-busy``, ``reuse-distance``, ``window``),
  run-length encoded so long scans stay compact;
* for the slot a probe settled on, a per-offset verdict chain naming
  the occupant that blocks each infeasible offset and its reuse-graph
  distance (the exact Eq. V-A term that failed);
* the flow's Eq. 1 laxity evaluations and RC's ρ-descent steps;
* the final placement (or rejection) and whether it shares a cell.

Records are derived from the *schedule state*, not from the kernel's
internals: the classifier below reads only mode-independent structures
(busy matrix, occupancy planes, the reuse graph's hop matrix), so the
scalar and vector placement kernels emit **bit-identical provenance
streams** whenever they produce identical schedules — a property the
differential fuzz harness (:mod:`repro.validate.fuzz`) asserts.

Provenance rides behind the same module-level ``ENABLED`` flag as the
rest of the observability layer: instrumentation sites check
``_obs.ENABLED`` first and then ``RECORDER.provenance is not None``, so
a disabled run pays one attribute read and a provenance-less enabled
run pays two.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.schedule import Schedule
    from repro.core.transmissions import TransmissionRequest
    from repro.network.graphs import ChannelReuseGraph

#: Default decision capacity (records).  Like the trace ring, provenance
#: keeps the most recent decisions and counts evictions.
DEFAULT_CAPACITY = 200_000

#: First-rejection reasons (the Section V-A constraint taxonomy).
REASON_NODE_BUSY = "node-busy"          # transmission conflict in the slot
REASON_CHANNEL_BUSY = "channel-busy"    # rho = inf and no free offset
REASON_REUSE_DISTANCE = "reuse-distance"  # every offset closer than rho
REASON_WINDOW = "window"                # outside [earliest, deadline]
ACCEPT = "accept"


def _jsonable_rho(rho: float) -> Optional[int]:
    """ρ for JSON payloads: ∞ (no reuse) serializes as None."""
    return None if rho == float("inf") else int(rho)


# ----------------------------------------------------------------------
# Constraint classification (kernel-mode independent)
# ----------------------------------------------------------------------

def cell_reuse_distances(schedule: "Schedule",
                         reuse_graph: "ChannelReuseGraph",
                         sender: int, receiver: int, slot: int,
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-offset min reuse distance of one slot, with the blocker lane.

    Delegates to :func:`repro.core.kernel.cell_distances` — the
    mode-independent recomputation from occupancy planes — imported
    lazily to keep obs importable without pulling core at module load.
    """
    from repro.core.kernel import cell_distances

    return cell_distances(schedule, reuse_graph, sender, receiver, slot)


def window_rejection_chain(schedule: "Schedule",
                           reuse_graph: "ChannelReuseGraph",
                           sender: int, receiver: int, rho: float,
                           start: int, end: int) -> List[List]:
    """First-rejection reason for every slot of ``[start, end]``, RLE'd.

    Returns ``[[reason, run_length], ...]`` covering the window in slot
    order — the constraint chain a ``findSlot`` scan walked.  A feasible
    slot maps to :data:`ACCEPT` (in a real scan only the final slot can
    be one).  Empty list when ``start > end``.
    """
    if start > end:
        return []
    conflict = schedule.conflict_mask(sender, receiver, start, end)
    if rho == float("inf"):
        free = schedule.free_offset_slots(start, end)
        reasons = np.where(conflict, 0, np.where(free, 2, 1))
        labels = (REASON_NODE_BUSY, REASON_CHANNEL_BUSY, ACCEPT)
    else:
        best = np.fromiter(
            (int(cell_reuse_distances(schedule, reuse_graph, sender,
                                      receiver, slot)[0].max())
             for slot in range(start, end + 1)),
            dtype=np.int64, count=end - start + 1)
        reasons = np.where(conflict, 0, np.where(best >= rho, 2, 1))
        labels = (REASON_NODE_BUSY, REASON_REUSE_DISTANCE, ACCEPT)
    chain: List[List] = []
    for code in reasons:
        label = labels[int(code)]
        if chain and chain[-1][0] == label:
            chain[-1][1] += 1
        else:
            chain.append([label, 1])
    return chain


def offset_verdicts(schedule: "Schedule", reuse_graph: "ChannelReuseGraph",
                    sender: int, receiver: int, slot: int, rho: float,
                    ) -> List[Dict]:
    """Per-offset constraint verdicts for one slot.

    One dict per channel offset: ``verdict`` (:data:`ACCEPT`,
    :data:`REASON_CHANNEL_BUSY`, or :data:`REASON_REUSE_DISTANCE`),
    ``load`` (occupants already in the cell — the least-loaded rule's
    key), and for reuse-distance rejections the ``blocker`` occupant
    link and its ``distance`` on the reuse graph.
    """
    counts, occ_senders, occ_receivers = schedule.occupancy()
    verdicts: List[Dict] = []
    if rho == float("inf"):
        for offset in range(schedule.num_offsets):
            load = int(counts[slot, offset])
            verdicts.append({
                "offset": offset, "load": load,
                "verdict": ACCEPT if load == 0 else REASON_CHANNEL_BUSY,
            })
        return verdicts
    dist, lanes = cell_reuse_distances(schedule, reuse_graph, sender,
                                       receiver, slot)
    for offset in range(schedule.num_offsets):
        load = int(counts[slot, offset])
        entry: Dict = {"offset": offset, "load": load}
        if dist[offset] >= rho:
            entry["verdict"] = ACCEPT
        else:
            lane = int(lanes[offset])
            entry["verdict"] = REASON_REUSE_DISTANCE
            entry["blocker"] = [int(occ_senders[slot, offset, lane]),
                                int(occ_receivers[slot, offset, lane])]
            entry["distance"] = int(dist[offset])
        verdicts.append(entry)
    return verdicts


# ----------------------------------------------------------------------
# The recorder
# ----------------------------------------------------------------------

class ProvenanceRecorder:
    """Bounded sink for scheduler decision records.

    The engine brackets every placement with :meth:`begin_decision` /
    :meth:`end_decision`; ``findSlot`` contributes one :meth:`record_probe`
    per scan; RC contributes :meth:`record_laxity` and
    :meth:`record_descent` from its Algorithm-1 loop.  Records are plain
    JSON-ready dicts (see the module docstring for the shape).

    Args:
        capacity: Maximum retained decisions; the oldest are evicted
            (and counted in :attr:`dropped`) once full.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._decisions: deque = deque(maxlen=capacity)
        self._current: Optional[Dict] = None
        self._next_id = 0
        self.dropped = 0

    # -- identity -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._decisions)

    @property
    def capacity(self) -> int:
        """Maximum number of retained decisions."""
        return self._decisions.maxlen  # type: ignore[return-value]

    def next_id(self) -> int:
        """The id the next :meth:`begin_decision` will assign (monotonic;
        consumers use ``[next_id_before, next_id_after)`` to reference
        the decisions an operation produced)."""
        return self._next_id

    # -- engine hooks ---------------------------------------------------

    def begin_decision(self, policy: str, request: "TransmissionRequest",
                       earliest: int, context: Optional[Dict] = None) -> int:
        """Open the decision record for one transmission placement."""
        record: Dict = {
            "kind": "decision",
            "id": self._next_id,
            "policy": policy,
            "flow": request.flow_id,
            "instance": request.instance,
            "hop": request.hop_index,
            "attempt": request.attempt,
            "sender": request.sender,
            "receiver": request.receiver,
            "release": request.release_slot,
            "earliest": earliest,
            "deadline": request.deadline_slot,
            "probes": [],
            "laxity": [],
            "descent": [],
            "placed": None,
            "reused": False,
        }
        if earliest > request.release_slot:
            # The window opens late because a predecessor (earlier hop /
            # attempt of the same instance) was placed at earliest - 1.
            record["precedence_bound"] = earliest
        if context:
            record["context"] = dict(context)
        self._next_id += 1
        self._current = record
        return record["id"]

    def end_decision(self, placement: Optional[Tuple[int, int]],
                     reused: bool = False) -> Optional[int]:
        """Close the open decision with its outcome; returns its id."""
        record = self._current
        if record is None:
            return None
        record["placed"] = list(placement) if placement is not None else None
        record["reused"] = bool(reused)
        if len(self._decisions) == self._decisions.maxlen:
            self.dropped += 1
        self._decisions.append(record)
        self._current = None
        return record["id"]

    # -- policy / findSlot hooks ---------------------------------------

    def record_probe(self, schedule: "Schedule",
                     reuse_graph: "ChannelReuseGraph",
                     request: "TransmissionRequest", rho: float,
                     earliest: int, offset_rule: str,
                     result: Optional[Tuple[int, int]]) -> None:
        """Record one ``findSlot`` scan and its constraint chain.

        Derives, from the schedule state the scan ran against, the first
        rejecting constraint of every candidate slot up to the found
        slot (or the deadline when the scan came up empty), plus the
        per-offset verdicts of the found slot.
        """
        record = self._current
        if record is None:
            return
        deadline = request.deadline_slot
        probe: Dict = {
            "rho": _jsonable_rho(rho),
            "earliest": earliest,
            "rule": offset_rule,
            "result": list(result) if result is not None else None,
        }
        if earliest > deadline:
            probe["chain"] = []
            probe["exhausted"] = REASON_WINDOW
        else:
            last = result[0] if result is not None else deadline
            probe["chain"] = window_rejection_chain(
                schedule, reuse_graph, request.sender, request.receiver,
                rho, earliest, last)
            if result is None:
                probe["exhausted"] = REASON_WINDOW
            else:
                probe["offsets"] = offset_verdicts(
                    schedule, reuse_graph, request.sender, request.receiver,
                    result[0], rho)
        record["probes"].append(probe)

    def record_laxity(self, slot: int, rho: float, laxity: int) -> None:
        """Record one Eq. 1 evaluation of the open decision."""
        record = self._current
        if record is None:
            return
        record["laxity"].append({
            "slot": slot, "rho": _jsonable_rho(rho), "laxity": int(laxity)})

    def record_descent(self, from_rho: float, to_rho: float) -> None:
        """Record one RC ρ-descent step of the open decision."""
        record = self._current
        if record is None:
            return
        record["descent"].append({
            "from": _jsonable_rho(from_rho), "to": _jsonable_rho(to_rho)})

    # -- repair hooks ---------------------------------------------------

    def record_blast(self, change: str, evicted: List[Dict]) -> int:
        """Record one repair's blast radius: the change summary and the
        evicted cells with their per-cell evict reasons (see
        :mod:`repro.core.repair`).  The record shares the decision id
        space, so a repair's eviction and its re-placement decisions
        stay adjacent and citable as one ``[first, last)`` range.
        """
        record: Dict = {
            "kind": "blast",
            "id": self._next_id,
            "change": change,
            "count": len(evicted),
            "evicted": [dict(cell) for cell in evicted],
        }
        self._next_id += 1
        if len(self._decisions) == self._decisions.maxlen:
            self.dropped += 1
        self._decisions.append(record)
        return record["id"]

    # -- reads / export -------------------------------------------------

    def decisions(self) -> List[Dict]:
        """Retained decision records, oldest first."""
        return list(self._decisions)

    def records(self) -> List[Dict]:
        """Everything :meth:`export_jsonl` writes: the retained decisions
        plus a ``prov_meta`` trailer accounting for ring evictions."""
        return self.decisions() + [{
            "kind": "prov_meta",
            "dropped": self.dropped,
            "capacity": self.capacity,
            "decisions": self._next_id,
        }]

    def laxity_timeline(self, flow_id: int) -> List[Dict]:
        """Eq. 1 evaluations of one flow across its retained decisions,
        in decision order — the flow's laxity timeline."""
        timeline: List[Dict] = []
        for record in self._decisions:
            if record.get("kind") != "decision" or record["flow"] != flow_id:
                continue
            for entry in record["laxity"]:
                timeline.append({
                    "decision": record["id"], "instance": record["instance"],
                    "hop": record["hop"], "attempt": record["attempt"],
                    **entry})
        return timeline

    def decisions_for_link(self, sender: int, receiver: int) -> List[Dict]:
        """Retained decisions placing (or failing to place) one link."""
        return [record for record in self._decisions
                if record.get("kind") == "decision"
                and record["sender"] == sender
                and record["receiver"] == receiver]

    def export_jsonl(self, path) -> int:
        """Write the decision records (plus trailer) as JSON Lines.

        Returns:
            The number of decision records written (trailer excluded).
        """
        from repro.io import save_jsonl

        return save_jsonl(self.records(), path) - 1
