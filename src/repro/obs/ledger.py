"""The run ledger: one append-only record per CLI invocation.

Every *producing* ``repro`` command — experiments, the manager, the
benchmark harness, the fuzzer — appends one JSON record to an
append-only ``runs.jsonl`` (see :class:`RunLedger`), so six months
later "which invocation produced this artifact, with what config, on
what machine, and did it finish?" is a grep instead of an archaeology
dig.  Records carry:

* ``run_id`` — ``<utc-stamp>-<config-hash-prefix>-<pid>``, unique
  enough to cite in reports and stable enough to diff;
* the full ``argv`` and a canonical-JSON ``config_hash`` of the parsed
  arguments (two runs with the same hash ran the same configuration,
  whatever order the flags were typed in);
* ``seeds`` and an environment fingerprint (python / numpy / platform /
  CPU count) — the reproducibility envelope;
* wall time, exit ``status`` (``"ok"``, ``"error:<Type>"``, or an
  integer exit code), and the paths of every artifact the run wrote
  (metrics snapshots, traces, reports, provenance dumps).

``repro ledger list / show / diff`` query the file; ``diff`` renders
what changed between two runs' configs, environments, and headline
metrics.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: Default ledger location, relative to the invoking working directory.
DEFAULT_LEDGER = "runs.jsonl"


def environment_fingerprint() -> Dict:
    """The reproducibility envelope: interpreter, libraries, machine."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def config_hash(config: Dict) -> str:
    """SHA-256 of the canonical JSON form of a configuration dict.

    Keys are sorted and values JSON-normalized, so flag order and dict
    iteration order never change the hash; non-JSON values (Paths,
    functions) are stringified.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def new_record(command: str, argv: Sequence[str], config: Dict,
               seeds: Optional[Sequence[int]] = None) -> Dict:
    """Open a run record (caller fills outcome fields before appending).

    ``wall_s``, ``status``, ``artifacts``, and ``metrics`` stay unset
    here; :meth:`RunLedger.commit` stamps them when the run finishes.
    """
    digest = config_hash(config)
    started = time.time()
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(started))
    return {
        "kind": "run",
        "run_id": f"{stamp}-{digest[:8]}-{os.getpid()}",
        "command": command,
        "argv": list(argv),
        "config": {key: _jsonable(value)
                   for key, value in sorted(config.items())},
        "config_hash": digest,
        "seeds": [int(s) for s in seeds] if seeds is not None else [],
        "env": environment_fingerprint(),
        "started_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                    time.gmtime(started)),
        "_started": started,
    }


def _jsonable(value):
    """JSON-safe view of an argparse value (Paths become strings)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class RunLedger:
    """Append-only JSON Lines ledger of CLI runs.

    Args:
        path: The ledger file; created (with parents) on first append.
    """

    def __init__(self, path: Union[str, Path] = DEFAULT_LEDGER):
        self.path = Path(path)
        #: Lines skipped by the last :meth:`records` call because they
        #: were not valid JSON objects (corruption, truncated appends).
        self.skipped = 0

    def commit(self, record: Dict, status: Union[str, int] = "ok",
               artifacts: Optional[Sequence[str]] = None,
               metrics: Optional[Dict] = None) -> Dict:
        """Stamp a record's outcome and append it to the ledger.

        Args:
            record: An open record from :func:`new_record`.
            status: ``"ok"``, ``"error:<Type>"``, or the command's
                integer exit code.
            artifacts: Paths of files the run wrote.
            metrics: A small headline-metrics dict (counter totals), not
                a full snapshot — the snapshot's *path* belongs in
                ``artifacts``.

        Returns:
            The completed record, as written.
        """
        record = dict(record)
        started = record.pop("_started", None)
        record["wall_s"] = (round(time.time() - started, 6)
                            if started is not None else None)
        record["status"] = status
        record["artifacts"] = [str(p) for p in (artifacts or [])]
        if metrics:
            record["metrics"] = {key: _jsonable(value)
                                 for key, value in sorted(metrics.items())}
        self.append(record)
        return record

    def append(self, record: Dict) -> None:
        """Append one complete record with a single ``O_APPEND`` write.

        The service's worker pool has many processes committing to one
        ledger concurrently.  A buffered ``open(..., "a")`` append can
        flush a record in several ``write(2)`` calls, and two writers
        flushing at once interleave partial lines — exactly the
        ``.skipped`` corruption :meth:`records` tolerates but must never
        be *caused* by us.  Building the full line in memory and issuing
        it as one write to an ``O_APPEND`` descriptor keeps every line
        intact whatever the writer count (POSIX serializes the
        offset-advance-plus-write of append-mode writes).
        """
        line = json.dumps(record, separators=(",", ":"),
                          default=str) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def records(self) -> List[Dict]:
        """All parseable ledger records, oldest first.

        The ledger is append-only and long-lived, so it accumulates the
        scars of real use: a run killed mid-append leaves a truncated
        line, a concurrent writer without file locking can interleave,
        an editor can mangle a line.  One bad line must not make the
        whole history unreadable, so unparseable or non-object lines
        are *skipped* (and counted in :attr:`skipped`) rather than
        raised — unlike :func:`repro.io.load_jsonl`, which stays strict
        for artifacts we produce atomically.

        Returns:
            The valid records, oldest first (empty when no ledger yet).
        """
        self.skipped = 0
        if not self.path.exists():
            return []
        records: List[Dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped += 1
                    continue
                if not isinstance(record, dict):
                    self.skipped += 1
                    continue
                records.append(record)
        return records

    def find(self, run_id: str) -> Optional[Dict]:
        """The record with a run id (prefix match accepted, latest wins)."""
        match = None
        for record in self.records():
            candidate = record.get("run_id", "")
            if candidate == run_id or candidate.startswith(run_id):
                match = record
        return match


def diff_records(a: Dict, b: Dict) -> List[str]:
    """Human-readable differences between two run records.

    Compares command, config (per key), environment, wall time, status,
    and headline metrics; returns one line per difference (empty when
    the runs are equivalent).
    """
    lines: List[str] = []
    if a.get("command") != b.get("command"):
        lines.append(f"command: {a.get('command')} -> {b.get('command')}")
    config_a, config_b = a.get("config", {}), b.get("config", {})
    for key in sorted(set(config_a) | set(config_b)):
        left = config_a.get(key, "<unset>")
        right = config_b.get(key, "<unset>")
        if left != right:
            lines.append(f"config.{key}: {left} -> {right}")
    env_a, env_b = a.get("env", {}), b.get("env", {})
    for key in sorted(set(env_a) | set(env_b)):
        if env_a.get(key) != env_b.get(key):
            lines.append(f"env.{key}: {env_a.get(key)} -> {env_b.get(key)}")
    if a.get("status") != b.get("status"):
        lines.append(f"status: {a.get('status')} -> {b.get('status')}")
    wall_a, wall_b = a.get("wall_s"), b.get("wall_s")
    if wall_a and wall_b and wall_a > 0:
        lines.append(f"wall_s: {wall_a:.3f} -> {wall_b:.3f} "
                     f"({wall_b / wall_a - 1.0:+.1%})")
    metrics_a, metrics_b = a.get("metrics", {}), b.get("metrics", {})
    for key in sorted(set(metrics_a) | set(metrics_b)):
        left = metrics_a.get(key, "<unset>")
        right = metrics_b.get(key, "<unset>")
        if left != right:
            lines.append(f"metrics.{key}: {left} -> {right}")
    return lines
