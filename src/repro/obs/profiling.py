"""Lightweight profiling scopes built on the recorder.

Both helpers use monotonic clocks (``time.perf_counter``) and resolve
the recorder once at scope entry; with observability disabled they yield
immediately and record nothing, so wrapping experiment phases in
``timed()`` is free in production runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs import recorder as _runtime
from repro.obs.metrics import TIME_BUCKETS_S
from repro.obs.recorder import Recorder


def _resolve(recorder: Optional[Recorder]):
    """Explicit recorder, else the live one, else None (disabled)."""
    if recorder is not None:
        return recorder
    return _runtime.RECORDER if _runtime.ENABLED else None


@contextmanager
def timed(name: str, recorder: Optional[Recorder] = None) -> Iterator[None]:
    """Accumulate wall time for ``name`` into the metrics registry.

    Records three metrics per name: ``time.<name>.calls`` (counter),
    ``time.<name>.total_s`` (float counter), and ``time.<name>.seconds``
    (duration histogram).
    """
    rec = _resolve(recorder)
    if rec is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        rec.count(f"time.{name}.calls")
        rec.count(f"time.{name}.total_s", elapsed)
        rec.observe(f"time.{name}.seconds", elapsed, TIME_BUCKETS_S)


@contextmanager
def span(name: str, recorder: Optional[Recorder] = None,
         **fields) -> Iterator[None]:
    """Emit a ``phase`` trace event carrying the scope's duration.

    Use for one-off scopes whose individual durations matter (e.g. each
    sweep point); use :func:`timed` when only aggregates are needed.
    """
    rec = _resolve(recorder)
    if rec is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        rec.event("phase", name=name,
                  duration_s=round(elapsed, 9), **fields)
