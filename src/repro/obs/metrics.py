"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the observability layer (the
:mod:`repro.obs.trace` ring buffer is the event half).  Metrics use
hierarchical dotted names (``scheduler.slots_scanned``,
``policy.RC.placements``, ``time.phase.schedule.total_s``) rather than
label sets — the name space is small and flat names keep snapshots
trivially JSON-serializable and mergeable.

Snapshots are plain dicts so they can be written with ``json.dumps``
(see :func:`repro.io.save_metrics`), diffed, and merged across worker
processes with :meth:`MetricsRegistry.merge_snapshot`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds for durations in seconds.
TIME_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: Default buckets for small integer quantities (hop counts, retries).
SMALL_INT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 5, 6, 8, 12, 16)


class Counter:
    """A monotonically increasing count (float increments allowed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with count / sum / min / max.

    Buckets are upper bounds (inclusive); one overflow bucket catches
    everything above the last bound.  Fixed buckets keep ``observe`` an
    O(log B) bisect and make snapshots mergeable without re-binning.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float]):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        from bisect import bisect_left

        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> Optional[float]:
        """Arithmetic mean of all observations, or None when empty."""
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate (None when empty)."""
        return quantile_from_buckets(self.buckets, self.counts, q)

    def to_dict(self) -> Dict:
        """JSON-serializable form (merged by :meth:`merge_dict`)."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: Dict) -> None:
        """Fold a snapshot of another histogram with identical buckets.

        Raises:
            ValueError: When the snapshot's bucket bounds differ from
                this histogram's — raised before any bin is touched, so
                a failed merge leaves the histogram unchanged.
        """
        theirs = tuple(float(b) for b in data["buckets"])
        if theirs != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds mismatch on "
                f"merge — registry has {list(self.buckets)}, snapshot "
                f"has {list(theirs)}")
        if len(data["counts"]) != len(self.counts):
            raise ValueError(
                f"histogram {self.name!r}: snapshot has "
                f"{len(data['counts'])} bins, expected {len(self.counts)}")
        for index, count in enumerate(data["counts"]):
            self.counts[index] += int(count)
        self.count += int(data["count"])
        self.sum += float(data["sum"])
        for bound, pick in (("min", min), ("max", max)):
            other = data.get(bound)
            if other is None:
                continue
            ours = getattr(self, bound)
            setattr(self, bound,
                    other if ours is None else pick(ours, other))


def quantile_from_buckets(bounds: Sequence[float], counts: Sequence[int],
                          q: float) -> Optional[float]:
    """Estimate quantile ``q`` from fixed-bucket histogram bins.

    The estimate is the upper bound of the bucket holding the q-th
    observation — the same rule Prometheus' ``histogram_quantile``
    degenerates to at bucket resolution — so the JSON snapshot and the
    OpenMetrics exposition of one histogram agree exactly.  An
    observation landing in the overflow bin yields the last finite
    bound (there is no ``+Inf`` to return a number for).

    Args:
        bounds: Inclusive bucket upper bounds, strictly increasing.
        counts: Per-bucket counts, one longer than ``bounds`` (overflow
            bin last).
        q: Quantile in [0, 1].

    Returns:
        The estimated quantile, or None when the histogram is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"expected {len(bounds) + 1} bins for {len(bounds)} bounds, "
            f"got {len(counts)}")
    total = sum(counts)
    if total == 0:
        return None
    # Rank of the target observation, 1-based; q=0 maps to the first.
    rank = max(1, int(q * total + 0.5)) if q > 0 else 1
    rank = min(rank, total)
    cumulative = 0
    for index, count in enumerate(counts[:-1]):
        cumulative += count
        if cumulative >= rank:
            return float(bounds[index])
    return float(bounds[-1])


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    All accessors are get-or-create, so instrumentation sites never need
    to pre-register the metrics they write.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create handles ------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        handle = self._gauges.get(name)
        if handle is None:
            handle = self._gauges[name] = Gauge(name)
        return handle

    def histogram(self, name: str,
                  buckets: Sequence[float] = SMALL_INT_BUCKETS) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at creation)."""
        handle = self._histograms.get(name)
        if handle is None:
            handle = self._histograms[name] = Histogram(name, buckets)
        return handle

    # -- write conveniences ---------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = SMALL_INT_BUCKETS) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name, buckets).observe(value)

    # -- reads ----------------------------------------------------------

    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0 when absent)."""
        handle = self._counters.get(name)
        return handle.value if handle is not None else 0.0

    def counter_names(self) -> List[str]:
        """Sorted names of all counters."""
        return sorted(self._counters)

    # -- snapshot / merge / reset ---------------------------------------

    def snapshot(self) -> Dict:
        """JSON-serializable snapshot of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold a snapshot into this registry.

        Counters and histogram bins add; gauges take the snapshot's value
        (last write wins).  Histogram bucket bounds must match.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name, data["buckets"]).merge_dict(data)

    @staticmethod
    def merge_snapshots(snapshots: Iterable[Dict]) -> Dict:
        """Merge snapshots (e.g. from worker processes) into one."""
        merged = MetricsRegistry()
        for snapshot in snapshots:
            merged.merge_snapshot(snapshot)
        return merged.snapshot()

    def reset(self) -> None:
        """Drop every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
