"""The process-wide recorder: metrics + trace behind one enabled flag.

Hot paths are instrumented with the idiom::

    from repro.obs import recorder as _obs
    ...
    if _obs.ENABLED:
        _obs.RECORDER.count("scheduler.placements")
        _obs.RECORDER.event("placement", flow=flow_id, slot=slot)

``ENABLED`` is a module-level boolean, so the disabled cost of an
instrumentation site is a single attribute read — no isinstance checks,
no method dispatch into a null object.  ``RECORDER`` is only consulted
after the flag passes, and defaults to a :class:`NullRecorder` so code
that skips the flag check (cold paths, tests) still can't crash.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.metrics import MetricsRegistry, SMALL_INT_BUCKETS
from repro.obs.trace import Tracer


class Recorder:
    """Bundles a :class:`MetricsRegistry` and a :class:`Tracer`.

    ``provenance`` optionally attaches a
    :class:`repro.obs.provenance.ProvenanceRecorder`; it defaults to
    None (decision provenance is opt-in on top of an enabled recorder,
    and this module must not import :mod:`repro.obs.provenance` — core
    modules import this one at load time and provenance reaches back
    into core).  ``timeseries`` optionally attaches a
    :class:`repro.obs.timeseries.TimeSeriesStore` under the same
    contract, and ``spans`` a :class:`repro.obs.spans.SpanRecorder`
    (bound here to the registry and tracer so finished spans observe
    ``span.<name>.seconds`` histograms and mirror ``span`` ring
    events).  Instrumentation sites check ``ENABLED`` first, then
    ``RECORDER.provenance is not None`` / ``RECORDER.timeseries is not
    None`` / ``RECORDER.spans is not None``.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 provenance=None, timeseries=None, spans=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.provenance = provenance
        self.timeseries = timeseries
        self.spans = spans
        if spans is not None:
            spans.bind(self.registry, self.tracer)

    def sample(self, name: str, t: float, value: float) -> None:
        """Append one time-series sample (no-op without a store)."""
        if self.timeseries is not None:
            self.timeseries.record(name, t, value)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name``."""
        self.registry.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        self.registry.set_gauge(name, value)

    def observe(self, name: str, value: float,
                buckets=SMALL_INT_BUCKETS) -> None:
        """Record ``value`` into histogram ``name``."""
        self.registry.observe(name, value, buckets)

    def event(self, kind: str, **fields) -> None:
        """Emit a structured trace event."""
        self.tracer.emit(kind, **fields)

    def snapshot(self) -> Dict:
        """JSON-serializable metrics snapshot."""
        return self.registry.snapshot()


class NullRecorder:
    """Recorder with every write a no-op (the disabled default)."""

    #: Shared empty registry/tracer so reads don't need guards either.
    def __init__(self):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=1)
        self.provenance = None
        self.timeseries = None
        self.spans = None

    def sample(self, name: str, t: float, value: float) -> None:
        """Discard."""

    def count(self, name: str, amount: float = 1.0) -> None:
        """Discard."""

    def set_gauge(self, name: str, value: float) -> None:
        """Discard."""

    def observe(self, name: str, value: float,
                buckets=SMALL_INT_BUCKETS) -> None:
        """Discard."""

    def event(self, kind: str, **fields) -> None:
        """Discard."""

    def snapshot(self) -> Dict:
        """An empty snapshot."""
        return self.registry.snapshot()


#: Module-level fast-path flag.  Instrumentation sites read this (and
#: nothing else) before touching :data:`RECORDER`.
ENABLED: bool = False

#: The process-wide recorder.  A NullRecorder whenever ``ENABLED`` is
#: False, so unguarded writes stay harmless.
RECORDER = NullRecorder()


def enable(recorder: Optional[Recorder] = None) -> Recorder:
    """Turn observability on, installing (or creating) a live recorder.

    Returns:
        The installed :class:`Recorder`.
    """
    global ENABLED, RECORDER
    RECORDER = recorder if recorder is not None else Recorder()
    ENABLED = True
    return RECORDER


def disable() -> None:
    """Turn observability off and drop the live recorder."""
    global ENABLED, RECORDER
    ENABLED = False
    RECORDER = NullRecorder()


def is_enabled() -> bool:
    """Whether a live recorder is installed."""
    return ENABLED


def get_recorder():
    """The current recorder (a :class:`NullRecorder` when disabled)."""
    return RECORDER


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Scope observability to a ``with`` block, restoring prior state.

    The primary entry point for tests and library callers::

        with obs.recording() as rec:
            scheduler.run(flow_set)
        snapshot = rec.snapshot()
    """
    global ENABLED, RECORDER
    previous = (ENABLED, RECORDER)
    installed = enable(recorder)
    try:
        yield installed
    finally:
        ENABLED, RECORDER = previous
