"""Structured trace events in a bounded ring buffer.

Instrumentation sites emit *typed* events — a short ``kind`` string from
the taxonomy below plus flat JSON-serializable fields — rather than
formatted log lines, so traces can be filtered and aggregated
programmatically.  The buffer is a fixed-capacity ring: tracing a long
sweep keeps the most recent events and counts what it dropped instead of
growing without bound.

Event taxonomy (kinds emitted by the instrumented stack):

========================  ==============================================
kind                      emitted by / meaning
========================  ==============================================
``placement``             scheduler engine — a transmission was placed
``flow_admitted``         scheduler engine — every instance of a flow fit
``flow_rejected``         scheduler engine — first deadline miss
``laxity_eval``           RC — Equation 1 evaluated for a candidate slot
``rc_fallback``           RC — reuse distance ρ lowered one step
``sim_repetition``        simulator — per-repetition link outcomes
``ks_decision``           detection — verdict for one reuse link
``phase``                 :func:`repro.obs.profiling.span` — timed scope
``manager_epoch``         network manager — one closed-loop epoch's
                          health verdicts and remediation action
``manager_audit_failed``  network manager — a rebuilt schedule failed
                          its pre-flight audit and was rolled back
``slo_burn``              SLO engine — a flow's burn-rate alert state
                          changed (``ok`` / ``warn`` / ``alert``)
``service_request``       service executor — one handled verb with wall
                          time and cache verdicts
``span``                  :mod:`repro.obs.spans` — a finished
                          request-path span (mirrored into the ring
                          when a recorder carries both layers; the
                          full causal tree lives in the span dump)
``trace_meta``            :meth:`Tracer.export_jsonl` — export trailer
                          accounting for ring evictions (``dropped``,
                          ``capacity``); not an in-ring event
========================  ==============================================
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List

#: Default ring capacity (events).
DEFAULT_CAPACITY = 65536


@dataclass
class TraceEvent:
    """One structured event.

    Attributes:
        seq: Monotonic sequence number (global within the tracer, stable
            across ring overflow — gaps reveal drops).
        kind: Event type from the module taxonomy.
        fields: Flat JSON-serializable payload.
    """

    seq: int
    kind: str
    fields: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """Flatten to one JSONL record."""
        return {"seq": self.seq, "kind": self.kind, **self.fields}


class Tracer:
    """Bounded in-memory event sink.

    Args:
        capacity: Ring size; once full, the oldest events are evicted and
            :attr:`dropped` counts the evictions.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return self._events.maxlen  # type: ignore[return-value]

    def emit(self, kind: str, **fields) -> None:
        """Append one event, evicting the oldest when full."""
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(TraceEvent(self._seq, kind, fields))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._events)

    def event_dicts(self) -> List[Dict]:
        """Retained events as JSONL-ready dicts."""
        return [event.to_dict() for event in self._events]

    def kind_counts(self) -> Dict[str, int]:
        """``{kind: count}`` over the retained events."""
        return dict(_TallyCounter(event.kind for event in self._events))

    def clear(self) -> None:
        """Drop all retained events (sequence numbering continues)."""
        self._events.clear()

    def export_jsonl(self, path) -> int:
        """Write the retained events as JSON Lines via :mod:`repro.io`.

        The file ends with a ``trace_meta`` trailer record —
        ``{"kind": "trace_meta", "dropped": N, "capacity": C}`` — so an
        exported trace is honest about ring evictions: without it, a
        trace that silently lost its oldest events is indistinguishable
        from a complete one.  Consumers summarizing by ``kind`` should
        skip the trailer (it is bookkeeping, not an observed event).

        Returns:
            The number of events written (the trailer excluded).
        """
        # Imported lazily: repro.io pulls in the core model, which itself
        # imports repro.obs for instrumentation.
        from repro.io import save_jsonl

        trailer = {"kind": "trace_meta", "dropped": self.dropped,
                   "capacity": self.capacity}
        return save_jsonl(self.event_dicts() + [trailer], path) - 1
