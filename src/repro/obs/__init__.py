"""Observability: metrics registry, structured tracing, profiling.

The layer has three pieces:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with JSON snapshot/merge (:mod:`repro.obs.metrics`);
* :class:`Tracer` — typed events in a bounded ring buffer with JSONL
  export (:mod:`repro.obs.trace`);
* a process-wide :class:`Recorder` behind a module-level ``ENABLED``
  flag (:mod:`repro.obs.recorder`), so instrumented hot paths cost one
  attribute read when observability is off;
* :class:`TimeSeriesStore` — windowed ``(t, value)`` series with
  bounded retention (:mod:`repro.obs.timeseries`), and on top of it
  :class:`SloEngine` — per-flow multi-window burn-rate alerting
  (:mod:`repro.obs.slo`) exported as OpenMetrics text
  (:mod:`repro.obs.openmetrics`) or an ASCII dashboard
  (:mod:`repro.obs.top`).

Typical library use::

    from repro import obs

    with obs.recording() as rec:
        result = schedule_workload(network, flows, "RC")
    print(obs.format_report(rec.snapshot()))

From the CLI, ``--trace FILE`` / ``--metrics-out FILE`` enable the same
machinery, and ``python -m repro report FILE`` renders a saved snapshot.
"""

from repro.obs.ledger import RunLedger, environment_fingerprint
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SMALL_INT_BUCKETS,
    TIME_BUCKETS_S,
    quantile_from_buckets,
)
from repro.obs.openmetrics import parse_openmetrics, render_openmetrics
from repro.obs.profiling import span, timed
from repro.obs.provenance import ProvenanceRecorder
from repro.obs.recorder import (
    NullRecorder,
    Recorder,
    disable,
    enable,
    get_recorder,
    is_enabled,
    recording,
)
from repro.obs.report import format_report
from repro.obs.slo import FlowSloState, SloConfig, SloEngine
from repro.obs.spans import (
    ActiveSpan,
    SpanRecorder,
    activate,
    current_span,
    stage,
    wire_context,
)
from repro.obs.timeseries import DEFAULT_RETENTION, Series, TimeSeriesStore
from repro.obs.top import render_top, sparkline
from repro.obs.trace import DEFAULT_CAPACITY, TraceEvent, Tracer

__all__ = [
    "ActiveSpan",
    "Counter",
    "DEFAULT_CAPACITY",
    "DEFAULT_RETENTION",
    "FlowSloState",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "ProvenanceRecorder",
    "Recorder",
    "RunLedger",
    "SMALL_INT_BUCKETS",
    "Series",
    "SloConfig",
    "SloEngine",
    "SpanRecorder",
    "TIME_BUCKETS_S",
    "TimeSeriesStore",
    "TraceEvent",
    "Tracer",
    "activate",
    "current_span",
    "disable",
    "enable",
    "environment_fingerprint",
    "format_report",
    "get_recorder",
    "is_enabled",
    "parse_openmetrics",
    "quantile_from_buckets",
    "recording",
    "render_openmetrics",
    "render_top",
    "span",
    "sparkline",
    "stage",
    "timed",
    "wire_context",
]
