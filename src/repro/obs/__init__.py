"""Observability: metrics registry, structured tracing, profiling.

The layer has three pieces:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with JSON snapshot/merge (:mod:`repro.obs.metrics`);
* :class:`Tracer` — typed events in a bounded ring buffer with JSONL
  export (:mod:`repro.obs.trace`);
* a process-wide :class:`Recorder` behind a module-level ``ENABLED``
  flag (:mod:`repro.obs.recorder`), so instrumented hot paths cost one
  attribute read when observability is off.

Typical library use::

    from repro import obs

    with obs.recording() as rec:
        result = schedule_workload(network, flows, "RC")
    print(obs.format_report(rec.snapshot()))

From the CLI, ``--trace FILE`` / ``--metrics-out FILE`` enable the same
machinery, and ``python -m repro report FILE`` renders a saved snapshot.
"""

from repro.obs.ledger import RunLedger, environment_fingerprint
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SMALL_INT_BUCKETS,
    TIME_BUCKETS_S,
)
from repro.obs.profiling import span, timed
from repro.obs.provenance import ProvenanceRecorder
from repro.obs.recorder import (
    NullRecorder,
    Recorder,
    disable,
    enable,
    get_recorder,
    is_enabled,
    recording,
)
from repro.obs.report import format_report
from repro.obs.trace import DEFAULT_CAPACITY, TraceEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "ProvenanceRecorder",
    "Recorder",
    "RunLedger",
    "SMALL_INT_BUCKETS",
    "TIME_BUCKETS_S",
    "TraceEvent",
    "Tracer",
    "disable",
    "enable",
    "environment_fingerprint",
    "format_report",
    "get_recorder",
    "is_enabled",
    "recording",
    "span",
    "timed",
]
