"""Per-flow SLO tracking with multi-window burn-rate alerting.

The paper's guarantees are per-flow: every instance of a periodic flow
must be delivered by its deadline.  The simulator reports that as a
packet delivery ratio (PDR, delivered/released within the hyperperiod
deadline), so a flow's *deadline-miss ratio* is ``1 - pdr``.  An SLO
declares a floor on PDR (``target_pdr``); the remaining headroom,
``1 - target_pdr``, is the flow's **error budget**.

Rather than alerting the instant one epoch dips below target (noisy on
lossy wireless links) or only after a long average drifts (too late for
a real-time network), the engine uses the SRE multi-window burn-rate
construction: for each flow it keeps windowed deadline-miss ratios over
a *fast* and a *slow* epoch window and computes

    ``burn = windowed_miss_ratio / error_budget``

A burn of 1.0 means the flow is consuming budget exactly at the rate
the SLO allows; 2.0 means twice that.  The alert state is:

========  ====================================================
state     condition
========  ====================================================
``ok``    neither window burns at ``burn_threshold`` or above
``warn``  fast window burns hot but the slow window does not
          (a spike — maybe transient interference)
``alert`` both windows burn hot (sustained budget exhaustion —
          the early-warning signal the manager's policies read)
========  ====================================================

Windows are packet-weighted (summed misses over summed releases), so a
light epoch cannot swamp a heavy one.  State *transitions* emit
``slo_burn`` trace events and bump ``slo.alerts`` / ``slo.warns``
counters through the recorder idiom; steady states stay quiet.

The engine is deliberately detector-agnostic: it consumes the same
per-epoch ``flow_released`` / ``flow_delivered`` tallies the manager
already collects, and its alert state rides into
:class:`repro.manager.policies.Observation` *alongside* the K-S
verdicts — burn rates say "this flow is dying", K-S says "this link is
why".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs import recorder as _obs

#: Alert states, in increasing severity.
STATE_OK = "ok"
STATE_WARN = "warn"
STATE_ALERT = "alert"

_SEVERITY = {STATE_OK: 0, STATE_WARN: 1, STATE_ALERT: 2}


@dataclass(frozen=True)
class SloConfig:
    """Declared per-flow objective and burn-rate evaluation windows.

    Attributes:
        target_pdr: PDR floor every flow must hold (error budget is
            ``1 - target_pdr``).
        fast_window: Epochs in the fast (spike-sensitive) window.
        slow_window: Epochs in the slow (sustained) window.
        burn_threshold: Burn rate at/above which a window is "hot".
    """

    target_pdr: float = 0.9
    fast_window: int = 5
    slow_window: int = 30
    burn_threshold: float = 2.0

    def __post_init__(self):
        if not 0.0 < self.target_pdr < 1.0:
            raise ValueError("target_pdr must be in (0, 1)")
        if self.fast_window < 1:
            raise ValueError("fast_window must be positive")
        if self.slow_window < self.fast_window:
            raise ValueError("slow_window must be >= fast_window")
        if self.burn_threshold <= 0.0:
            raise ValueError("burn_threshold must be positive")

    @property
    def error_budget(self) -> float:
        """Allowed deadline-miss ratio, ``1 - target_pdr``."""
        return 1.0 - self.target_pdr

    def to_dict(self) -> Dict:
        """JSON-serializable form."""
        return {
            "target_pdr": self.target_pdr,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "burn_threshold": self.burn_threshold,
        }


@dataclass(frozen=True)
class FlowSloState:
    """One flow's SLO standing after an epoch.

    Attributes:
        flow_id: The flow.
        epoch: Epoch index this state was computed at.
        pdr: This epoch's PDR (1.0 when nothing was released).
        burn_fast: Burn rate over the fast window.
        burn_slow: Burn rate over the slow window.
        state: ``ok`` / ``warn`` / ``alert``.
        epochs_observed: Epochs of history behind the windows (burn
            rates over very short history are tentative).
    """

    flow_id: int
    epoch: int
    pdr: float
    burn_fast: float
    burn_slow: float
    state: str
    epochs_observed: int

    def to_dict(self) -> Dict:
        """Flatten to one JSON record."""
        return {
            "flow_id": self.flow_id,
            "epoch": self.epoch,
            "pdr": self.pdr,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "state": self.state,
            "epochs_observed": self.epochs_observed,
        }


class _FlowWindow:
    """Per-flow ring of ``(released, missed)`` epoch tallies."""

    __slots__ = ("tallies", "epochs_observed")

    def __init__(self, slow_window: int):
        self.tallies: Deque[Tuple[int, int]] = deque(maxlen=slow_window)
        self.epochs_observed = 0

    def push(self, released: int, missed: int) -> None:
        self.tallies.append((released, missed))
        self.epochs_observed += 1

    def miss_ratio(self, window: int) -> float:
        """Packet-weighted miss ratio over the last ``window`` epochs."""
        tail = list(self.tallies)[-window:]
        released = sum(r for r, _ in tail)
        if released == 0:
            return 0.0
        return sum(m for _, m in tail) / released


class SloEngine:
    """Tracks every flow's burn rates and alert state across epochs.

    Feed it one epoch at a time via :meth:`observe_epoch`; it keeps the
    windows, computes burn rates, emits ``slo_burn`` events on state
    transitions, and (when a recorder time-series store is attached)
    records ``{prefix}slo.flow.<id>.pdr`` / ``.burn_fast`` /
    ``.burn_slow`` series.

    Args:
        config: Objective and window declaration.
        series_prefix: Prepended to recorded series names so concurrent
            engines (e.g. the adaptation study's per-policy managers)
            don't collide in one store.
    """

    def __init__(self, config: Optional[SloConfig] = None,
                 series_prefix: str = ""):
        self.config = config if config is not None else SloConfig()
        self.series_prefix = series_prefix
        self._windows: Dict[int, _FlowWindow] = {}
        self._states: Dict[int, str] = {}

    def observe_epoch(self, epoch: int,
                      flow_released: Dict[int, int],
                      flow_delivered: Dict[int, int],
                      ) -> List[FlowSloState]:
        """Fold one epoch's per-flow tallies in; return per-flow states.

        Args:
            epoch: Epoch index (becomes the series' ``t``).
            flow_released: ``{flow_id: packets released}`` this epoch.
            flow_delivered: ``{flow_id: packets delivered by deadline}``.

        Returns:
            One :class:`FlowSloState` per flow seen this epoch, sorted
            by flow id.
        """
        config = self.config
        budget = config.error_budget
        states: List[FlowSloState] = []
        for flow_id in sorted(flow_released):
            released = flow_released[flow_id]
            delivered = flow_delivered.get(flow_id, 0)
            missed = max(0, released - delivered)
            window = self._windows.get(flow_id)
            if window is None:
                window = self._windows[flow_id] = _FlowWindow(
                    config.slow_window)
            window.push(released, missed)

            burn_fast = window.miss_ratio(config.fast_window) / budget
            burn_slow = window.miss_ratio(config.slow_window) / budget
            if (burn_fast >= config.burn_threshold
                    and burn_slow >= config.burn_threshold):
                state = STATE_ALERT
            elif burn_fast >= config.burn_threshold:
                state = STATE_WARN
            else:
                state = STATE_OK

            pdr = 1.0 if released == 0 else delivered / released
            flow_state = FlowSloState(
                flow_id=flow_id, epoch=epoch, pdr=pdr,
                burn_fast=burn_fast, burn_slow=burn_slow, state=state,
                epochs_observed=window.epochs_observed)
            states.append(flow_state)
            self._note_transition(flow_state)
            self._record_series(flow_state)
        return states

    def _note_transition(self, state: FlowSloState) -> None:
        """Emit ``slo_burn`` + counters when a flow's state changes."""
        previous = self._states.get(state.flow_id, STATE_OK)
        self._states[state.flow_id] = state.state
        if state.state == previous:
            return
        if _obs.ENABLED:
            if state.state == STATE_ALERT:
                _obs.RECORDER.count("slo.alerts")
            elif state.state == STATE_WARN:
                _obs.RECORDER.count("slo.warns")
            _obs.RECORDER.event(
                "slo_burn", flow=state.flow_id, epoch=state.epoch,
                state=state.state, previous=previous,
                burn_fast=round(state.burn_fast, 4),
                burn_slow=round(state.burn_slow, 4),
                pdr=round(state.pdr, 4))

    def _record_series(self, state: FlowSloState) -> None:
        if not _obs.ENABLED:
            return
        prefix = f"{self.series_prefix}slo.flow.{state.flow_id}."
        _obs.RECORDER.sample(prefix + "pdr", state.epoch, state.pdr)
        _obs.RECORDER.sample(prefix + "burn_fast", state.epoch,
                             state.burn_fast)
        _obs.RECORDER.sample(prefix + "burn_slow", state.epoch,
                             state.burn_slow)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def state_of(self, flow_id: int) -> str:
        """A flow's current alert state (``ok`` when never observed)."""
        return self._states.get(flow_id, STATE_OK)

    def flows_in_state(self, state: str) -> List[int]:
        """Sorted flow ids currently in ``state``."""
        return sorted(f for f, s in self._states.items() if s == state)

    def alerting_flows(self) -> List[int]:
        """Sorted flow ids currently in ``alert``."""
        return self.flows_in_state(STATE_ALERT)

    def warning_flows(self) -> List[int]:
        """Sorted flow ids currently in ``warn``."""
        return self.flows_in_state(STATE_WARN)

    def worst_state(self) -> str:
        """The most severe state any flow currently holds."""
        if not self._states:
            return STATE_OK
        return max(self._states.values(), key=_SEVERITY.__getitem__)


def severity(state: str) -> int:
    """Numeric severity of an alert state (``ok``=0 … ``alert``=2)."""
    return _SEVERITY[state]
