"""Causally-linked request spans with tail-based exemplar capture.

Layered on the observability stack of :mod:`repro.obs`: where the
:class:`~repro.obs.trace.Tracer` records flat *events*, this module
records *spans* — named, timed scopes carrying ``trace_id`` /
``span_id`` / ``parent_id`` so a request crossing the service's process
boundaries (asyncio front-end → forked worker → executor stages) can be
reassembled offline into one waterfall.

Clock model
-----------

``time.perf_counter`` is monotonic but **per-process**; wall clock is
comparable across the service's processes (they share a machine) but
not monotonic.  Every span therefore records both: ``start_unix``
(wall clock, used to *align* spans from different processes on one
timeline) and ``duration_ms`` (perf_counter-derived, used to *measure*
each span).  The shard-queue wait — which starts in the front-end and
ends in a worker — is synthesized from two wall-clock stamps and is the
one span whose duration inherits wall-clock jitter.

Context propagation
-------------------

A trace context is a small JSON object ``{"trace_id": ..., "span_id":
...}``: clients may attach one to a request (``"trace"`` field), the
front-end forwards its own (plus ``enqueued_unix``) to the owning
worker inside the request payload, and responses echo
``{"trace_id": ...}`` so a client can find its request in the dumps.
*Within* a process the current span travels in a
:class:`contextvars.ContextVar`, so executor stages find their parent
without threading it through every signature; :func:`stage` is the
instrumentation-site helper and no-ops (one attribute read, one
contextvar get) when no span recorder is installed.

Tail-based capture
------------------

Keeping every span tree of a service doing thousands of requests per
second would be an unbounded log.  :class:`SpanRecorder` instead makes
a per-trace keep/drop decision when the trace's *local root* span ends:
keep if the root was slow (``threshold_ms``), errored, or belongs to
the rolling top-``top_k`` slowest seen so far; the kept store is
bounded at ``max_traces`` complete trees (evicting the fastest kept
trace first, so retention is slowest-first), pending traces are bounded
too, and every eviction is counted.  The JSONL export ends with a
``span_meta`` trailer carrying the kept/dropped accounting — the same
honesty contract as ``trace_meta`` / ``ts_meta`` / ``prov_meta``.

Each process decides on *its* local root (front-end: the request span;
worker: the work span; loadgen: the client-side request span) with the
same policy, so a globally slow request is captured by every process it
touched and its cross-process tree survives the merge.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import TIME_BUCKETS_S

#: Root spans at/above this duration are always kept.
DEFAULT_THRESHOLD_MS = 50.0
#: Rolling top-k slowest roots kept even below the threshold.
DEFAULT_TOP_K = 5
#: Hard bound on retained complete span trees.
DEFAULT_MAX_TRACES = 64
#: Hard bound on spans within one trace (defensive; a request path is
#: ~10 spans, a loop emitting thousands is a bug we refuse to OOM on).
DEFAULT_MAX_SPANS_PER_TRACE = 512

#: The in-process current span (asyncio-task- and thread-local).
_CURRENT: ContextVar[Optional["ActiveSpan"]] = ContextVar(
    "repro_current_span", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def current_span() -> Optional["ActiveSpan"]:
    """The span the calling context is currently inside, if any."""
    return _CURRENT.get()


class ActiveSpan:
    """One open span.  Create via :meth:`SpanRecorder.start`.

    Usable as a context manager (ends with ``ok`` / ``error`` and
    scopes the contextvar), or driven manually with
    :meth:`annotate` / :meth:`end` when the span outlives one scope
    (the front-end's request span ends in a different task than the
    one that started it).
    """

    __slots__ = ("recorder", "name", "trace_id", "span_id", "parent_id",
                 "attrs", "start_unix", "_start_perf", "status",
                 "duration_ms", "_token")

    def __init__(self, recorder: "SpanRecorder", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str],
                 attrs: Optional[Dict] = None):
        self.recorder = recorder
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict = dict(attrs) if attrs else {}
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        self.status: Optional[str] = None
        self.duration_ms: Optional[float] = None
        self._token = None

    def annotate(self, **attrs) -> "ActiveSpan":
        """Attach structured attributes (merged into ``attrs``)."""
        self.attrs.update(attrs)
        return self

    def end(self, status: str = "ok") -> float:
        """Close the span; idempotent.  Returns the duration in ms."""
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self._start_perf) \
                * 1e3
            self.status = status
            self.recorder._finish(self)
        return self.duration_ms

    # -- context-manager protocol (sets the contextvar) ------------------

    def __enter__(self) -> "ActiveSpan":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.end("error" if exc_type is not None else "ok")

    def to_record(self) -> Dict:
        """The JSONL wire form of the (finished) span."""
        record: Dict = {"kind": "span", "trace": self.trace_id,
                        "span": self.span_id, "parent": self.parent_id,
                        "name": self.name,
                        "process": self.recorder.process,
                        "start_unix": round(self.start_unix, 6),
                        "duration_ms": round(self.duration_ms or 0.0, 4),
                        "status": self.status or "open"}
        if self.attrs:
            record["attrs"] = self.attrs
        return record


@contextmanager
def activate(span: Optional[ActiveSpan]):
    """Make ``span`` the current span for the ``with`` body.

    Unlike using the span as a context manager directly, this does NOT
    end the span on exit — the caller owns its lifetime (the worker
    ends its work span only after building the response).  ``None``
    yields a no-op scope.
    """
    if span is None:
        yield None
        return
    token = _CURRENT.set(span)
    try:
        yield span
    finally:
        _CURRENT.reset(token)


@contextmanager
def stage(name: str, **attrs):
    """Instrument one named stage under the current span.

    The instrumentation-site helper for code deep in the request path
    (executor verbs): opens a child of the context's current span,
    makes itself current for the body, and closes with ``ok`` /
    ``error``.  Yields the :class:`ActiveSpan` (annotate it with cache
    verdicts etc.) — or ``None``, with zero recording, when the
    process-wide recorder is off, carries no span layer, or no request
    span is open (direct library calls, the loadgen shadow executor).
    """
    from repro.obs import recorder as _obs

    spans = _obs.RECORDER.spans if _obs.ENABLED else None
    parent = _CURRENT.get()
    if spans is None or parent is None:
        yield None
        return
    span = spans.start(name, trace_id=parent.trace_id,
                       parent_id=parent.span_id, attrs=attrs)
    token = _CURRENT.set(span)
    try:
        yield span
    except BaseException:
        span.end("error")
        raise
    else:
        span.end("ok")
    finally:
        _CURRENT.reset(token)


def wire_context(span: ActiveSpan) -> Dict:
    """The trace context to put on an outgoing request."""
    return {"trace_id": span.trace_id, "span_id": span.span_id}


class SpanRecorder:
    """Collects spans per trace and keeps only tail exemplars.

    Attach to a live :class:`repro.obs.recorder.Recorder` via its
    ``spans`` argument; the recorder then binds this instance to its
    registry and tracer so every finished span also observes a
    ``span.<name>.seconds`` histogram (the per-stage latency surface
    OpenMetrics exports) and mirrors a ``span`` event into the ring.

    Args:
        threshold_ms: Root duration at/above which a trace is kept.
        top_k: Rolling top-k slowest roots kept below the threshold.
        max_traces: Bound on retained complete traces (fastest evicted).
        max_spans_per_trace: Bound on spans per pending trace.
        process: Process label stamped on every span (``front`` /
            ``worker-0`` / ``loadgen``).
    """

    def __init__(self, threshold_ms: float = DEFAULT_THRESHOLD_MS,
                 top_k: int = DEFAULT_TOP_K,
                 max_traces: int = DEFAULT_MAX_TRACES,
                 max_spans_per_trace: int = DEFAULT_MAX_SPANS_PER_TRACE,
                 process: str = ""):
        if threshold_ms < 0 or top_k < 0:
            raise ValueError("threshold_ms and top_k must be >= 0")
        if max_traces < 1 or max_spans_per_trace < 1:
            raise ValueError("max_traces and max_spans_per_trace must "
                             "be positive")
        self.threshold_ms = threshold_ms
        self.top_k = top_k
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        #: Pending traces bound: beyond it the *oldest* open trace is
        #: dropped (a trace nobody closes is a leak, not an exemplar).
        self.max_pending = max(max_traces, 4 * max_traces)
        self.process = process
        self._pending: Dict[str, List[Dict]] = {}
        self._kept: Dict[str, Tuple[float, List[Dict]]] = {}
        self.dropped_traces = 0
        self.dropped_spans = 0
        self.closed_traces = 0
        self._seq = 0
        self._registry = None
        self._tracer = None

    # -- recorder wiring -------------------------------------------------

    def bind(self, registry, tracer) -> None:
        """Attach the metrics/trace layers finished spans feed into."""
        self._registry = registry
        self._tracer = tracer

    # -- span creation ---------------------------------------------------

    def _next_span_id(self) -> str:
        self._seq += 1
        return f"{uuid.uuid4().hex[:8]}-{self._seq:x}"

    def start(self, name: str, trace_id: Optional[str] = None,
              parent_id: Optional[str] = None,
              attrs: Optional[Dict] = None) -> ActiveSpan:
        """Open a span (a fresh trace when ``trace_id`` is None)."""
        return ActiveSpan(self, name,
                          trace_id if trace_id else new_trace_id(),
                          self._next_span_id(), parent_id or None, attrs)

    def record(self, name: str, *, trace_id: str,
               parent_id: Optional[str], start_unix: float,
               duration_ms: float, status: str = "ok",
               attrs: Optional[Dict] = None) -> str:
        """Add an already-measured span (the synthesized queue wait)."""
        span_id = self._next_span_id()
        record: Dict = {"kind": "span", "trace": trace_id,
                        "span": span_id, "parent": parent_id,
                        "name": name, "process": self.process,
                        "start_unix": round(start_unix, 6),
                        "duration_ms": round(duration_ms, 4),
                        "status": status}
        if attrs:
            record["attrs"] = dict(attrs)
        self._add(trace_id, record)
        self._observe(name, duration_ms)
        return span_id

    # -- internals -------------------------------------------------------

    def _observe(self, name: str, duration_ms: float) -> None:
        if self._registry is not None:
            self._registry.observe(f"span.{name}.seconds",
                                   duration_ms / 1e3, TIME_BUCKETS_S)

    def _finish(self, span: ActiveSpan) -> None:
        self._add(span.trace_id, span.to_record())
        self._observe(span.name, span.duration_ms or 0.0)
        if self._tracer is not None:
            self._tracer.emit("span", trace=span.trace_id,
                              span=span.span_id, name=span.name,
                              ms=round(span.duration_ms or 0.0, 3),
                              status=span.status)

    def _add(self, trace_id: str, record: Dict) -> None:
        spans = self._pending.get(trace_id)
        if spans is None:
            while len(self._pending) >= self.max_pending:
                stale_id = next(iter(self._pending))
                stale = self._pending.pop(stale_id)
                self.dropped_traces += 1
                self.dropped_spans += len(stale)
            spans = self._pending[trace_id] = []
        if len(spans) >= self.max_spans_per_trace:
            self.dropped_spans += 1
            return
        spans.append(record)

    # -- trace close / tail decision -------------------------------------

    def close_trace(self, trace_id: str, root_duration_ms: float,
                    error: bool = False) -> bool:
        """Decide the fate of a finished trace; True when kept."""
        spans = self._pending.pop(trace_id, None)
        if spans is None:
            return False
        self.closed_traces += 1
        keep = (error
                or root_duration_ms >= self.threshold_ms
                or any(s.get("status") == "error" for s in spans))
        if not keep and self.top_k:
            if len(self._kept) < self.top_k:
                keep = True
            else:
                floor = min(ms for ms, _ in self._kept.values())
                keep = root_duration_ms > floor
        if not keep:
            self.dropped_traces += 1
            self.dropped_spans += len(spans)
            return False
        self._kept[trace_id] = (root_duration_ms, spans)
        while len(self._kept) > self.max_traces:
            fastest = min(self._kept, key=lambda t: self._kept[t][0])
            _, evicted = self._kept.pop(fastest)
            self.dropped_traces += 1
            self.dropped_spans += len(evicted)
        return True

    # -- read side -------------------------------------------------------

    @property
    def kept_traces(self) -> int:
        """Complete traces currently retained."""
        return len(self._kept)

    @property
    def kept_spans(self) -> int:
        """Spans inside the retained traces."""
        return sum(len(spans) for _, spans in self._kept.values())

    @property
    def in_flight(self) -> int:
        """Open (never-closed) traces still pending."""
        return len(self._pending)

    def slowest(self, n: int = 5) -> List[Tuple[str, float, Dict]]:
        """The ``n`` slowest kept traces: (trace_id, root_ms, root span).

        The root span is the retained span without a parent in its own
        trace (falling back to the longest span for partial trees).
        """
        ranked = sorted(self._kept.items(), key=lambda item: -item[1][0])
        out = []
        for trace_id, (root_ms, spans) in ranked[:n]:
            ids = {s["span"] for s in spans}
            roots = [s for s in spans
                     if not s.get("parent") or s["parent"] not in ids]
            root = roots[0] if roots else \
                max(spans, key=lambda s: s.get("duration_ms", 0.0))
            out.append((trace_id, root_ms, root))
        return out

    def meta(self) -> Dict:
        """The ``span_meta`` trailer record."""
        return {"kind": "span_meta", "process": self.process,
                "kept_traces": self.kept_traces,
                "kept_spans": self.kept_spans,
                "dropped_traces": self.dropped_traces,
                "dropped_spans": self.dropped_spans,
                "closed_traces": self.closed_traces,
                "in_flight": self.in_flight,
                "threshold_ms": self.threshold_ms,
                "top_k": self.top_k, "max_traces": self.max_traces}

    def to_records(self) -> List[Dict]:
        """All kept spans plus the ``span_meta`` trailer."""
        records: List[Dict] = []
        for _, (_, spans) in sorted(self._kept.items(),
                                    key=lambda item: -item[1][0]):
            records.extend(spans)
        records.append(self.meta())
        return records

    def export_jsonl(self, path) -> int:
        """Write kept spans as JSONL (trailer included, not counted).

        Returns:
            The number of span records written.
        """
        from repro.io import save_jsonl

        return save_jsonl(self.to_records(), path) - 1


# ----------------------------------------------------------------------
# Offline side: load dumps, rebuild trees, render waterfalls
# ----------------------------------------------------------------------

def expand_span_paths(path: str) -> List[str]:
    """``FILE`` plus its per-worker siblings ``FILE.w<N>``, sorted."""
    import glob
    import os
    import re

    paths = [path] if os.path.exists(path) else []
    siblings = [p for p in glob.glob(f"{path}.w*")
                if re.fullmatch(r".*\.w\d+", p)]
    return paths + sorted(siblings)


def load_span_records(paths: Sequence[str]) -> Tuple[List[Dict],
                                                     List[Dict]]:
    """Read span dumps; returns ``(span_records, span_meta_trailers)``.

    Raises:
        OSError / ValueError: Unreadable or malformed input (the CLI
            maps these to exit code 2).
    """
    from repro.io import load_jsonl

    spans: List[Dict] = []
    metas: List[Dict] = []
    for path in paths:
        for record in load_jsonl(path):
            if not isinstance(record, dict):
                raise ValueError(f"{path}: span record is not an object")
            kind = record.get("kind")
            if kind == "span":
                spans.append(record)
            elif kind == "span_meta":
                metas.append(record)
            # Foreign kinds (a combined dump) are ignored, not errors.
    return spans, metas


def build_traces(records: Iterable[Dict]) -> List[Dict]:
    """Group span records into per-trace trees, slowest first.

    Each trace dict carries ``trace_id``, ``spans`` (all records),
    ``roots`` (spans whose parent is absent from the trace — the
    front-end request span in a full merge, or a process-local root in
    a partial dump), ``duration_ms`` (max root duration), ``processes``
    and ``start_unix``.
    """
    by_trace: Dict[str, List[Dict]] = {}
    for record in records:
        trace_id = record.get("trace")
        if trace_id:
            by_trace.setdefault(trace_id, []).append(record)
    traces: List[Dict] = []
    for trace_id, spans in by_trace.items():
        ids = {span["span"] for span in spans}
        roots = [span for span in spans
                 if not span.get("parent") or span["parent"] not in ids]
        if not roots:  # cycle or truncation: degrade, don't crash
            roots = [max(spans,
                         key=lambda s: s.get("duration_ms", 0.0))]
        duration = max(root.get("duration_ms", 0.0) for root in roots)
        traces.append({
            "trace_id": trace_id,
            "spans": spans,
            "roots": sorted(roots,
                            key=lambda s: s.get("start_unix", 0.0)),
            "duration_ms": duration,
            "processes": sorted({span.get("process", "?")
                                 for span in spans}),
            "start_unix": min(span.get("start_unix", 0.0)
                              for span in spans),
        })
    traces.sort(key=lambda t: -t["duration_ms"])
    return traces


def render_waterfall(trace: Dict, width: int = 48) -> List[str]:
    """ASCII waterfall of one trace, parent→child indented, time→right.

    Bars are positioned on the merged wall-clock timeline (t0 = the
    earliest span start) and sized by each span's measured duration.
    """
    spans = trace["spans"]
    t0 = trace["start_unix"]
    total_ms = max((span.get("start_unix", t0) - t0) * 1e3
                   + span.get("duration_ms", 0.0)
                   for span in spans)
    total_ms = max(total_ms, 1e-6)
    children: Dict[Optional[str], List[Dict]] = {}
    ids = {span["span"] for span in spans}
    for span in spans:
        parent = span.get("parent")
        key = parent if parent in ids else None
        children.setdefault(key, []).append(span)
    for group in children.values():
        group.sort(key=lambda s: (s.get("start_unix", 0.0), s["span"]))

    lines = [f"trace {trace['trace_id']}  "
             f"{trace['duration_ms']:.2f} ms  "
             f"{len(spans)} span(s)  "
             f"[{', '.join(trace['processes'])}]"]

    def emit(span: Dict, depth: int) -> None:
        start_ms = (span.get("start_unix", t0) - t0) * 1e3
        duration = span.get("duration_ms", 0.0)
        left = int(round(start_ms / total_ms * width))
        size = max(1, int(round(duration / total_ms * width)))
        left = min(left, width - 1)
        size = min(size, width - left)
        bar = " " * left + "#" * size + " " * (width - left - size)
        label = "  " * depth + span.get("name", "?")
        mark = "" if span.get("status") == "ok" else \
            f" !{span.get('status')}"
        attrs = span.get("attrs") or {}
        note = ""
        if "verdict" in attrs:
            note = f" ({attrs['verdict']})"
        elif "engine" in attrs:
            note = f" ({attrs['engine']})"
        lines.append(f"  {label:<24.24} {span.get('process', '?'):<9.9} "
                     f"{duration:>9.2f} ms |{bar}|{note}{mark}")
        for child in children.get(span["span"], []):
            emit(child, depth + 1)

    for root in trace["roots"]:
        emit(root, 0)
    return lines


def format_trace_show(paths: Sequence[str], limit: int = 5,
                      trace_prefix: Optional[str] = None,
                      width: int = 48) -> str:
    """The ``repro trace show`` rendering: slowest traces first."""
    spans, metas = load_span_records(paths)
    traces = build_traces(spans)
    if trace_prefix:
        traces = [trace for trace in traces
                  if trace["trace_id"].startswith(trace_prefix)]
    shown = traces[:limit] if limit and limit > 0 else traces
    lines: List[str] = [f"spans: {len(spans)} span(s) in "
                        f"{len(traces)} trace(s) from "
                        f"{len(paths)} file(s)"]
    for meta in sorted(metas, key=lambda m: m.get("process", "")):
        lines.append(
            f"  {meta.get('process', '?'):<9} kept "
            f"{meta.get('kept_traces', 0)} trace(s) / "
            f"{meta.get('kept_spans', 0)} span(s), dropped "
            f"{meta.get('dropped_traces', 0)} trace(s) / "
            f"{meta.get('dropped_spans', 0)} span(s) "
            f"(threshold {meta.get('threshold_ms')} ms, "
            f"top-k {meta.get('top_k')})")
    for trace in shown:
        lines.append("")
        lines.extend(render_waterfall(trace, width=width))
    hidden = len(traces) - len(shown)
    if hidden > 0:
        lines.append("")
        lines.append(f"  ... {hidden} faster trace(s) not shown "
                     f"(--limit)")
    return "\n".join(lines)
