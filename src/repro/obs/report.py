"""Human-readable rendering of a metrics snapshot.

Backs the ``python -m repro report`` command: takes the JSON snapshot
written by ``--metrics-out`` (optionally plus a trace written by
``--trace``) and prints the quantities the paper's evaluation cares
about — placements per policy, RC's reuse-fallback histogram, simulator
attempt/success totals, and wall time per phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def _fmt(value: float) -> str:
    """Integer-looking floats print as integers."""
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def _policy_table(counters: Dict[str, float]) -> List[str]:
    policies = sorted({name.split(".")[1] for name in counters
                       if name.startswith("policy.")})
    if not policies:
        return []
    lines = ["policies:",
             f"  {'policy':>8} {'runs':>6} {'sched':>6} {'unsched':>8} "
             f"{'placements':>11} {'reused':>7}"]
    for policy in policies:
        def get(key: str) -> str:
            return _fmt(counters.get(f"policy.{policy}.{key}", 0))
        lines.append(
            f"  {policy:>8} {get('runs'):>6} {get('schedulable'):>6} "
            f"{get('unschedulable'):>8} {get('placements'):>11} "
            f"{get('reuse_placements'):>7}")
    return lines


def _histogram_lines(title: str, data: Dict) -> List[str]:
    lines = [title]
    bounds = data["buckets"]
    labels = [f"<={_fmt(b)}" for b in bounds] + [f">{_fmt(bounds[-1])}"]
    for label, count in zip(labels, data["counts"]):
        if count:
            lines.append(f"  {label:>10}: {count}")
    mean = data["sum"] / data["count"] if data["count"] else None
    if mean is not None:
        lines.append(f"  count {data['count']}, mean {mean:.3f}, "
                     f"min {_fmt(data['min'])}, max {_fmt(data['max'])}")
    return lines


def _phase_table(counters: Dict[str, float]) -> List[str]:
    names = sorted({name[len("time."):-len(".calls")]
                    for name in counters
                    if name.startswith("time.") and name.endswith(".calls")})
    if not names:
        return []
    lines = ["wall time per phase:",
             f"  {'phase':<28} {'calls':>7} {'total s':>9} {'mean ms':>9}"]
    for name in names:
        calls = counters.get(f"time.{name}.calls", 0)
        total = counters.get(f"time.{name}.total_s", 0.0)
        mean_ms = 1000.0 * total / calls if calls else 0.0
        lines.append(f"  {name:<28} {_fmt(calls):>7} {total:>9.3f} "
                     f"{mean_ms:>9.2f}")
    return lines


def _stage_table(histograms: Dict[str, Dict]) -> List[str]:
    """Request-stage latency from the span layer's side histograms."""
    from repro.obs.metrics import quantile_from_buckets

    stages = []
    for name, data in histograms.items():
        if not (name.startswith("span.") and name.endswith(".seconds")):
            continue
        stage = name[len("span."):-len(".seconds")]
        count = int(data["count"])
        total = float(data["sum"])
        p99 = quantile_from_buckets(data["buckets"], data["counts"], 0.99)
        stages.append((stage, count, total, p99))
    if not stages:
        return []
    stages.sort(key=lambda row: (-row[2], row[0]))
    lines = ["request stages (from span dump):",
             f"  {'stage':<20} {'count':>7} {'total s':>9} "
             f"{'mean ms':>9} {'p99 ms':>9}"]
    for stage, count, total, p99 in stages:
        mean_ms = 1000.0 * total / count if count else 0.0
        p99_ms = 1000.0 * p99 if p99 is not None else 0.0
        lines.append(f"  {stage:<20} {_fmt(count):>7} {total:>9.3f} "
                     f"{mean_ms:>9.2f} {p99_ms:>9.2f}")
    return lines


def _cache_table(counters: Dict[str, float]) -> List[str]:
    """Artifact-cache lookups by kind (``service.cache.<kind>.<verdict>``)."""
    kinds = sorted({name.split(".")[2] for name in counters
                    if name.startswith("service.cache.")
                    and len(name.split(".")) == 4})
    if not kinds:
        return []
    lines = ["artifact cache lookups:",
             f"  {'kind':<14} {'hits':>8} {'misses':>8} {'hit rate':>9}"]
    for kind in kinds:
        hits = counters.get(f"service.cache.{kind}.hit", 0)
        misses = counters.get(f"service.cache.{kind}.miss", 0)
        total = hits + misses
        rate = hits / total if total else 0.0
        lines.append(f"  {kind:<14} {_fmt(hits):>8} {_fmt(misses):>8} "
                     f"{rate:>9.3f}")
    return lines


def format_report(snapshot: Dict,
                  trace_kind_counts: Optional[Dict[str, int]] = None,
                  trace_dropped: Optional[int] = None) -> str:
    """Render a metrics snapshot (and optional trace summary) as text.

    Args:
        snapshot: The metrics snapshot to render.
        trace_kind_counts: Per-kind event counts of an accompanying
            trace (meta trailer records excluded by the caller).
        trace_dropped: Ring evictions reported by the trace's
            ``trace_meta`` trailer; printed even when zero so a
            complete trace is *visibly* complete.
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    sections: List[List[str]] = []

    scheduler_keys = [
        ("slots scanned", "scheduler.slots_scanned"),
        ("placement attempts (findSlot)", "scheduler.placements_tried"),
        ("placements", "scheduler.placements"),
        ("reuse placements", "scheduler.reuse_placements"),
        ("rejections", "scheduler.rejections"),
        ("RC laxity triggers", "rc.laxity_triggers"),
        ("RC reuse fallback steps", "rc.reuse_fallbacks"),
    ]
    lines = [f"  {label:<30} {_fmt(counters[key]):>12}"
             for label, key in scheduler_keys if key in counters]
    if lines:
        sections.append(["scheduler:"] + lines)

    policy_lines = _policy_table(counters)
    if policy_lines:
        sections.append(policy_lines)

    if "rc.fallback_rho" in histograms:
        sections.append(_histogram_lines(
            "RC reuse-fallback histogram (final rho):",
            histograms["rc.fallback_rho"]))

    if "sim.attempts" in counters:
        attempts = counters["sim.attempts"]
        successes = counters.get("sim.successes", 0)
        rate = successes / attempts if attempts else 0.0
        sections.append([
            "simulator:",
            f"  {'repetitions':<30} "
            f"{_fmt(counters.get('sim.repetitions', 0)):>12}",
            f"  {'link attempts':<30} {_fmt(attempts):>12}",
            f"  {'link successes':<30} {_fmt(successes):>12}",
            f"  {'attempt success rate':<30} {rate:>12.4f}",
            f"  {'e2e deliveries':<30} "
            f"{_fmt(counters.get('sim.deliveries', 0)):>12}",
        ])

    detection_keys = [(name.split(".")[-1], name) for name in sorted(counters)
                      if name.startswith("detection.verdict.")]
    if "detection.ks_tests" in counters or detection_keys:
        lines = ["detection:",
                 f"  {'K-S tests run':<30} "
                 f"{_fmt(counters.get('detection.ks_tests', 0)):>12}"]
        for label, key in detection_keys:
            lines.append(f"  {'verdict ' + label:<30} "
                         f"{_fmt(counters[key]):>12}")
        sections.append(lines)

    stage_lines = _stage_table(histograms)
    if stage_lines:
        sections.append(stage_lines)

    cache_lines = _cache_table(counters)
    if cache_lines:
        sections.append(cache_lines)

    phase_lines = _phase_table(counters)
    if phase_lines:
        sections.append(phase_lines)

    if trace_kind_counts is not None:
        lines = ["trace events by kind:"]
        for kind in sorted(trace_kind_counts):
            lines.append(f"  {kind:<30} {trace_kind_counts[kind]:>12}")
        total = sum(trace_kind_counts.values())
        lines.append(f"  {'total retained':<30} {total:>12}")
        if trace_dropped is not None:
            lines.append(f"  {'dropped (ring evictions)':<30} "
                         f"{trace_dropped:>12}")
        sections.append(lines)

    if not sections:
        return "(empty metrics snapshot)"
    return "\n\n".join("\n".join(section) for section in sections)
